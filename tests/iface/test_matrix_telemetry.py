"""Tests for telemetry-enabled swap-matrix sweeps and their scorecards."""

import json

import pytest

from repro.iface import run_swap_matrix


@pytest.fixture(scope="module")
def telemetry_report():
    return run_swap_matrix(
        seed=55, n_commands=5, buses=("pci", "tlmgp"),
        levels=("functional", "synthesized"), telemetry=True,
    )


class TestScoredMatrix:
    def test_every_cell_is_scored(self, telemetry_report):
        assert telemetry_report.all_consistent
        for cell in telemetry_report.cells:
            assert cell.score is not None, f"{cell.bus}/{cell.level}"
            assert cell.score.bus == cell.bus
            assert cell.score.level == cell.level
            assert cell.score.transactions > 0

    def test_reference_run_is_scored_too(self, telemetry_report):
        reference = telemetry_report.reference_score
        assert reference is not None
        assert reference.transactions == 5

    def test_clocked_cells_have_communication_gauges(self, telemetry_report):
        card = telemetry_report.scorecard()
        score = card.cell("pci", "synthesized")
        assert 0.0 < score.utilization <= 1.0
        assert score.throughput > 0.0
        assert score.latency.p50 > 0
        assert score.latency.p50 <= score.latency.p95 <= score.latency.p99

    def test_scorecard_covers_the_sweep(self, telemetry_report):
        card = telemetry_report.scorecard()
        assert card.seed == 55
        assert card.buses == ("pci", "tlmgp")
        assert len(card.cells) == 4
        text = card.render()
        assert "(reference)" in text
        assert "tlmgp" in text

    def test_report_document_embeds_scorecard(self, telemetry_report):
        document = telemetry_report.to_dict()
        assert document["scorecard"] is not None
        assert len(document["scorecard"]["cells"]) == 4
        json.dumps(document)  # whole report stays JSON-serializable

    def test_cell_document_embeds_score(self, telemetry_report):
        cell = telemetry_report.cell("pci", "synthesized")
        assert cell.to_dict()["score"]["transactions"] > 0


class TestTelemetryOff:
    def test_default_matrix_has_no_scores(self):
        report = run_swap_matrix(
            seed=55, n_commands=3, buses=("tlmgp",), levels=("functional",)
        )
        assert report.all_consistent
        assert report.reference_score is None
        assert all(cell.score is None for cell in report.cells)
        assert report.scorecard() is None
        assert report.to_dict()["scorecard"] is None
