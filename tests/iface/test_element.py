"""The InterfaceElement base: re-seated library IPs and width plumbing."""

import pytest

from repro.core import default_library, generate_workload
from repro.errors import RefinementError
from repro.flow import (
    BUS_FAMILIES,
    PciPlatformConfig,
    build_platform,
)
from repro.flow.platforms import _family_of_element
from repro.iface import IfaceParams, InterfaceElement
from repro.kernel import MS


def _workload(seed=7, n=6):
    return generate_workload(seed=seed, n_commands=n,
                             address_span=0x200, max_burst=3)


class TestReSeat:
    """Every library IP is an InterfaceElement, not an ad-hoc module."""

    def test_all_library_elements_subclass_the_base(self):
        library = default_library()
        for bus, abstraction in library.available():
            element = library.lookup(bus, abstraction)
            assert issubclass(element, InterfaceElement), element

    def test_all_four_families_registered(self):
        library = default_library()
        buses = {bus for bus, _ in library.available()}
        assert buses == {"pci", "wishbone", "axi4lite", "tlmgp"}

    def test_no_abstract_tags_in_library(self):
        library = default_library()
        for bus, abstraction in library.available():
            element = library.lookup(bus, abstraction)
            assert element.BUS_NAME != "abstract"
            assert element.ABSTRACTION != "abstract"

    @pytest.mark.parametrize("bus", ["pci", "wishbone", "axi4lite", "tlmgp"])
    def test_structural_summary(self, bus):
        bundle = build_platform([_workload()], bus=bus)
        summary = bundle.interface.structural_summary()
        assert summary["bus"] == bus
        assert summary["data_width"] == 32
        assert summary["byte_lanes"] == 4
        assert summary["response_capacity"] == 4

    def test_check_bus_widths_rejects_mismatch(self):
        bundle = build_platform([_workload()], bus="wishbone")
        with pytest.raises(RefinementError):
            bundle.interface.check_bus_widths(data_width=64)
        # Matching widths pass silently.
        bundle.interface.check_bus_widths(data_width=32, addr_width=32)


class TestResponseCapacityPlumbing:
    """Satellite: response_capacity flows config -> element -> channel."""

    def test_config_legacy_knob(self):
        config = PciPlatformConfig(response_capacity=2)
        assert config.params.response_capacity == 2
        assert config.response_capacity == 2

    def test_config_params_object(self):
        params = IfaceParams(response_capacity=6)
        config = PciPlatformConfig(params=params)
        assert config.params is params
        assert config.response_capacity == 6

    def test_legacy_knob_overrides_params(self):
        config = PciPlatformConfig(
            params=IfaceParams(data_width=64), response_capacity=9
        )
        assert config.params.data_width == 64
        assert config.params.response_capacity == 9

    @pytest.mark.parametrize("bus", ["pci", "wishbone", "axi4lite", "tlmgp"])
    def test_capacity_reaches_the_channel(self, bus):
        config = PciPlatformConfig(response_capacity=2)
        bundle = build_platform([_workload()], config, bus=bus)
        assert bundle.interface.params.response_capacity == 2
        assert bundle.interface.channel_state.response_capacity == 2

    def test_capacity_one_still_consistent(self):
        workload = _workload(seed=9, n=10)
        config = PciPlatformConfig(response_capacity=1)
        reference = build_platform([workload], bus="wishbone").run(100 * MS)
        shallow = build_platform(
            [workload], config, bus="wishbone"
        ).run(200 * MS)
        assert reference.traces == shallow.traces


class TestGenericBuilder:
    def test_bus_families_constant(self):
        assert BUS_FAMILIES == (
            "functional", "pci", "wishbone", "axi4lite", "tlmgp"
        )

    def test_unknown_bus_rejected(self):
        with pytest.raises(RefinementError):
            build_platform([_workload()], bus="vme")

    def test_synthesize_functional_rejected(self):
        with pytest.raises(RefinementError):
            build_platform([_workload()], bus="functional", synthesize=True)

    def test_element_override_picks_the_family(self):
        from repro.wishbone import WishboneBusInterface

        bundle = build_platform(
            [_workload()], element=WishboneBusInterface
        )
        assert type(bundle.interface) is WishboneBusInterface
        assert bundle.top.bus.__class__.__name__ == "WishboneBus"

    def test_family_of_element(self):
        from repro.axi.interface import AxiLiteBusInterface
        from repro.core import FunctionalBusInterface
        from repro.tlm import TlmGpBusInterface

        assert _family_of_element(AxiLiteBusInterface) == "axi4lite"
        assert _family_of_element(FunctionalBusInterface) == "functional"
        assert _family_of_element(TlmGpBusInterface) == "tlmgp"

    @pytest.mark.parametrize("bus", ["pci", "wishbone", "axi4lite", "tlmgp"])
    def test_wide_data_path_elaborates(self, bus):
        """64-bit params flow into the element and (where present) wires."""
        config = PciPlatformConfig(params=IfaceParams(data_width=64))
        bundle = build_platform([_workload()], config, bus=bus)
        assert bundle.interface.params.data_width == 64
        if bus in ("wishbone", "axi4lite"):
            assert bundle.top.bus.data_width == 64


class TestImportOrder:
    """repro.iface and repro.core must both work as the entry point."""

    def test_iface_first(self):
        import subprocess
        import sys

        code = (
            "import repro.iface, repro.core; "
            "print(repro.core.FunctionalBusInterface.__name__)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "FunctionalBusInterface"
