"""The swap matrix: bus x abstraction sweep against the reference."""

import pytest

from repro.iface import MatrixCell, SwapMatrixReport, run_swap_matrix


class TestMatrixCell:
    def test_verdicts(self):
        cell = MatrixCell("pci", "synthesized", "pci_synthesized")
        cell.consistent = True
        cell.transactions = 7
        cell.signature_matches = 7
        assert cell.verdict == "CONSISTENT"
        assert cell.cell_text() == "CONSISTENT(7/7)"
        cell.error = "boom"
        assert cell.verdict == "ERROR"
        assert cell.cell_text() == "ERROR"

    def test_to_dict_roundtrip(self):
        cell = MatrixCell("tlmgp", "compiled", "tlmgp_compiled")
        cell.consistent = False
        cell.mismatches = ["memory image differs in 1 words"]
        record = cell.to_dict()
        assert record["verdict"] == "MISMATCH"
        assert record["mismatches"] == cell.mismatches


class TestReportShape:
    def test_empty_report_renders(self):
        report = SwapMatrixReport(1, 5, ("pci",), ("functional",))
        text = report.render()
        assert "swap matrix" in text
        assert "0 cells" in text

    def test_all_consistent_requires_every_cell(self):
        report = SwapMatrixReport(1, 5, ("pci",), ("functional",))
        good = MatrixCell("pci", "functional", "x")
        good.consistent = True
        report.cells.append(good)
        assert report.all_consistent
        bad = MatrixCell("pci", "synthesized", "y")
        bad.consistent = False
        report.cells.append(bad)
        assert not report.all_consistent
        assert "MISMATCH" in report.render()


class TestSweep:
    def test_two_bus_sweep_is_consistent(self):
        report = run_swap_matrix(
            seed=55, n_commands=6, buses=("wishbone", "tlmgp")
        )
        assert len(report.cells) == 6
        assert report.all_consistent
        for cell in report.cells:
            assert cell.error is None
            assert cell.transactions == 6
            assert cell.signature_matches == 6
        rendered = report.render()
        assert "ALL CONSISTENT" in rendered
        assert "CONSISTENT(6/6)" in rendered

    def test_cell_lookup(self):
        report = run_swap_matrix(
            seed=55, n_commands=4, buses=("axi4lite",),
            levels=("functional", "synthesized"),
        )
        cell = report.cell("axi4lite", "synthesized")
        assert cell is not None and cell.consistent
        assert report.cell("axi4lite", "compiled") is None

    def test_broken_bus_reports_error_cell(self):
        report = run_swap_matrix(
            seed=55, n_commands=4, buses=("vme",), levels=("functional",)
        )
        (cell,) = report.cells
        assert cell.verdict == "ERROR"
        assert "RefinementError" in cell.error
        assert not report.all_consistent

    def test_fault_leg_counts(self):
        report = run_swap_matrix(
            seed=55, n_commands=4, buses=("wishbone",),
            levels=("functional",), fault_runs=4,
        )
        assert "wishbone" in report.fault_counts
        counts = report.fault_counts["wishbone"]
        assert sum(counts.values()) >= 4
        assert "fault leg" in report.render()

    def test_fault_leg_family_breakdown(self):
        report = run_swap_matrix(
            seed=55, n_commands=4, buses=("wishbone",),
            levels=("functional",), fault_runs=8,
        )
        families = report.fault_families["wishbone"]
        # Every demo fault family is represented and the breakdown
        # reconciles with the flat classification counts.
        assert set(families) >= {"bit_flip", "dropped_request"}
        total = sum(sum(row.values()) for row in families.values())
        assert total == sum(report.fault_counts["wishbone"].values())
        assert "bit_flip" in report.render()
        assert report.to_dict()["fault_families"]["wishbone"] == families

    def test_fault_leg_parallel_counts_match_serial(self):
        serial = run_swap_matrix(
            seed=55, n_commands=4, buses=("wishbone",),
            levels=("functional",), fault_runs=4,
        )
        parallel = run_swap_matrix(
            seed=55, n_commands=4, buses=("wishbone",),
            levels=("functional",), fault_runs=4, fault_workers=2,
        )
        assert parallel.fault_counts == serial.fault_counts
        assert parallel.fault_families == serial.fault_families


@pytest.mark.slow
class TestFullMatrix:
    def test_seed_55_full_matrix(self):
        """The acceptance sweep: 12 cells, per-transaction CONSISTENT."""
        report = run_swap_matrix(seed=55, n_commands=25)
        assert len(report.cells) == 12
        assert report.all_consistent
        for cell in report.cells:
            assert cell.signature_matches == cell.transactions == 25
