"""Tests for IfaceParams — the generate-style elaboration record."""

import dataclasses

import pytest

from repro.errors import RefinementError
from repro.iface import IfaceParams


class TestValidation:
    def test_defaults(self):
        params = IfaceParams()
        assert params.data_width == 32
        assert params.addr_width == 32
        assert params.max_burst == 8
        assert params.response_capacity == 4

    @pytest.mark.parametrize("width", [0, 4, 7, 12, -8])
    def test_data_width_must_be_byte_multiple(self, width):
        with pytest.raises(RefinementError):
            IfaceParams(data_width=width)

    def test_addr_width_positive(self):
        with pytest.raises(RefinementError):
            IfaceParams(addr_width=0)

    def test_max_burst_positive(self):
        with pytest.raises(RefinementError):
            IfaceParams(max_burst=0)

    def test_response_capacity_positive(self):
        with pytest.raises(RefinementError):
            IfaceParams(response_capacity=0)

    def test_frozen(self):
        params = IfaceParams()
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.data_width = 64


class TestDerived:
    @pytest.mark.parametrize(
        "width,lanes,be_mask",
        [(8, 1, 0x1), (16, 2, 0x3), (32, 4, 0xF), (64, 8, 0xFF)],
    )
    def test_byte_lanes_track_data_width(self, width, lanes, be_mask):
        params = IfaceParams(data_width=width)
        assert params.byte_lanes == lanes
        assert params.word_bytes == lanes
        assert params.byte_enable_mask == be_mask
        assert params.data_mask == (1 << width) - 1

    def test_addr_mask(self):
        assert IfaceParams(addr_width=16).addr_mask == 0xFFFF

    def test_with_response_capacity(self):
        base = IfaceParams(data_width=64)
        deeper = base.with_response_capacity(9)
        assert deeper.response_capacity == 9
        assert deeper.data_width == 64
        assert base.response_capacity == 4  # original untouched

    def test_describe(self):
        record = IfaceParams(data_width=16).describe()
        assert record["data_width"] == 16
        assert record["byte_lanes"] == 2
        assert record["response_capacity"] == 4
