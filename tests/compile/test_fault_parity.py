"""Fault campaigns must classify identically under both backends.

A compiled channel that changed any run's classification would mean the
backends are not observably equivalent under faults — the third leg of
the equivalence gate, checked serially and through the worker pool.
"""

import pytest

from repro.fault.campaign import build_campaign_platform
from repro.fault.models import FaultInjectionError
from repro.fault.runner import run_campaign
from repro.fault.spec import CampaignSpec, FaultSpec, demo_campaign_spec
from repro.compile import CompiledChannel


def _spec(backend, runs=8, **kwargs):
    spec = demo_campaign_spec(platform="pci", seed=11, runs=runs)
    spec.synthesize = True
    spec.backend = backend
    for key, value in kwargs.items():
        setattr(spec, key, value)
    return spec


def _outcome_rows(result):
    return [
        (o.run_id, o.kind, o.target_path, o.window, o.classification,
         o.detail, o.activations, o.detections)
        for o in result.outcomes
    ]


class TestSpecValidation:
    def test_compiled_requires_synthesize(self):
        with pytest.raises(FaultInjectionError, match="synthesize=True"):
            CampaignSpec(
                "bad", [FaultSpec("delayed_grant", "*")],
                backend="compiled",
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown backend"):
            CampaignSpec(
                "bad", [FaultSpec("delayed_grant", "*")], backend="jit",
            )

    def test_functional_platform_cannot_synthesize(self):
        with pytest.raises(FaultInjectionError, match="functional"):
            CampaignSpec(
                "bad", [FaultSpec("delayed_grant", "*")],
                platform="functional", synthesize=True,
            )


class TestCampaignPlatform:
    def test_compiled_spec_builds_compiled_channel(self):
        bundle = build_campaign_platform(_spec("compiled"))
        channel = bundle.synthesis.groups[0].channel
        assert isinstance(channel, CompiledChannel)

    def test_interpreted_spec_builds_interpreted_channel(self):
        bundle = build_campaign_platform(_spec("interpreted"))
        channel = bundle.synthesis.groups[0].channel
        assert not isinstance(channel, CompiledChannel)


class TestClassificationParity:
    def test_serial_campaigns_classify_identically(self):
        a = run_campaign(_spec("interpreted"), workers=1, max_runs=8)
        b = run_campaign(_spec("compiled"), workers=1, max_runs=8)
        assert _outcome_rows(a) == _outcome_rows(b)
        assert len(a.outcomes) == 6  # one run per demo fault line
        # The campaign must have produced at least one non-benign run,
        # otherwise the parity above is vacuous.
        assert any(
            o.classification != "benign" for o in a.outcomes
        )

    @pytest.mark.slow
    def test_pool_campaigns_classify_identically(self):
        a = run_campaign(_spec("interpreted"), workers=2, max_runs=8)
        b = run_campaign(_spec("compiled"), workers=2, max_runs=8)
        assert _outcome_rows(a) == _outcome_rows(b)
