"""Code generation semantics of the compiled fast-sim backend.

Every check here pins the generated Python to the interpreted
reference: expression lowering against :func:`evaluate_expr` semantics,
the two-phase register commit, external-input closure errors, and the
seeded random cross-check against :class:`EvalSchedule` on a real
synthesized channel netlist.
"""

import pytest

from repro.analyze import levelize
from repro.analyze.schedule import EvaluationError
from repro.compile import CodegenError, compile_module, emit_yosys_script
from repro.core.workload import _Lcg
from repro.synthesis.ir import BinOp, Concat, Const, Fsm, Mux, RtlModule, UnOp

from tests.analyze.test_passes import build_synthesized_design


def _comb_module():
    module = RtlModule("comb")
    a = module.add_port("a", "in", 4)
    b = module.add_port("b", "in", 4)
    out = module.add_port("out", "out", 4)
    w = module.add_net("w", 4)
    module.add_assign(w, BinOp("+", a.ref(), b.ref()))
    module.add_assign(out, UnOp("~", w.ref()))
    return module


class TestCombLowering:
    def test_matches_schedule_on_vectors(self):
        module = _comb_module()
        netlist = compile_module(module)
        schedule = levelize(module).schedule
        for a in range(16):
            for b in range(16):
                env = {"a": a, "b": b}
                assert netlist.comb(env) == schedule.evaluate(env)

    def test_arithmetic_wraps_to_width(self):
        module = _comb_module()
        netlist = compile_module(module)
        out = netlist.comb({"a": 15, "b": 1})
        assert out["w"] == 0 and out["out"] == 15

    def test_boundary_values_masked_on_entry(self):
        module = _comb_module()
        netlist = compile_module(module)
        # Over-wide boundary values behave like the wires they name —
        # exactly the EvalSchedule.evaluate semantics.
        assert netlist.comb({"a": 0x13, "b": 0}) == \
            netlist.comb({"a": 0x3, "b": 0})

    def test_missing_input_raises_evaluation_error(self):
        netlist = compile_module(_comb_module())
        with pytest.raises(EvaluationError, match="no value for net 'b'"):
            netlist.comb({"a": 1})

    def test_mux_and_concat_lowering(self):
        module = RtlModule("m")
        s = module.add_port("s", "in", 1)
        a = module.add_port("a", "in", 2)
        out = module.add_port("out", "out", 3)
        module.add_assign(
            out, Mux(s.ref(), Concat(Const(1, 1), a.ref()), Const(0, 3))
        )
        netlist = compile_module(module)
        assert netlist.comb({"s": 1, "a": 0b10})["out"] == 0b110
        assert netlist.comb({"s": 0, "a": 0b10})["out"] == 0


class TestCycleSemantics:
    def _register_chain(self):
        module = RtlModule("chain")
        d = module.add_port("d", "in", 4)
        q0 = module.add_register("q0", 4, 0)
        q1 = module.add_register("q1", 4, 0)
        out = module.add_port("out", "out", 4)
        module.add_clocked_assign(q0, d.ref())
        module.add_clocked_assign(q1, q0.ref())
        module.add_assign(out, q1.ref())
        return module

    def test_two_phase_commit(self):
        """q1 must load q0's OLD value — registers update together."""
        netlist = compile_module(self._register_chain())
        regs = netlist.reset_registers()
        outs = {}
        netlist.cycle(regs, {"d": 5}, outs)
        assert (regs["q0"], regs["q1"]) == (5, 0)
        netlist.cycle(regs, {"d": 9}, outs)
        assert (regs["q0"], regs["q1"]) == (9, 5)
        assert outs["out"] == 5  # output cone sees the NEW registers

    def test_reset_registers_fresh_dict(self):
        netlist = compile_module(self._register_chain())
        regs = netlist.reset_registers()
        regs["q0"] = 7
        assert netlist.reset_registers()["q0"] == 0

    def test_fsm_dispatch(self):
        module = RtlModule("fsm")
        go = module.add_port("go", "in", 1)
        busy = module.add_port("busy", "out", 1)
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        fsm.set_output("RUN", busy, 1)
        module.add_fsm(fsm)
        netlist = compile_module(module)
        regs = netlist.reset_registers()
        state = fsm.state_register.name
        outs = {}
        netlist.cycle(regs, {"go": 0}, outs)
        assert regs[state] == fsm.encode("IDLE") and outs["busy"] == 0
        netlist.cycle(regs, {"go": 1}, outs)
        assert regs[state] == fsm.encode("RUN") and outs["busy"] == 1
        netlist.cycle(regs, {"go": 0}, outs)
        assert regs[state] == fsm.encode("IDLE") and outs["busy"] == 0


class TestClosureErrors:
    def test_comb_loop_rejected(self):
        module = RtlModule("loop")
        a = module.add_net("a", 1)
        b = module.add_net("b", 1)
        module.add_assign(a, b.ref())
        module.add_assign(b, a.ref())
        with pytest.raises(CodegenError, match="loop"):
            compile_module(module)

    def test_skipped_register_read_rejected(self):
        module = RtlModule("m")
        out = module.add_port("out", "out", 4)
        r = module.add_register("arb_age", 4, 0)
        module.add_clocked_assign(r, Const(1, 4))
        module.add_assign(out, r.ref())
        with pytest.raises(CodegenError, match="arb_age"):
            compile_module(module, skip_register_prefixes=("arb_",))

    def test_external_inputs_stay_external(self):
        module = RtlModule("m")
        out = module.add_port("out", "out", 4)
        sel = module.add_net("ext_sel", 4)
        module.add_assign(out, sel.ref())
        netlist = compile_module(module, external=("ext_sel",))
        assert "ext_sel" in netlist.input_names
        regs = netlist.reset_registers()
        outs = {}
        netlist.cycle(regs, {"ext_sel": 3}, outs)
        assert outs["out"] == 3


class TestChannelNetlistCrossCheck:
    def test_random_vectors_match_schedule(self):
        """The generated comb code of a real synthesized channel netlist
        agrees with the interpreted EvalSchedule on seeded vectors."""
        __, result = build_synthesized_design()
        module = result.groups[0].channel_ir
        netlist = compile_module(module)
        schedule = levelize(module).schedule
        boundary = sorted(
            schedule.boundary_nets(), key=lambda net: net.name
        )
        rng = _Lcg(0xC0DE)
        for _ in range(64):
            env = {
                net.name: rng.next_int(1 << min(net.width, 30))
                for net in boundary
            }
            assert netlist.comb(env) == schedule.evaluate(env)

    def test_stats_and_describe(self):
        __, result = build_synthesized_design()
        netlist = compile_module(result.groups[0].channel_ir)
        assert netlist.stats["comb_steps"] > 0
        assert netlist.stats["levels"] >= 2
        assert netlist.register_names
        assert "registers" in netlist.describe()
        assert "def _cycle" in netlist.source


class TestYosysScript:
    def test_conventional_pass_ladder(self):
        script = emit_yosys_script(
            ["chan.v", "obj.v"], "chan", liberty="cells.lib",
            output="mapped.v",
        )
        lines = script.splitlines()
        assert "read -sv chan.v" in lines
        assert "read -sv obj.v" in lines
        assert "hierarchy -check -top chan" in lines
        # The proc/fsm/memory/techmap ladder, in order, then mapping.
        order = [
            lines.index("proc; opt"),
            lines.index("fsm; opt"),
            lines.index("memory; opt"),
            lines.index("techmap; opt"),
            lines.index("dfflibmap -liberty cells.lib"),
            lines.index("abc -liberty cells.lib"),
            lines.index("write_verilog mapped.v"),
        ]
        assert order == sorted(order)
