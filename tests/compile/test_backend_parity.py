"""The equivalence gate: interpreted and compiled backends must agree.

The compiled backend is only allowed to exist because it is
observably identical to the interpreted RTL channel. These tests pin
that down at every level the ISSUE names: committed handshake values
at each delta boundary, cycle accounting and call logs, the committed
``fig4.vcd`` byte for byte, application traces and bus-transaction
signatures on PCI and Wishbone workloads, and span trees.
"""

import os

from repro.compile import CompiledChannel
from repro.core import CommandType, generate_workload
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.flow.platforms import build_wishbone_platform
from repro.hdl import Clock
from repro.instrument.probes import DELTA_END
from repro.kernel import MS, NS, Simulator
from repro.osss import connect
from repro.synthesis import SynthesisConfig, synthesize_communication
from repro.trace import VcdTracer
from repro.trace.attribution import attribute
from repro.trace.spans import SpanTracer
from repro.verify.consistency import check_bus_transactions, check_traces

from tests.analyze.test_passes import Client

COMMITTED_FIG4 = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "fig4.vcd"
)

FIG4_COMMANDS = [
    CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
    CommandType.read(0x100, count=3),
]

WORKLOAD = generate_workload(
    seed=55, n_commands=12, address_span=0x400, max_burst=4,
    partial_byte_enable_fraction=0.2,
)


def _run_latch(backend):
    """The two-client Latch design under one backend; everything an
    outside observer can see, with consecutive identical delta-boundary
    snapshots collapsed (backends may differ in no-op delta counts)."""
    sim = Simulator()
    clock = Clock(sim, "clock", period=10 * NS)
    clients = [Client(sim, f"c{i}", delay=7 * i) for i in range(2)]
    connect(*(c.obj for c in clients))
    result = synthesize_communication(
        sim, clock.clk, SynthesisConfig(emit_hdl=False, backend=backend)
    )
    channel = result.groups[0].channel
    snapshots = []

    def on_delta_end(sim_time, delta_index):
        snap = (
            sim_time,
            channel.state_sig.to_int(),
            channel.grant_sig.to_int(),
            tuple(s.to_int() for s in channel.req),
            tuple(s.to_int() for s in channel.gnt),
            tuple(s.to_int() for s in channel.done),
        )
        if not snapshots or snapshots[-1] != snap:
            snapshots.append(snap)

    sim.probes.subscribe(DELTA_END, on_delta_end)
    sim.run(1000 * NS)
    log = [
        (r.client, r.method, r.request_time, r.grant_time, r.done_time)
        for r in channel.call_log
    ]
    return {
        "snapshots": snapshots,
        "log": log,
        "serviced": channel.calls_serviced,
        "idle": channel.idle_cycles,
        "busy": channel.busy_cycles,
        "end": sim.time,
        "channel": channel,
    }


class TestLatchParity:
    def test_handshake_and_accounting_identical(self):
        a = _run_latch("interpreted")
        b = _run_latch("compiled")
        assert not isinstance(a["channel"], CompiledChannel)
        assert isinstance(b["channel"], CompiledChannel)
        assert a["log"] == b["log"] and len(a["log"]) >= 8
        assert a["serviced"] == b["serviced"]
        assert a["idle"] == b["idle"]
        assert a["busy"] == b["busy"]
        assert a["end"] == b["end"]
        assert a["snapshots"] == b["snapshots"]
        assert len(a["snapshots"]) > 20  # the run exercised the channel

    def test_mean_call_cycles_identical(self):
        a = _run_latch("interpreted")["channel"]
        b = _run_latch("compiled")["channel"]
        assert a.mean_call_cycles(10 * NS) == b.mean_call_cycles(10 * NS)


class TestFig4Parity:
    def test_compiled_fig4_vcd_byte_identical(self, tmp_path):
        """The non-negotiable gate: the committed Figure-4 waveform
        reproduces byte for byte under the compiled backend."""
        fresh = str(tmp_path / "fig4_compiled.vcd")
        bundle = build_pci_platform(
            [FIG4_COMMANDS],
            PciPlatformConfig(wait_states=1, backend="compiled"),
            synthesize=True,
        )
        channel = bundle.synthesis.groups[0].channel
        assert isinstance(channel, CompiledChannel)
        sim = bundle.handle.sim
        vcd = VcdTracer(fresh)
        vcd.add_signals([bundle.clock.clk] + bundle.bus.shared_signals())
        sim.add_tracer(vcd)
        bundle.run(10 * MS)
        vcd.close(sim.time)
        with open(COMMITTED_FIG4, "rb") as handle:
            expected = handle.read()
        with open(fresh, "rb") as handle:
            actual = handle.read()
        assert actual == expected


def _run_platform(build, backend, trace_spans=False):
    bundle = build(
        [WORKLOAD],
        PciPlatformConfig(backend=backend),
        synthesize=True,
    )
    sim = bundle.handle.sim
    tracer = None
    if trace_spans:
        sim.elaborate()
        tracer = SpanTracer(causal=False).attach(sim.probes)
    result = bundle.run(200 * MS)
    channel = bundle.synthesis.groups[0].channel
    out = {
        "traces": result.traces,
        "signatures": bundle.monitor.signatures(),
        "end": sim.time,
        "serviced": channel.calls_serviced,
        "log_len": len(channel.call_log),
        "memory": bundle.memory.dump(0, 0x400 // 4),
        "compiled": isinstance(channel, CompiledChannel),
    }
    if tracer is not None:
        report = attribute(tracer.finalize())
        out["spans"] = (len(report), int(report.mean_latency))
    return out


class TestWorkloadParity:
    def test_pci_platform_parity(self):
        a = _run_platform(build_pci_platform, "interpreted")
        b = _run_platform(build_pci_platform, "compiled")
        assert not a["compiled"] and b["compiled"]
        check_traces(
            a["traces"], b["traces"], "interpreted", "compiled"
        ).require_consistent()
        check_bus_transactions(
            a["signatures"], b["signatures"], "interpreted", "compiled"
        ).require_consistent()
        assert a["end"] == b["end"]
        assert a["serviced"] == b["serviced"] and a["serviced"] > 0
        assert a["log_len"] == b["log_len"]
        assert a["memory"] == b["memory"]

    def test_wishbone_platform_parity(self):
        a = _run_platform(build_wishbone_platform, "interpreted")
        b = _run_platform(build_wishbone_platform, "compiled")
        assert not a["compiled"] and b["compiled"]
        check_traces(
            a["traces"], b["traces"], "interpreted", "compiled"
        ).require_consistent()
        check_bus_transactions(
            a["signatures"], b["signatures"], "interpreted", "compiled"
        ).require_consistent()
        assert a["end"] == b["end"]
        assert a["memory"] == b["memory"]

    def test_span_trees_identical(self):
        a = _run_platform(build_pci_platform, "interpreted",
                          trace_spans=True)
        b = _run_platform(build_pci_platform, "compiled",
                          trace_spans=True)
        assert a["spans"] == b["spans"]
        assert a["spans"][0] > 0
