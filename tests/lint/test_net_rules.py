"""NET0xx rules: netlist dataflow hazards, one injected defect each."""

from repro.lint import Severity
from repro.lint.runner import lint_rtl_module
from repro.synthesis.ir import Const, RtlModule


def _base():
    module = RtlModule("m")
    a = module.add_port("a", "in", 4)
    out = module.add_port("out", "out", 4)
    return module, a, out


class TestDriverConflict:
    def test_comb_and_clocked_mix(self):
        module, a, out = _base()
        reg = module.add_register("reg", 4, 0)
        module.add_assign(reg, a.ref())
        module.add_clocked_assign(reg, a.ref())
        module.add_assign(out, reg.ref())
        (diag,) = lint_rtl_module(module).by_rule("NET001")
        assert diag.severity is Severity.ERROR
        assert diag.path == "m.reg"
        assert "both combinationally" in diag.message

    def test_comb_driven_register(self):
        module, a, out = _base()
        reg = module.add_register("reg", 4, 0)
        module.add_assign(reg, a.ref())
        module.add_assign(out, reg.ref())
        (diag,) = lint_rtl_module(module).by_rule("NET001")
        assert "register is driven by combinational logic" in diag.message

    def test_double_clocked_driver(self):
        module, a, out = _base()
        reg = module.add_register("reg", 4, 0)
        module.add_clocked_assign(reg, a.ref(), enable=Const(1, 1))
        module.add_clocked_assign(reg, Const(0, 4), enable=Const(1, 1))
        module.add_assign(out, reg.ref())
        (diag,) = lint_rtl_module(module).by_rule("NET001")
        assert "2 clocked drivers" in diag.message
        assert "last writer wins" in diag.message

    def test_width_disagreement(self):
        """The builders validate widths, so desync one after the fact:
        the graph check is defense-in-depth against hand-built IR."""
        module, a, out = _base()
        wire = module.add_net("wire", 4)
        module.add_assign(wire, a.ref())
        narrow = module.add_assign(wire, Const(1, 4))
        narrow.expr.width = 2
        module.add_assign(out, wire.ref())
        diags = lint_rtl_module(module).by_rule("NET001")
        assert any("disagree on width" in d.message for d in diags)

    def test_clean_register_quiet(self):
        module, a, out = _base()
        reg = module.add_register("reg", 4, 0)
        module.add_clocked_assign(reg, a.ref())
        module.add_assign(out, reg.ref())
        assert lint_rtl_module(module).by_rule("NET001") == []


class TestUnreadNet:
    def test_driven_unread_wire_fires(self):
        module, a, out = _base()
        dead = module.add_net("dead", 4)
        module.add_assign(dead, a.ref())
        module.add_assign(out, a.ref())
        (diag,) = lint_rtl_module(module).by_rule("NET002")
        assert diag.severity is Severity.WARNING
        assert diag.path == "m.dead"

    def test_read_wire_is_quiet(self):
        module, a, out = _base()
        wire = module.add_net("wire", 4)
        module.add_assign(wire, a.ref())
        module.add_assign(out, wire.ref())
        assert lint_rtl_module(module).by_rule("NET002") == []

    def test_registers_and_ports_exempt(self):
        """Storage and boundary nets are other rules' concern."""
        module, a, out = _base()
        reg = module.add_register("unread_reg", 4, 0)
        module.add_clocked_assign(reg, a.ref())
        module.add_assign(out, a.ref())
        assert lint_rtl_module(module).by_rule("NET002") == []


class TestCombLoop:
    def test_injected_loop_fires(self):
        module, a, out = _base()
        x = module.add_net("x", 4)
        y = module.add_net("y", 4)
        module.add_assign(x, y.ref())
        module.add_assign(y, x.ref())
        module.add_assign(out, x.ref())
        (diag,) = lint_rtl_module(module).by_rule("NET003")
        assert diag.severity is Severity.ERROR
        assert "combinational loop:" in diag.message
        assert "->" in diag.message

    def test_register_breaks_the_loop(self):
        module, a, out = _base()
        reg = module.add_register("reg", 4, 0)
        x = module.add_net("x", 4)
        module.add_assign(x, reg.ref())
        module.add_clocked_assign(reg, x.ref())
        module.add_assign(out, x.ref())
        assert lint_rtl_module(module).by_rule("NET003") == []


class TestXPropagation:
    def test_unreset_register_taints_output(self):
        module, a, out = _base()
        floating = module.add_register("floating", 4, None)
        module.add_clocked_assign(floating, a.ref())
        module.add_assign(out, floating.ref())
        (diag,) = lint_rtl_module(module).by_rule("NET004")
        assert diag.severity is Severity.WARNING
        assert diag.path == "m.out"
        assert diag.extra["source"] == "floating"
        assert diag.extra["path"] == "floating -> out"

    def test_reset_register_is_quiet(self):
        module, a, out = _base()
        reg = module.add_register("reg", 4, 0)
        module.add_clocked_assign(reg, a.ref())
        module.add_assign(out, reg.ref())
        assert lint_rtl_module(module).by_rule("NET004") == []
