"""Suppression parsing, matching and validation edge cases."""

import pytest

from repro.analyze.cli import _split_suppressions
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import (
    LintConfig,
    LintRuleError,
    Suppression,
    validate_suppressions,
)
from repro.lint.runner import lint_rtl_module
from repro.synthesis.ir import RtlModule


def _diag(rule_id="NET002", path="m.dead", rule_name="unread-net"):
    return Diagnostic(rule_id, Severity.WARNING, path, "msg",
                      rule_name=rule_name)


class TestSuppressionParse:
    def test_bare_rule(self):
        s = Suppression.parse("NET002")
        assert s.rule == "NET002" and s.path_pattern is None

    def test_rule_with_glob(self):
        s = Suppression.parse("NET002@m.*")
        assert s.rule == "NET002" and s.path_pattern == "m.*"

    def test_whitespace_stripped(self):
        assert Suppression.parse("  NET002  ").rule == "NET002"

    @pytest.mark.parametrize("bad", ["", "@glob", "NET002@"])
    def test_malformed_entries_rejected(self, bad):
        with pytest.raises(LintRuleError):
            Suppression.parse(bad)


class TestSuppressionMatch:
    def test_matches_rule_id(self):
        assert Suppression.parse("NET002").matches(_diag())

    def test_matches_symbolic_name(self):
        assert Suppression.parse("unread-net").matches(_diag())

    def test_glob_limits_to_paths(self):
        s = Suppression.parse("NET002@m.*")
        assert s.matches(_diag(path="m.dead"))
        assert not s.matches(_diag(path="other.dead"))

    def test_glob_is_case_sensitive(self):
        assert not Suppression.parse("NET002@M.*").matches(_diag())

    def test_other_rule_not_matched(self):
        assert not Suppression.parse("NET001").matches(_diag())


class TestSplitSuppressions:
    def test_comma_separated_entries(self):
        assert _split_suppressions(["NET001,NET002", "FSM003"]) == [
            "NET001", "NET002", "FSM003",
        ]

    def test_blank_fragments_dropped(self):
        assert _split_suppressions(["NET001,,  ,NET002"]) == [
            "NET001", "NET002",
        ]

    def test_glob_survives_splitting(self):
        assert _split_suppressions(["NET002@m.*,FSM001"]) == [
            "NET002@m.*", "FSM001",
        ]


class TestValidateSuppressions:
    def test_known_ids_and_names_pass(self):
        assert validate_suppressions(
            ["NET001", "unread-net", "RACE001@top.*"]
        ) == []

    def test_unknown_rule_reported(self):
        assert validate_suppressions(["NET001", "BOGUS999"]) == ["BOGUS999"]

    def test_malformed_entry_raises(self):
        with pytest.raises(LintRuleError):
            validate_suppressions(["@glob"])


class TestEngineSuppression:
    def _dead_net_module(self):
        module = RtlModule("m")
        a = module.add_port("a", "in", 4)
        out = module.add_port("out", "out", 4)
        dead = module.add_net("dead", 4)
        module.add_assign(dead, a.ref())
        module.add_assign(out, a.ref())
        return module

    def test_suppressed_finding_counted(self):
        module = self._dead_net_module()
        report = lint_rtl_module(module, LintConfig(suppress=["NET002"]))
        assert report.by_rule("NET002") == []
        assert report.suppressed == 1

    def test_glob_scoped_suppression(self):
        module = self._dead_net_module()
        hit = lint_rtl_module(module,
                              LintConfig(suppress=["NET002@m.dead"]))
        assert hit.by_rule("NET002") == []
        miss = lint_rtl_module(module,
                               LintConfig(suppress=["NET002@other.*"]))
        assert len(miss.by_rule("NET002")) == 1

    def test_strict_promotes_warnings(self):
        module = self._dead_net_module()
        report = lint_rtl_module(module, LintConfig(strict=True))
        (diag,) = report.by_rule("NET002")
        assert diag.severity is Severity.ERROR
        assert report.has_errors
