"""SARIF / plain-JSON rendering of lint reports."""

import json

from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.sarif import render_json, render_sarif, sarif_log


def _report():
    report = LintReport("unit")
    report.rules_run.append("NET002")
    report.add(Diagnostic(
        "NET002", Severity.WARNING, "m.dead",
        "net is driven but never read", "delete it",
        rule_name="unread-net",
    ))
    report.add(Diagnostic(
        "NET001", Severity.ERROR, "m.reg", "driver conflict",
        rule_name="driver-conflict", extra={"kind": "mix"},
    ))
    report.add(Diagnostic(
        "NET002", Severity.WARNING, "m.dead2",
        "net is driven but never read",
        rule_name="unread-net",
    ))
    return report


class TestSarifLog:
    def test_structure(self):
        log = sarif_log([_report()], "repro-analyze")
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        assert len(run["results"]) == 3

    def test_rules_deduplicated(self):
        run = sarif_log([_report()])["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["NET002", "NET001"]
        # Both NET002 results point at the same rule index.
        net002 = [r for r in run["results"] if r["ruleId"] == "NET002"]
        assert {r["ruleIndex"] for r in net002} == {0}

    def test_severity_levels(self):
        results = sarif_log([_report()])["runs"][0]["results"]
        levels = {r["ruleId"]: r["level"] for r in results}
        assert levels["NET001"] == "error"
        assert levels["NET002"] == "warning"

    def test_logical_location_carries_design_path(self):
        results = sarif_log([_report()])["runs"][0]["results"]
        paths = {
            r["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
            for r in results
        }
        assert paths == {"m.dead", "m.dead2", "m.reg"}

    def test_extra_becomes_properties(self):
        results = sarif_log([_report()])["runs"][0]["results"]
        (net001,) = [r for r in results if r["ruleId"] == "NET001"]
        assert net001["properties"] == {"kind": "mix"}

    def test_hint_embedded_in_message(self):
        results = sarif_log([_report()])["runs"][0]["results"]
        hinted = [r for r in results
                  if "(hint: delete it)" in r["message"]["text"]]
        assert len(hinted) == 1

    def test_render_is_valid_json(self):
        parsed = json.loads(render_sarif([_report()]))
        assert parsed["runs"][0]["results"]


class TestRenderJson:
    def test_plain_json_shape(self):
        (payload,) = json.loads(render_json([_report()]))
        assert payload["subject"] == "unit"
        assert payload["counts"]["warning"] == 2
        assert payload["counts"]["error"] == 1
        assert len(payload["diagnostics"]) == 3
        assert payload["rules_run"] == ["NET002"]
