"""MOD0xx rules: one deliberately-broken fixture per rule."""

from repro.lint import Severity, lint_design

from . import fixtures


def rule_ids(report):
    return {d.rule_id for d in report.diagnostics}


class TestUnboundPort:
    def test_fires_mod001(self):
        report = lint_design(fixtures.make_unbound_port())
        assert rule_ids(report) == {"MOD001"}
        (diag,) = report.by_rule("MOD001")
        assert diag.severity is Severity.ERROR
        assert diag.path == "top.din"
        assert "never bound" in diag.message
        assert diag.hint

    def test_bound_port_is_clean(self):
        import repro.hdl.module as module_mod
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class Sink(module_mod.Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.din = self.in_port("din", width=8)
                self.wire = self.signal("wire", width=8, init=0)
                self.din.bind(self.wire)

        Sink(sim, "top")
        assert lint_design(sim).clean


class TestMultipleWriters:
    def test_fires_mod002(self):
        report = lint_design(fixtures.make_double_writer())
        assert rule_ids(report) == {"MOD002"}
        (diag,) = report.by_rule("MOD002")
        assert diag.severity is Severity.ERROR
        assert "driver_a" in diag.message and "driver_b" in diag.message

    def test_multi_writer_signal_not_flagged(self):
        """Without single_writer the rule must stay quiet."""
        from repro.hdl.module import Module
        from repro.kernel.process import Timeout
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class SharedOk(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.strobe = self.signal("strobe", width=1, init=0)
                self.thread(self._a, "a")
                self.thread(self._b, "b")

            def _a(self):
                self.strobe.write(1)
                yield Timeout(10)

            def _b(self):
                self.strobe.write(0)
                yield Timeout(10)

        SharedOk(sim, "top")
        assert lint_design(sim).clean


class TestDeadEventWait:
    def test_fires_mod003(self):
        report = lint_design(fixtures.make_dead_event_wait())
        assert rule_ids(report) == {"MOD003"}
        (diag,) = report.by_rule("MOD003")
        assert diag.severity is Severity.WARNING
        assert "wait_forever" in diag.message

    def test_notified_event_is_clean(self):
        from repro.hdl.module import Module
        from repro.kernel.process import Timeout
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class PingPong(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.go = self.event("go")
                self.thread(self._waiter, "waiter")
                self.thread(self._notifier, "notifier")

            def _waiter(self):
                yield self.go

            def _notifier(self):
                yield Timeout(5)
                self.go.notify()

        PingPong(sim, "top")
        assert lint_design(sim).clean


class TestCombinationalLoop:
    def test_fires_mod004(self):
        report = lint_design(fixtures.make_combinational_loop())
        assert rule_ids(report) == {"MOD004"}
        (diag,) = report.by_rule("MOD004")
        assert diag.severity is Severity.ERROR
        assert "invert" in diag.message and "follow" in diag.message

    def test_acyclic_methods_are_clean(self):
        from repro.hdl.module import Module
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class Pipeline(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.a = self.signal("a", width=1, init=0)
                self.b = self.signal("b", width=1, init=0)
                self.method(self._stage, sensitivity=[self.a], name="stage")

            def _stage(self):
                self.b.write(self.a.read())

        Pipeline(sim, "top")
        assert lint_design(sim).clean
