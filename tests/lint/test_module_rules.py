"""MOD0xx rules: one deliberately-broken fixture per rule."""

from repro.lint import Severity, lint_design

from . import fixtures


def rule_ids(report):
    return {d.rule_id for d in report.diagnostics}


class TestUnboundPort:
    def test_fires_mod001(self):
        report = lint_design(fixtures.make_unbound_port())
        assert rule_ids(report) == {"MOD001"}
        (diag,) = report.by_rule("MOD001")
        assert diag.severity is Severity.ERROR
        assert diag.path == "top.din"
        assert "never bound" in diag.message
        assert diag.hint

    def test_bound_port_is_clean(self):
        import repro.hdl.module as module_mod
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class Sink(module_mod.Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.din = self.in_port("din", width=8)
                self.wire = self.signal("wire", width=8, init=0)
                self.din.bind(self.wire)

        Sink(sim, "top")
        assert lint_design(sim).clean


class TestMultipleWriters:
    def test_fires_mod002(self):
        report = lint_design(fixtures.make_double_writer())
        assert rule_ids(report) == {"MOD002"}
        (diag,) = report.by_rule("MOD002")
        assert diag.severity is Severity.ERROR
        assert "driver_a" in diag.message and "driver_b" in diag.message

    def test_multi_writer_signal_not_flagged(self):
        """Without single_writer the rule must stay quiet."""
        from repro.hdl.module import Module
        from repro.kernel.process import Timeout
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class SharedOk(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.strobe = self.signal("strobe", width=1, init=0)
                self.thread(self._a, "a")
                self.thread(self._b, "b")

            def _a(self):
                self.strobe.write(1)
                yield Timeout(10)

            def _b(self):
                self.strobe.write(0)
                yield Timeout(10)

        SharedOk(sim, "top")
        assert lint_design(sim).clean


class TestDeadEventWait:
    def test_fires_mod003(self):
        report = lint_design(fixtures.make_dead_event_wait())
        assert rule_ids(report) == {"MOD003"}
        (diag,) = report.by_rule("MOD003")
        assert diag.severity is Severity.WARNING
        assert "wait_forever" in diag.message

    def test_notified_event_is_clean(self):
        from repro.hdl.module import Module
        from repro.kernel.process import Timeout
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class PingPong(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.go = self.event("go")
                self.thread(self._waiter, "waiter")
                self.thread(self._notifier, "notifier")

            def _waiter(self):
                yield self.go

            def _notifier(self):
                yield Timeout(5)
                self.go.notify()

        PingPong(sim, "top")
        assert lint_design(sim).clean


class TestCombinationalLoop:
    def test_fires_mod004(self):
        report = lint_design(fixtures.make_combinational_loop())
        assert rule_ids(report) == {"MOD004"}
        (diag,) = report.by_rule("MOD004")
        assert diag.severity is Severity.ERROR
        assert "invert" in diag.message and "follow" in diag.message

    def test_acyclic_methods_are_clean(self):
        from repro.hdl.module import Module
        from repro.kernel.simulator import Simulator

        sim = Simulator()

        class Pipeline(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.a = self.signal("a", width=1, init=0)
                self.b = self.signal("b", width=1, init=0)
                self.method(self._stage, sensitivity=[self.a], name="stage")

            def _stage(self):
                self.b.write(self.a.read())

        Pipeline(sim, "top")
        assert lint_design(sim).clean


class TestInterfaceElementShape:
    def _sim_with(self, element_cls):
        from repro.kernel.simulator import Simulator

        sim = Simulator()
        element_cls(sim, "iface")
        return sim

    def test_fires_mod005_on_abstract_tags(self):
        from repro.iface import InterfaceElement

        class Tagless(InterfaceElement):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.thread(self._idle, "idle")

            def _idle(self):
                yield from self.channel.call("get_command")

        report = lint_design(self._sim_with(Tagless))
        (diag,) = report.by_rule("MOD005")
        assert diag.severity is Severity.ERROR
        assert "abstract" in diag.message

    def test_fires_mod005_on_missing_process(self):
        from repro.iface import InterfaceElement

        class Inert(InterfaceElement):
            BUS_NAME = "inert"
            ABSTRACTION = "pin_accurate"

        report = lint_design(self._sim_with(Inert))
        messages = [d.message for d in report.by_rule("MOD005")]
        assert any("no process" in m for m in messages)

    def test_fires_mod005_on_extra_channel(self):
        from repro.iface import InterfaceElement
        from repro.osss import GlobalObject

        class Chatty(InterfaceElement):
            BUS_NAME = "chatty"
            ABSTRACTION = "pin_accurate"

            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.side = GlobalObject(self, "side", _SideState)
                self.thread(self._idle, "idle")

            def _idle(self):
                yield from self.channel.call("get_command")

        report = lint_design(self._sim_with(Chatty))
        messages = [d.message for d in report.by_rule("MOD005")]
        assert any("extra global objects" in m for m in messages)

    def test_library_elements_are_clean(self):
        """The re-seated library IPs pass with zero suppressions."""
        from repro.core import generate_workload
        from repro.flow import build_platform

        workload = generate_workload(seed=3, n_commands=4,
                                     address_span=0x100)
        for bus in ("pci", "wishbone", "axi4lite", "tlmgp"):
            bundle = build_platform([workload], bus=bus)
            assert lint_design(bundle.handle.sim).clean, bus


class _SideState:
    def ping(self):
        return 1
