"""Engine policy: suppression syntax, strict mode, registry, report."""

import pytest

from repro.lint import (
    DESIGN,
    Diagnostic,
    LintConfig,
    LintEngine,
    LintReport,
    LintRule,
    LintRuleError,
    RuleRegistry,
    Severity,
    Suppression,
    default_registry,
    worst_severity,
)


def make_diag(rule_id="TST001", severity=Severity.WARNING,
              path="top.unit", rule_name="test-rule"):
    return Diagnostic(rule_id, severity, path, "message", "hint", rule_name)


class TestSuppression:
    def test_parse_plain_rule(self):
        suppression = Suppression.parse("MOD003")
        assert suppression.rule == "MOD003"
        assert suppression.path_pattern is None

    def test_parse_with_glob(self):
        suppression = Suppression.parse("MOD003@top.iface.*")
        assert suppression.path_pattern == "top.iface.*"

    @pytest.mark.parametrize("bad", ["", "@glob", "RULE@"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(LintRuleError):
            Suppression.parse(bad)

    def test_matches_by_rule_id(self):
        assert Suppression.parse("TST001").matches(make_diag())

    def test_matches_by_symbolic_name(self):
        assert Suppression.parse("test-rule").matches(make_diag())

    def test_glob_limits_to_path(self):
        suppression = Suppression.parse("TST001@top.other.*")
        assert not suppression.matches(make_diag(path="top.unit"))
        assert suppression.matches(make_diag(path="top.other.x"))

    def test_other_rule_not_matched(self):
        assert not Suppression.parse("TST999").matches(make_diag())


class TestLintConfig:
    def test_suppressed_finding_dropped(self):
        config = LintConfig(suppress=["TST001"])
        assert config.effective(make_diag()) is None

    def test_strict_promotes_warnings(self):
        config = LintConfig(strict=True)
        diag = config.effective(make_diag(severity=Severity.WARNING))
        assert diag.severity is Severity.ERROR

    def test_strict_leaves_info_alone(self):
        config = LintConfig(strict=True)
        diag = config.effective(make_diag(severity=Severity.INFO))
        assert diag.severity is Severity.INFO

    def test_severity_override(self):
        config = LintConfig(severity_overrides={"TST001": Severity.INFO})
        diag = config.effective(make_diag(severity=Severity.ERROR))
        assert diag.severity is Severity.INFO


class TestRegistry:
    def test_duplicate_rule_id_rejected(self):
        registry = RuleRegistry()

        class Rule(LintRule):
            rule_id = "DUP001"
            name = "dup"

        registry.register(Rule())
        with pytest.raises(LintRuleError):
            registry.register(Rule())

    def test_anonymous_rule_rejected(self):
        with pytest.raises(LintRuleError):
            RuleRegistry().register(LintRule())

    def test_unknown_rule_lookup_raises(self):
        with pytest.raises(LintRuleError):
            RuleRegistry().get("NOPE01")

    def test_default_registry_has_all_rule_layers(self):
        ids = {rule.rule_id for rule in default_registry.rules()}
        assert len(ids) >= 10
        assert {"MOD001", "MOD002", "MOD003", "MOD004"} <= ids
        assert {"GRD001", "GRD002", "GRD003", "GRD004"} <= ids
        assert {"IR001", "IR002", "IR003", "IR004", "IR005"} <= ids


class TestEngineRun:
    def test_suppression_counted(self):
        registry = RuleRegistry()

        class Noisy(LintRule):
            rule_id = "TST001"
            name = "noisy"
            target = DESIGN

            def check(self, subject):
                yield self.emit("top.a", "boom")
                yield self.emit("top.b", "boom")

        registry.register(Noisy())
        engine = LintEngine(LintConfig(suppress=["TST001@top.a"]), registry)
        report = engine.run(object(), DESIGN, "unit")
        assert report.suppressed == 1
        assert [d.path for d in report.diagnostics] == ["top.b"]
        assert report.rules_run == ["TST001"]


class TestReport:
    def test_counts_and_summary(self):
        report = LintReport("unit")
        report.add(make_diag(severity=Severity.ERROR))
        report.add(make_diag(severity=Severity.WARNING))
        assert report.counts() == {"error": 1, "warning": 1, "info": 0}
        assert report.has_errors
        assert not report.clean
        assert "1 error, 1 warning" in report.summary_line()

    def test_render_orders_worst_first(self):
        report = LintReport("unit")
        report.add(make_diag(rule_id="TSTB02", severity=Severity.WARNING))
        report.add(make_diag(rule_id="TSTA01", severity=Severity.ERROR))
        lines = report.render().splitlines()
        assert lines[1].startswith("error[TSTA01]")

    def test_extend_merges(self):
        first, second = LintReport("a"), LintReport("b")
        first.rules_run = ["R1"]
        second.rules_run = ["R1", "R2"]
        second.add(make_diag())
        second.suppressed = 3
        first.extend(second)
        assert len(first.diagnostics) == 1
        assert first.suppressed == 3
        assert first.rules_run == ["R1", "R2"]

    def test_worst_severity(self):
        assert worst_severity([]) is None
        assert worst_severity(
            [make_diag(severity=Severity.WARNING),
             make_diag(severity=Severity.ERROR)]
        ) is Severity.ERROR
