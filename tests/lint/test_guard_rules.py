"""GRD0xx rules over the OSSS global objects."""

from repro.lint import Severity, lint_design

from . import fixtures


def rule_ids(report):
    return {d.rule_id for d in report.diagnostics}


class TestImpureGuard:
    def test_fires_grd001(self):
        report = lint_design(fixtures.make_impure_guard())
        assert "GRD001" in rule_ids(report)
        diag = report.by_rule("GRD001")[0]
        assert diag.severity is Severity.WARNING
        assert "top.cell.take" == diag.path
        assert "append" in diag.message


class TestDeadGuard:
    def test_fires_grd002(self):
        report = lint_design(fixtures.make_dead_guard())
        assert rule_ids(report) == {"GRD002"}
        (diag,) = report.by_rule("GRD002")
        assert diag.severity is Severity.ERROR
        assert diag.path == "top.cell.proceed"
        assert "ready" in diag.message
        assert "deadlock" in diag.message

    def test_written_guard_attr_is_clean(self):
        """Same shape, but a method writes the guarded attribute."""
        from repro.hdl.module import Module
        from repro.kernel.simulator import Simulator
        from repro.osss.global_object import GlobalObject
        from repro.osss.guarded_method import guarded_method

        class LiveGuardCell:
            def __init__(self):
                self.ready = False

            @guarded_method(lambda self: self.ready)
            def proceed(self):
                return 1

            def arm(self):
                self.ready = True

        sim = Simulator()

        class Host(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.cell = GlobalObject(self, "cell", LiveGuardCell)

        Host(sim, "top")
        assert lint_design(sim).clean


class TestGuardWaitCycle:
    def test_fires_grd003(self):
        report = lint_design(fixtures.make_guard_wait_cycle())
        assert rule_ids(report) == {"GRD003"}
        diag = report.by_rule("GRD003")[0]
        assert diag.severity is Severity.WARNING
        assert "deadlock cycle" in diag.message
        assert "worker_a" in diag.message and "worker_b" in diag.message

    def test_put_before_take_is_clean(self):
        """Reordering one worker breaks the cycle — rule stays quiet."""
        from repro.hdl.module import Module
        from repro.kernel.simulator import Simulator
        from repro.osss.global_object import GlobalObject

        sim = Simulator()

        class Host(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.left = GlobalObject(self, "left", fixtures.HandoffCell)
                self.right = GlobalObject(self, "right", fixtures.HandoffCell)
                self.thread(self._worker_a, "worker_a")
                self.thread(self._worker_b, "worker_b")

            def _worker_a(self):
                yield from self.left.call("take")
                yield from self.right.call("put")

            def _worker_b(self):
                yield from self.left.call("put")
                yield from self.right.call("take")

        Host(sim, "top")
        assert lint_design(sim).clean


class TestNonBoolGuard:
    def test_fires_grd004(self):
        report = lint_design(fixtures.make_non_bool_guard())
        assert rule_ids(report) == {"GRD004"}
        (diag,) = report.by_rule("GRD004")
        assert diag.severity is Severity.WARNING
        assert diag.path == "top.cell.consume"
        assert "int" in diag.message
