"""``python -m repro lint`` CLI: formats, catalogue, bad input."""

import json

from repro.lint import cli


class TestLintCli:
    def test_list_rules_catalogue(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("MOD001", "NET001", "FSM001", "RACE001"):
            assert rule_id in out

    def test_unknown_suppression_rejected(self, capsys):
        assert cli.main(["--suppress", "BOGUS999",
                         "--target", "functional"]) == 2
        assert "unknown rule in --suppress" in capsys.readouterr().out

    def test_functional_target_table(self, capsys):
        assert cli.main(["--target", "functional"]) == 0
        assert "functional" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert cli.main(["--target", "functional",
                         "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload and payload[0]["subject"]
        assert "counts" in payload[0]

    def test_sarif_format_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "lint.sarif"
        assert cli.main(["--target", "functional", "--format", "sarif",
                         "--output", str(out_file)]) == 0
        sarif = json.loads(out_file.read_text())
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
        # Summary line still reaches stdout.
        assert capsys.readouterr().out.strip()
