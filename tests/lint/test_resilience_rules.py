"""RES001: guarded calls with neither provable liveness nor a policy."""

from repro.hdl.module import Module
from repro.kernel.simulator import Simulator
from repro.lint import Severity, lint_design
from repro.osss.global_object import GlobalObject
from repro.osss.guarded_method import guarded_method
from repro.resilience import RetryPolicy, attach_retry_policy


class _StuckCell:
    """take() waits on a flag no method ever writes."""

    def __init__(self):
        self.ready = False

    @guarded_method(lambda self: self.ready)
    def take(self):
        return 1


class _LiveCell:
    """Same guard shape, but arm() can open it."""

    def __init__(self):
        self.ready = False

    @guarded_method(lambda self: self.ready)
    def take(self):
        return 1

    def arm(self):
        self.ready = True


class _OpenCell:
    """Guard is true from reset: callers proceed immediately."""

    def __init__(self):
        self.ready = True

    @guarded_method(lambda self: self.ready)
    def take(self):
        return 1


def _host(cell_cls, n_callers=1):
    sim = Simulator()

    class Host(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.obj = GlobalObject(self, "obj", cell_cls)
            for i in range(n_callers):
                self.thread(self._work, f"work{i}")

        def _work(self):
            yield from self.obj.call("take")

    return sim, Host(sim, "top")


class TestRes001:
    def test_unprotected_dead_guard_call_warns(self):
        sim, __ = _host(_StuckCell)
        diagnostics = lint_design(sim).by_rule("RES001")
        assert len(diagnostics) == 1
        (diag,) = diagnostics
        assert diag.severity is Severity.WARNING
        assert diag.path == "top.obj.take"
        assert "retry policy" in diag.message
        assert "RetryPolicy" in diag.hint

    def test_one_warning_per_method_not_per_call_site(self):
        sim, __ = _host(_StuckCell, n_callers=3)
        assert len(lint_design(sim).by_rule("RES001")) == 1

    def test_attached_policy_silences_the_rule(self):
        sim, host = _host(_StuckCell)
        attach_retry_policy(host.obj, RetryPolicy(), ("take",))
        assert not lint_design(sim).by_rule("RES001")

    def test_wildcard_policy_silences_the_rule(self):
        sim, host = _host(_StuckCell)
        attach_retry_policy(host.obj, RetryPolicy())
        assert not lint_design(sim).by_rule("RES001")

    def test_enabling_writer_proves_liveness(self):
        sim, __ = _host(_LiveCell)
        assert not lint_design(sim).by_rule("RES001")

    def test_initially_open_guard_is_clean(self):
        sim, __ = _host(_OpenCell)
        assert not lint_design(sim).by_rule("RES001")
