"""FSM0xx rules: liveness defects in synthesized state machines."""

from repro.lint import Severity
from repro.lint.runner import lint_rtl_module
from repro.synthesis.ir import Const, Fsm, RtlModule


def _host(fsm):
    module = RtlModule("m")
    module.add_fsm(fsm)
    return module


class TestTerminalState:
    def test_dead_end_state_fires(self):
        module = RtlModule("m")
        go = module.add_port("go", "in", 1)
        fsm = Fsm("ctrl", ["IDLE", "STUCK"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "STUCK")
        module.add_fsm(fsm)
        (diag,) = lint_rtl_module(module).by_rule("FSM001")
        assert diag.severity is Severity.ERROR
        assert diag.path == "m.ctrl.STUCK"
        assert diag.hint

    def test_live_fsm_is_quiet(self):
        module = RtlModule("m")
        go = module.add_port("go", "in", 1)
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        module.add_fsm(fsm)
        assert lint_rtl_module(module).by_rule("FSM001") == []


class TestFalseTransition:
    def test_const_false_guard_fires(self):
        module = RtlModule("m")
        go = module.add_port("go", "in", 1)
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("IDLE", Const(0, 1), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        module.add_fsm(fsm)
        (diag,) = lint_rtl_module(module).by_rule("FSM002")
        assert diag.severity is Severity.WARNING
        assert diag.path == "m.ctrl.IDLE->RUN"


class TestLivelockCycle:
    def test_unconditional_spin_fires(self):
        fsm = Fsm("ctrl", ["A", "B"], "A")
        fsm.add_transition("A", None, "B")
        fsm.add_transition("B", None, "A")
        (diag,) = lint_rtl_module(_host(fsm)).by_rule("FSM003")
        assert diag.severity is Severity.WARNING
        assert diag.path.startswith("m.ctrl.")
        assert "A -> B" in diag.message

    def test_working_protocol_fsm_is_quiet(self):
        """The channel-shaped IDLE/EXEC/DONE machine must not be flagged."""
        module = RtlModule("m")
        go = module.add_port("go", "in", 1)
        done = module.add_port("done_in", "in", 1)
        fsm = Fsm("server", ["IDLE", "EXEC", "DONE"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "EXEC")
        fsm.add_transition("EXEC", done.ref(), "DONE")
        fsm.add_transition("DONE", None, "IDLE")
        module.add_fsm(fsm)
        report = lint_rtl_module(module)
        assert report.by_rule("FSM001") == []
        assert report.by_rule("FSM002") == []
        assert report.by_rule("FSM003") == []
