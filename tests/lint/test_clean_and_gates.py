"""No false positives on the shipped platforms; error findings gate
both the design flow and the synthesis tool."""

import pytest

from repro.core import generate_workload
from repro.errors import SynthesisError
from repro.flow import (
    DesignFlow,
    build_functional_platform,
    build_pci_platform,
    build_wishbone_platform,
    standard_flow_builders,
)
from repro.hdl.module import Module
from repro.kernel import MS
from repro.lint import LintConfig, lint_design, lint_synthesis
from repro.synthesis.ir import Const, RtlModule
from repro.synthesis.tool import _lint_group_netlists

WORKLOADS = [generate_workload(seed=7, n_commands=4, address_span=0x100,
                               max_burst=2)]


class TestExamplesLintClean:
    """The checked-in example platforms must produce zero findings."""

    def test_functional_platform(self):
        bundle = build_functional_platform(WORKLOADS)
        assert lint_design(bundle.handle.sim).clean

    def test_pci_platform(self):
        bundle = build_pci_platform(WORKLOADS)
        assert lint_design(bundle.handle.sim).clean

    def test_wishbone_platform(self):
        bundle = build_wishbone_platform(WORKLOADS)
        assert lint_design(bundle.handle.sim).clean

    def test_synthesized_pci_platform_and_netlists(self):
        bundle = build_pci_platform(WORKLOADS, synthesize=True)
        assert lint_design(bundle.handle.sim).clean
        report = lint_synthesis(bundle.synthesis)
        assert report.clean
        # Every group's netlists were visited.
        assert report.subject == "synthesis"
        assert {"IR001", "IR002", "IR003", "IR004", "IR005"} <= set(
            report.rules_run
        )


class TestFlowGate:
    def test_flow_refuses_design_with_errors(self):
        """An unbound port in the implementation model aborts the flow
        at the lint stage, before synthesis is attempted."""
        functional, implementation = standard_flow_builders(WORKLOADS)

        def broken_implementation(synthesize):
            handle, synthesis = implementation(synthesize)

            class Dangling(Module):
                def __init__(self, parent, name):
                    super().__init__(parent, name)
                    self.loose = self.in_port("loose", width=1)

            Dangling(handle.sim, "dangling")
            return handle, synthesis

        flow = DesignFlow({"name": "broken"}, functional,
                          broken_implementation)
        with pytest.raises(SynthesisError, match="MOD001"):
            flow.run(20 * MS)

    def test_suppression_lets_flow_pass(self):
        functional, implementation = standard_flow_builders(WORKLOADS)

        def broken_implementation(synthesize):
            handle, synthesis = implementation(synthesize)

            class Dangling(Module):
                def __init__(self, parent, name):
                    super().__init__(parent, name)
                    self.loose = self.in_port("loose", width=1)

            Dangling(handle.sim, "dangling")
            return handle, synthesis

        flow = DesignFlow(
            {"name": "waived"}, functional, broken_implementation,
            lint_config=LintConfig(suppress=["MOD001@dangling.*"]),
        )
        # The simulation stages still fail elaboration on the unbound
        # port, but lint itself must not be the stage that stops it.
        with pytest.raises(Exception) as excinfo:
            flow.run(20 * MS)
        assert "MOD001" not in str(excinfo.value)


class TestSynthesisGate:
    def test_broken_netlist_aborts_synthesis(self):
        module = RtlModule("broken")
        wire = module.add_net("wire", 1)
        out = module.add_port("out", "out", 1)
        module.add_assign(wire, Const(0, 1))
        module.add_assign(wire, Const(1, 1))
        module.add_assign(out, wire.ref())
        with pytest.raises(SynthesisError, match="IR005"):
            _lint_group_netlists("g0", [module])

    def test_clean_netlist_passes(self):
        module = RtlModule("fine")
        out = module.add_port("out", "out", 1)
        module.add_assign(out, Const(1, 1))
        _lint_group_netlists("g0", [module])
