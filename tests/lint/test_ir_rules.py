"""IR0xx rules over hand-built (and hand-broken) netlists."""

from repro.lint import Severity, lint_rtl_module
from repro.synthesis.ir import Const, Fsm, RtlModule


def rule_ids(report):
    return {d.rule_id for d in report.diagnostics}


def clean_module() -> RtlModule:
    """A small but fully-legal netlist."""
    module = RtlModule("ok")
    module.add_port("clk", "in", 1)
    enable = module.add_port("enable", "in", 1)
    out = module.add_port("out", "out", 1)
    counter = module.add_register("counter", 4, 0)
    module.add_clocked_assign(counter, Const(1, 4), enable=enable.ref())
    wire = module.add_net("wire", 1)
    module.add_assign(wire, enable.ref())
    module.add_assign(out, wire.ref())
    fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
    fsm.add_transition("IDLE", enable.ref(), "RUN")
    fsm.add_transition("RUN", None, "IDLE")
    module.add_fsm(fsm)
    return module


class TestCleanModule:
    def test_no_findings(self):
        assert lint_rtl_module(clean_module()).clean


class TestUnreachableFsmState:
    def test_fires_ir001(self):
        module = RtlModule("m")
        go = module.add_port("go", "in", 1)
        fsm = Fsm("ctrl", ["IDLE", "RUN", "ORPHAN"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        module.add_fsm(fsm)
        report = lint_rtl_module(module)
        assert rule_ids(report) == {"IR001"}
        (diag,) = report.by_rule("IR001")
        assert diag.severity is Severity.WARNING
        assert diag.path == "m.ctrl.ORPHAN"


class TestWidthMismatch:
    def test_fires_ir002_on_mutated_net(self):
        module = RtlModule("m")
        src = module.add_port("src", "in", 4)
        dst = module.add_port("dst", "out", 4)
        module.add_assign(dst, src.ref())
        # Post-construction surgery: widen the source net. The cached
        # Ref width (4) and the assign no longer agree.
        src.width = 8
        report = lint_rtl_module(module)
        assert "IR002" in rule_ids(report)
        assert any(d.severity is Severity.ERROR
                   for d in report.by_rule("IR002"))

    def test_fires_ir002_on_oversized_moore_output(self):
        module = RtlModule("m")
        out = module.add_port("out", "out", 1)
        fsm = Fsm("ctrl", ["IDLE"], "IDLE")
        fsm.add_transition("IDLE", None, "IDLE")
        fsm.set_output("IDLE", out, 1)
        module.add_fsm(fsm)
        fsm.moore_outputs["IDLE"] = [(out, 7)]  # does not fit 1 bit
        report = lint_rtl_module(module)
        assert "IR002" in rule_ids(report)


class TestUndrivenRegister:
    def test_fires_ir003(self):
        module = RtlModule("m")
        module.add_port("clk", "in", 1)
        module.add_register("stale", 8, 0)
        report = lint_rtl_module(module)
        assert rule_ids(report) == {"IR003"}
        (diag,) = report.by_rule("IR003")
        assert diag.severity is Severity.WARNING
        assert diag.path == "m.stale"

    def test_fsm_state_register_not_flagged(self):
        module = RtlModule("m")
        fsm = Fsm("ctrl", ["IDLE"], "IDLE")
        fsm.add_transition("IDLE", None, "IDLE")
        module.add_fsm(fsm)
        assert lint_rtl_module(module).clean


class TestUndrivenNet:
    def test_fires_ir004(self):
        module = RtlModule("m")
        out = module.add_port("out", "out", 1)
        floating = module.add_net("floating", 1)
        module.add_assign(out, floating.ref())
        report = lint_rtl_module(module)
        assert rule_ids(report) == {"IR004"}
        (diag,) = report.by_rule("IR004")
        assert diag.severity is Severity.ERROR
        assert diag.path == "m.floating"

    def test_unreferenced_net_not_flagged(self):
        """A dangling but unread net is dead code, not an X source."""
        module = RtlModule("m")
        module.add_net("unused", 1)
        assert lint_rtl_module(module).clean


class TestMultiplyDrivenNet:
    def test_fires_ir005(self):
        module = RtlModule("m")
        wire = module.add_net("wire", 1)
        out = module.add_port("out", "out", 1)
        module.add_assign(wire, Const(0, 1))
        module.add_assign(wire, Const(1, 1))
        module.add_assign(out, wire.ref())
        report = lint_rtl_module(module)
        assert rule_ids(report) == {"IR005"}
        (diag,) = report.by_rule("IR005")
        assert diag.severity is Severity.ERROR
        assert "2 structural drivers" in diag.message

    def test_fires_on_driven_input_port(self):
        module = RtlModule("m")
        inp = module.add_port("inp", "in", 1)
        module.add_assign(inp, Const(0, 1))
        report = lint_rtl_module(module)
        assert "IR005" in rule_ids(report)
        assert "input port" in report.by_rule("IR005")[0].message

    def test_assign_plus_fsm_output_conflict(self):
        module = RtlModule("m")
        wire = module.add_net("wire", 1)
        out = module.add_port("out", "out", 1)
        module.add_assign(wire, Const(0, 1))
        module.add_assign(out, wire.ref())
        fsm = Fsm("ctrl", ["IDLE"], "IDLE")
        fsm.add_transition("IDLE", None, "IDLE")
        fsm.set_output("IDLE", wire, 1)
        module.add_fsm(fsm)
        report = lint_rtl_module(module)
        assert "IR005" in rule_ids(report)
