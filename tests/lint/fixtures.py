"""Deliberately-broken designs, one per lint rule.

Each ``make_*`` helper returns a built :class:`Simulator` whose only
defect is the one the named rule must catch — the tests assert both that
the rule fires and that *no other* unexpected rule does.
"""

from __future__ import annotations

from repro.hdl.module import Module
from repro.kernel.process import Timeout
from repro.kernel.simulator import Simulator
from repro.osss.global_object import GlobalObject
from repro.osss.guarded_method import guarded_method


def make_unbound_port() -> Simulator:
    """MOD001: a declared port that is never bound."""
    sim = Simulator()

    class Sink(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.din = self.in_port("din", width=8)

    Sink(sim, "top")
    return sim


def make_double_writer() -> Simulator:
    """MOD002: two threads write a single-writer signal."""
    sim = Simulator()

    class Conflict(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.strobe = self.signal("strobe", width=1, init=0,
                                      single_writer=True)
            self.thread(self._driver_a, "driver_a")
            self.thread(self._driver_b, "driver_b")

        def _driver_a(self):
            self.strobe.write(1)
            yield Timeout(10)

        def _driver_b(self):
            self.strobe.write(0)
            yield Timeout(10)

    Conflict(sim, "top")
    return sim


def make_dead_event_wait() -> Simulator:
    """MOD003: a process waits on an event nothing notifies."""
    sim = Simulator()

    class Waiter(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.go = self.event("go")
            self.thread(self._wait_forever, "wait_forever")

        def _wait_forever(self):
            yield self.go

    Waiter(sim, "top")
    return sim


def make_combinational_loop() -> Simulator:
    """MOD004: two zero-delay methods re-trigger each other."""
    sim = Simulator()

    class Loop(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.a = self.signal("a", width=1, init=0)
            self.b = self.signal("b", width=1, init=0)
            self.method(self._invert, sensitivity=[self.b], name="invert")
            self.method(self._follow, sensitivity=[self.a], name="follow")

        def _invert(self):
            self.a.write(1 - self.b.read())

        def _follow(self):
            self.b.write(self.a.read())

    Loop(sim, "top")
    return sim


class ImpureGuardCell:
    """Guard appends to the state — a side effect."""

    def __init__(self) -> None:
        self.items: list = []

    @guarded_method(lambda self: bool(self.items.append(0)) or True)
    def take(self):
        return self.items.pop()


def make_impure_guard() -> Simulator:
    """GRD001: guard mutates the shared state."""
    sim = Simulator()

    class Host(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.cell = GlobalObject(self, "cell", ImpureGuardCell)

    Host(sim, "top")
    return sim


class DeadGuardCell:
    """Guarded on an attribute no method ever writes."""

    def __init__(self) -> None:
        self.ready = False

    @guarded_method(lambda self: self.ready)
    def proceed(self):
        return 1


def make_dead_guard() -> Simulator:
    """GRD002: guard is false initially and can never become true."""
    sim = Simulator()

    class Host(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.cell = GlobalObject(self, "cell", DeadGuardCell)

    Host(sim, "top")
    return sim


class HandoffCell:
    """take() blocks until put() fills the cell."""

    def __init__(self) -> None:
        self.full = False

    @guarded_method(lambda self: self.full)
    def take(self):
        self.full = False

    @guarded_method()
    def put(self):
        self.full = True


def make_guard_wait_cycle() -> Simulator:
    """GRD003: two threads each take-before-put on crossed cells."""
    sim = Simulator()

    class Host(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.left = GlobalObject(self, "left", HandoffCell)
            self.right = GlobalObject(self, "right", HandoffCell)
            self.thread(self._worker_a, "worker_a")
            self.thread(self._worker_b, "worker_b")

        def _worker_a(self):
            yield from self.left.call("take")
            yield from self.right.call("put")

        def _worker_b(self):
            yield from self.right.call("take")
            yield from self.left.call("put")

    Host(sim, "top")
    return sim


class IntGuardCell:
    """Guard returns the counter itself, not a bool."""

    def __init__(self) -> None:
        self.count = 1

    @guarded_method(lambda self: self.count)
    def consume(self):
        self.count -= 1


def make_non_bool_guard() -> Simulator:
    """GRD004: guard returns an int (0/1-like, coerced at runtime)."""
    sim = Simulator()

    class Host(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.cell = GlobalObject(self, "cell", IntGuardCell)

    Host(sim, "top")
    return sim
