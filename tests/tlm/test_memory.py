"""Unit tests for functional memory models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.tlm import Memory, RomMemory, apply_byte_enables


class TestMemory:
    def test_read_after_write(self):
        mem = Memory(1024)
        mem.write_word(0x10, 0xDEADBEEF)
        assert mem.read_word(0x10) == 0xDEADBEEF

    def test_fill_value_for_unwritten(self):
        mem = Memory(1024, fill=0xCAFEBABE)
        assert mem.read_word(0x20) == 0xCAFEBABE

    def test_unaligned_rejected(self):
        mem = Memory(1024)
        with pytest.raises(ProtocolError):
            mem.read_word(2)
        with pytest.raises(ProtocolError):
            mem.write_word(5, 0)

    def test_out_of_range_rejected(self):
        mem = Memory(64)
        with pytest.raises(ProtocolError):
            mem.read_word(64)
        with pytest.raises(ProtocolError):
            mem.write_word(0x100, 0)

    def test_oversized_data_rejected(self):
        mem = Memory(64)
        with pytest.raises(ProtocolError):
            mem.write_word(0, 1 << 32)

    def test_bad_size_rejected(self):
        with pytest.raises(ProtocolError):
            Memory(0)
        with pytest.raises(ProtocolError):
            Memory(10)

    def test_byte_enables_merge(self):
        mem = Memory(64)
        mem.write_word(0, 0xAABBCCDD)
        mem.write_word(0, 0x11223344, byte_enables=0b0101)
        assert mem.read_word(0) == 0xAA22CC44

    def test_burst_helpers(self):
        mem = Memory(1024)
        mem.write_burst(0x40, [1, 2, 3])
        assert mem.read_burst(0x40, 3) == [1, 2, 3]

    def test_access_counters(self):
        mem = Memory(64)
        mem.write_word(0, 1)
        mem.read_word(0)
        mem.read_word(0)
        assert mem.write_count == 1
        assert mem.read_count == 2

    def test_load_dump_skip_counters(self):
        mem = Memory(64)
        mem.load(0, [9, 8])
        assert mem.dump(0, 2) == [9, 8]
        assert mem.read_count == 0 and mem.write_count == 0
        assert mem.words_written == 2


class TestRom:
    def test_contents_readable(self):
        rom = RomMemory([0x11, 0x22])
        assert rom.read_word(0) == 0x11
        assert rom.read_word(4) == 0x22

    def test_writes_rejected(self):
        rom = RomMemory([1])
        with pytest.raises(ProtocolError):
            rom.write_word(0, 2)


class TestByteEnables:
    def test_all_lanes(self):
        assert apply_byte_enables(0, 0xFFFFFFFF, 0xF) == 0xFFFFFFFF

    def test_no_lanes(self):
        assert apply_byte_enables(0x12345678, 0, 0x0) == 0x12345678

    def test_invalid_mask(self):
        with pytest.raises(ProtocolError):
            apply_byte_enables(0, 0, 0x10)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=0xF),
    )
    def test_merge_lane_by_lane(self, old, new, mask):
        merged = apply_byte_enables(old, new, mask)
        for lane in range(4):
            shift = 8 * lane
            expected = (new if mask & (1 << lane) else old) >> shift & 0xFF
            assert (merged >> shift) & 0xFF == expected


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=2**32 - 1),
), min_size=1, max_size=40))
def test_memory_behaves_like_dict(ops):
    """Property: memory matches a reference dict under random writes."""
    mem = Memory(1024)
    reference = {}
    for word_index, value in ops:
        address = (word_index % 256) * 4
        mem.write_word(address, value)
        reference[address] = value
    for address, value in reference.items():
        assert mem.read_word(address) == value
