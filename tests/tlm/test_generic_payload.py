"""Tests for the TLM-2.0 generic payload, socket and library element."""

import pytest

from repro.core import (
    CommandType,
    default_library,
    expected_memory_image,
    generate_workload,
)
from repro.errors import ProtocolError
from repro.flow import build_functional_platform, build_tlmgp_platform
from repro.kernel import MS
from repro.tlm import (
    GP_ADDRESS_ERROR,
    GP_GENERIC_ERROR,
    GP_INCOMPLETE,
    GP_OK,
    GenericPayload,
    GpTargetSocket,
    Memory,
    TlmGpBusInterface,
    TlmGpFunctionalInterface,
)
from repro.verify import check_memory_image


class TestPayload:
    def test_factories(self):
        read = GenericPayload.read(0x10, count=3)
        assert not read.is_write and read.count == 3
        assert read.response_status == GP_INCOMPLETE
        write = GenericPayload.write(0x10, 7)
        assert write.is_write and write.data == [7]

    def test_validation(self):
        with pytest.raises(ProtocolError):
            GenericPayload("erase", 0x0)
        with pytest.raises(ProtocolError):
            GenericPayload.write(0x0, [])
        with pytest.raises(ProtocolError):
            GenericPayload("read", 0x0, data=[1])
        with pytest.raises(ProtocolError):
            GenericPayload.read(0x0, count=0)

    def test_extensions_are_ignorable(self):
        payload = GenericPayload.read(0x0)
        payload.extensions["priority"] = 3
        socket = GpTargetSocket(Memory(0x100))
        socket.b_transport(payload)
        assert payload.is_response_ok


class TestSocket:
    def test_write_then_read(self):
        memory = Memory(0x100)
        socket = GpTargetSocket(memory)
        write = GenericPayload.write(0x10, [0xAA, 0xBB])
        assert socket.b_transport(write) == 0
        assert write.response_status == GP_OK
        read = GenericPayload.read(0x10, count=2)
        socket.b_transport(read)
        assert read.data == [0xAA, 0xBB]
        assert socket.transports == 2
        assert socket.words_transferred == 4

    def test_byte_enable_merges_lanes(self):
        memory = Memory(0x100)
        socket = GpTargetSocket(memory)
        socket.b_transport(GenericPayload.write(0x0, [0xFFFFFFFF]))
        socket.b_transport(
            GenericPayload.write(0x0, [0x0], byte_enable=0x3)
        )
        read = GenericPayload.read(0x0)
        socket.b_transport(read)
        assert read.data == [0xFFFF0000]

    def test_annotated_delay(self):
        socket = GpTargetSocket(Memory(0x100), accept_latency=100,
                                word_latency=10)
        delay = socket.b_transport(GenericPayload.write(0x0, [1, 2, 3]))
        assert delay == 100 + 3 * 10

    def test_unmapped_address_error(self):
        payload = GenericPayload.read(0x8000)
        GpTargetSocket(Memory(0x100)).b_transport(payload)
        assert payload.response_status == GP_ADDRESS_ERROR
        assert not payload.is_response_ok

    def test_generic_error(self):
        class Broken:
            def read_word(self, address):
                raise RuntimeError("hardware on fire")

        payload = GenericPayload.read(0x0)
        GpTargetSocket(Broken()).b_transport(payload)
        assert payload.response_status == GP_GENERIC_ERROR

    def test_negative_latency_rejected(self):
        with pytest.raises(ProtocolError):
            GpTargetSocket(Memory(0x100), accept_latency=-1)


class TestLibraryElement:
    def test_in_default_library(self):
        library = default_library()
        assert library.lookup("tlmgp", "transaction") is TlmGpBusInterface
        assert library.lookup("tlmgp", "functional") \
            is TlmGpFunctionalInterface

    def test_golden_memory_image(self):
        workload = generate_workload(seed=44, n_commands=25,
                                     address_span=0x200, max_burst=4,
                                     partial_byte_enable_fraction=0.3)
        bundle = build_tlmgp_platform([workload])
        bundle.run(100 * MS)
        golden = expected_memory_image(workload, 0x200 // 4)
        check_memory_image(bundle.memory, golden)
        assert bundle.interface.payloads_failed == 0

    def test_peripheral_reachable(self):
        commands = [
            CommandType.write(0x0001_0008, 0x42),
            CommandType.read(0x0001_0008, count=1),
        ]
        bundle = build_tlmgp_platform([commands])
        bundle.run(10 * MS)
        app = bundle.handle.applications[0]
        assert app.records[1].response.data == [0x42 ^ 0xFFFFFFFF]

    def test_matches_functional_traces(self):
        workload = generate_workload(seed=4, n_commands=15,
                                     address_span=0x200, max_burst=3)
        functional = build_functional_platform([workload]).run(100 * MS)
        tlm = build_tlmgp_platform([workload]).run(100 * MS)
        assert functional.traces == tlm.traces

    def test_annotated_delay_advances_time(self):
        workload = generate_workload(seed=6, n_commands=10,
                                     address_span=0x100)
        from repro.flow import PciPlatformConfig

        fast = build_tlmgp_platform([workload]).run(100 * MS)
        slow = build_tlmgp_platform(
            [workload], PciPlatformConfig(word_latency=50_000)
        ).run(100 * MS)
        assert fast.traces == slow.traces
        assert slow.sim_time > fast.sim_time

    def test_synthesis_consistency(self):
        workload = generate_workload(seed=5, n_commands=10,
                                     address_span=0x100, max_burst=2)
        pre = build_tlmgp_platform([workload]).run(100 * MS)
        post = build_tlmgp_platform([workload], synthesize=True).run(
            200 * MS
        )
        assert pre.traces == post.traces
