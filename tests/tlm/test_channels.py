"""Unit tests for transaction-level channels."""

import pytest

from repro.errors import SimulationError
from repro.kernel import NS, Simulator, Timeout
from repro.tlm import ReqRspChannel, TlmFifo


@pytest.fixture
def sim():
    return Simulator()


class TestNonBlocking:
    def test_try_put_get(self, sim):
        fifo = TlmFifo(sim, "f", capacity=2)
        assert fifo.try_put(1)
        assert fifo.try_put(2)
        assert not fifo.try_put(3)  # full
        assert fifo.is_full
        ok, item = fifo.try_get()
        assert ok and item == 1
        ok, item = fifo.try_get()
        assert ok and item == 2
        ok, __ = fifo.try_get()
        assert not ok
        assert fifo.is_empty

    def test_peek(self, sim):
        fifo = TlmFifo(sim, "f")
        fifo.try_put("x")
        assert fifo.peek() == "x"
        assert len(fifo) == 1

    def test_peek_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            TlmFifo(sim, "f").peek()

    def test_bad_capacity(self, sim):
        with pytest.raises(SimulationError):
            TlmFifo(sim, "f", capacity=0)


class TestBlocking:
    def test_get_blocks_until_put(self, sim):
        fifo = TlmFifo(sim, "f")
        log = []

        def consumer():
            item = yield from fifo.get()
            log.append((item, sim.time))

        def producer():
            yield Timeout(30 * NS)
            yield from fifo.put("data")

        sim.spawn(consumer, "c")
        sim.spawn(producer, "p")
        sim.run(100 * NS)
        assert log == [("data", 30 * NS)]

    def test_put_blocks_when_full(self, sim):
        fifo = TlmFifo(sim, "f", capacity=1)
        log = []

        def producer():
            yield from fifo.put(1)
            yield from fifo.put(2)
            log.append(("put2", sim.time))

        def consumer():
            yield Timeout(40 * NS)
            item = yield from fifo.get()
            log.append(("got", item))

        sim.spawn(producer, "p")
        sim.spawn(consumer, "c")
        sim.run(100 * NS)
        assert ("got", 1) in log
        assert ("put2", 40 * NS) in log
        assert fifo.total_put == 2

    def test_fifo_ordering_under_concurrency(self, sim):
        fifo = TlmFifo(sim, "f")
        received = []

        def producer():
            for i in range(5):
                yield from fifo.put(i)
                yield Timeout(1 * NS)

        def consumer():
            for __ in range(5):
                item = yield from fifo.get()
                received.append(item)

        sim.spawn(producer, "p")
        sim.spawn(consumer, "c")
        sim.run(100 * NS)
        assert received == [0, 1, 2, 3, 4]


class TestReqRsp:
    def test_transport_roundtrip(self, sim):
        channel = ReqRspChannel(sim, "ch")
        results = []

        def master():
            response = yield from channel.transport({"op": "double", "value": 21})
            results.append(response)

        def slave():
            yield from channel.serve(lambda req: req["value"] * 2)

        sim.spawn(master, "m")
        sim.spawn(slave, "s")
        sim.run(100 * NS)
        assert results == [42]

    def test_multiple_transactions_in_order(self, sim):
        channel = ReqRspChannel(sim, "ch")
        results = []

        def master():
            for i in range(4):
                response = yield from channel.transport(i)
                results.append(response)

        def slave():
            yield from channel.serve(lambda request: request + 100)

        sim.spawn(master, "m")
        sim.spawn(slave, "s")
        sim.run(100 * NS)
        assert results == [100, 101, 102, 103]
