"""Unit tests for the address-map router."""

import pytest

from repro.errors import ProtocolError
from repro.tlm import AddressRouter, Memory, StatusRegisterBlock


@pytest.fixture
def router():
    router = AddressRouter()
    router.add_target(0x0000, 0x1000, Memory(0x1000), "ram")
    router.add_target(0x2000, 0x10, StatusRegisterBlock(), "regs")
    return router


class TestDecode:
    def test_routes_by_window(self, router):
        router.write_word(0x0100, 0xAA)
        assert router.read_word(0x0100) == 0xAA

    def test_local_addressing(self, router):
        """Targets see window-relative addresses."""
        ram = router.decode(0x0).target
        router.write_word(0x0FFC, 0x55)
        assert ram.read_word(0x0FFC) == 0x55

    def test_second_window(self, router):
        router.write_word(0x2008, 0x1234)  # DATA register
        assert router.read_word(0x2008) == 0x1234 ^ 0xFFFFFFFF

    def test_unmapped_address_rejected(self, router):
        with pytest.raises(ProtocolError):
            router.read_word(0x9000)

    def test_overlap_rejected(self):
        router = AddressRouter()
        router.add_target(0x0, 0x100, Memory(0x100))
        with pytest.raises(ProtocolError):
            router.add_target(0x80, 0x100, Memory(0x100))

    def test_adjacent_windows_allowed(self):
        router = AddressRouter()
        router.add_target(0x0, 0x100, Memory(0x100))
        router.add_target(0x100, 0x100, Memory(0x100))
        assert len(router.ranges) == 2

    def test_bad_range_rejected(self):
        router = AddressRouter()
        with pytest.raises(ProtocolError):
            router.add_target(0x2, 0x100, Memory(0x100))
        with pytest.raises(ProtocolError):
            router.add_target(0x0, 0, Memory(0x100))


class TestBursts:
    def test_burst_within_window(self, router):
        router.write_burst(0x10, [1, 2, 3])
        assert router.read_burst(0x10, 3) == [1, 2, 3]

    def test_burst_crossing_window_rejected(self, router):
        with pytest.raises(ProtocolError):
            router.read_burst(0x0FF8, 4)
        with pytest.raises(ProtocolError):
            router.write_burst(0x0FF8, [0, 0, 0, 0])
