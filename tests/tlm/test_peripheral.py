"""Unit tests for the functional peripheral models."""

import pytest

from repro.errors import ProtocolError
from repro.tlm import DmaPeripheral, Memory, StatusRegisterBlock


class TestStatusRegisterBlock:
    def test_control_enable(self):
        block = StatusRegisterBlock()
        block.write_word(block.CONTROL, 1)
        assert block.enabled
        assert block.read_word(block.CONTROL) == 1
        assert block.read_word(block.STATUS) & 1

    def test_data_register_inverted_readback(self):
        block = StatusRegisterBlock()
        block.write_word(block.DATA, 0x0000FFFF)
        assert block.read_word(block.DATA) == 0xFFFF0000

    def test_write_counter_in_status(self):
        block = StatusRegisterBlock()
        for __ in range(3):
            block.write_word(block.DATA, 0)
        assert (block.read_word(block.STATUS) >> 4) & 0xF == 3

    def test_clear_status(self):
        block = StatusRegisterBlock()
        block.write_word(block.DATA, 0)
        block.write_word(block.CONTROL, 2)
        assert (block.read_word(block.STATUS) >> 4) & 0xF == 0

    def test_scratch_roundtrip(self):
        block = StatusRegisterBlock()
        block.write_word(block.SCRATCH, 0x12345678)
        assert block.read_word(block.SCRATCH) == 0x12345678

    def test_status_read_only(self):
        block = StatusRegisterBlock()
        with pytest.raises(ProtocolError):
            block.write_word(block.STATUS, 0)

    def test_offsets_wrap_mod_16(self):
        block = StatusRegisterBlock()
        block.write_word(0x100C, 0x77)  # high bits ignored -> SCRATCH
        assert block.read_word(block.SCRATCH) == 0x77


class TestDmaPeripheral:
    def test_programmed_copy(self):
        mem = Memory(1024)
        mem.load(0x100, [1, 2, 3, 4])
        dma = DmaPeripheral(mem)
        dma.write_word(dma.SRC, 0x100)
        dma.write_word(dma.DST, 0x200)
        dma.write_word(dma.LEN, 4)
        dma.write_word(dma.START, 1)
        assert mem.dump(0x200, 4) == [1, 2, 3, 4]
        assert dma.read_word(dma.START) == 1  # done bit
        assert dma.copies_performed == 1

    def test_register_readback(self):
        dma = DmaPeripheral(Memory(64))
        dma.write_word(dma.SRC, 0x10)
        dma.write_word(dma.DST, 0x20)
        dma.write_word(dma.LEN, 2)
        assert dma.read_word(dma.SRC) == 0x10
        assert dma.read_word(dma.DST) == 0x20
        assert dma.read_word(dma.LEN) == 2

    def test_start_zero_does_nothing(self):
        dma = DmaPeripheral(Memory(64))
        dma.write_word(dma.START, 0)
        assert not dma.done
        assert dma.copies_performed == 0
