"""Notify→wake causal edges surfaced through the probe bus.

When a probe bus is attached, every event notification records the
notifying process and every process activation records the waking
event — the raw edges span tracing turns into critical paths. Without
a bus neither attribute is ever written (the zero-cost off path).
"""

from repro.instrument import EVENT_NOTIFY, PROCESS_ACTIVATE, ProbeBus
from repro.kernel import NS, Simulator, Timeout


def _ping_pong(sim):
    event = sim.event("ping")
    woken = []

    def waiter():
        yield event
        woken.append(sim.time)

    def notifier():
        yield Timeout(10 * NS)
        event.notify()

    sim.spawn(waiter, "waiter")
    sim.spawn(notifier, "notifier")
    return event, woken


class TestCausalEdges:
    def test_event_notify_carries_notifying_process(self):
        sim = Simulator()
        notifies = []
        sim.probes.subscribe(
            EVENT_NOTIFY,
            lambda t, e, cause: notifies.append(
                (e.name, cause.name if cause is not None else None)
            ),
        )
        _ping_pong(sim)
        sim.run(100 * NS)
        assert ("ping", "notifier") in notifies

    def test_process_activate_carries_waking_event(self):
        sim = Simulator()
        activations = []
        sim.probes.subscribe(
            PROCESS_ACTIVATE,
            lambda t, p, cause: activations.append(
                (p.name, cause.name if cause is not None else None)
            ),
        )
        _ping_pong(sim)
        sim.run(100 * NS)
        # Spawn-time activations have no cause; the wake by the event does.
        assert ("waiter", None) in activations
        assert ("waiter", "ping") in activations

    def test_timed_notification_records_cause(self):
        sim = Simulator()
        notifies = []
        sim.probes.subscribe(
            EVENT_NOTIFY,
            lambda t, e, cause: notifies.append(
                (t, cause.name if cause is not None else None)
            ),
        )
        event = sim.event("later")

        def waiter():
            yield event

        def notifier():
            event.notify_after(20 * NS)
            yield Timeout(1 * NS)

        sim.spawn(waiter, "waiter")
        sim.spawn(notifier, "notifier")
        sim.run(100 * NS)
        assert (20 * NS, "notifier") in notifies

    def test_cause_resets_between_notifications(self):
        sim = Simulator()
        causes = []
        sim.probes.subscribe(
            EVENT_NOTIFY,
            lambda t, e, cause: causes.append(
                cause.name if cause is not None else None
            ),
        )
        event = sim.event("e")

        def waiter():
            while True:
                yield event

        def named_notifier():
            yield Timeout(10 * NS)
            event.notify()

        sim.spawn(waiter, "waiter")
        sim.spawn(named_notifier, "named")
        sim.run(5 * NS)
        # Notify from outside any process: no stale cause may leak into
        # this notification (it fires first, in the next delta).
        event.notify_delta()
        sim.run(100 * NS)
        assert causes[0] is None
        assert "named" in causes

    def test_uninstrumented_run_never_writes_causes(self):
        sim = Simulator()
        event, woken = _ping_pong(sim)
        sim.run(100 * NS)
        assert woken
        assert event._notify_cause is None
        for process in sim.scheduler.processes:
            assert process._wake_trigger is None

    def test_two_arg_subscribers_still_work(self):
        # Pre-cause subscribers that default the third argument continue
        # to receive callbacks (the bus passes cause positionally).
        bus = ProbeBus()
        seen = []
        bus.subscribe(EVENT_NOTIFY, lambda t, e, cause=None: seen.append(t))
        bus.event_notify(5, object())
        bus.event_notify(7, object(), None)
        assert seen == [5, 7]
