"""Unit tests for the Simulator facade: registry, elaboration, tracing."""

import pytest

from repro.errors import ElaborationError
from repro.hdl import Module
from repro.kernel import NS, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestRegistry:
    def test_lookup_by_path(self, sim):
        module = Module(sim, "top")
        child = Module(module, "child")
        assert sim.lookup("top") is module
        assert sim.lookup("top.child") is child

    def test_duplicate_names_rejected(self, sim):
        Module(sim, "top")
        with pytest.raises(ElaborationError):
            Module(sim, "top")

    def test_unknown_lookup_raises(self, sim):
        with pytest.raises(ElaborationError):
            sim.lookup("nope")

    def test_iter_named_sorted(self, sim):
        Module(sim, "beta")
        Module(sim, "alpha")
        names = [name for name, __ in sim.iter_named()]
        assert names == sorted(names)


class TestElaboration:
    def test_unbound_port_fails_elaboration(self, sim):
        module = Module(sim, "top")
        module.in_port("data", width=8)
        with pytest.raises(ElaborationError, match="never bound"):
            sim.run(1)

    def test_elaboration_is_idempotent(self, sim):
        Module(sim, "top")
        sim.elaborate()
        sim.elaborate()
        assert sim.elaborated

    def test_no_modules_after_elaboration(self, sim):
        sim.elaborate()
        with pytest.raises(ElaborationError):
            Module(sim, "late")

    def test_end_of_elaboration_hook_runs(self, sim):
        calls = []

        class Hooked(Module):
            def end_of_elaboration(self):
                calls.append(self.path)

        Hooked(sim, "a")
        parent = Hooked(sim, "b")
        Hooked(parent, "c")
        sim.elaborate()
        assert sorted(calls) == ["a", "b", "b.c"]


class TestTracing:
    def test_tracer_sees_signal_commits(self, sim):
        module = Module(sim, "top")
        signal = module.signal("s", width=8, init=0)
        seen = []

        class Recorder:
            def record_change(self, time, sig, value):
                seen.append((time, sig.name, value.to_int()))

        sim.add_tracer(Recorder())

        def writer():
            from repro.kernel import Timeout
            signal.write(5)
            yield Timeout(10 * NS)
            signal.write(9)
            yield Timeout(1)

        sim.spawn(writer, "w")
        sim.run(20 * NS)
        assert (0, "top.s", 5) in seen
        assert (10 * NS, "top.s", 9) in seen

    def test_remove_tracer(self, sim):
        recorder = type("R", (), {"record_change": lambda *a: None})()
        sim.add_tracer(recorder)
        sim.remove_tracer(recorder)
        assert recorder not in sim._tracers
