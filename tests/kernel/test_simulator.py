"""Unit tests for the Simulator facade: registry, elaboration, tracing."""

import pytest

from repro.errors import ElaborationError
from repro.hdl import Module
from repro.kernel import NS, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestRegistry:
    def test_lookup_by_path(self, sim):
        module = Module(sim, "top")
        child = Module(module, "child")
        assert sim.lookup("top") is module
        assert sim.lookup("top.child") is child

    def test_duplicate_names_rejected(self, sim):
        Module(sim, "top")
        with pytest.raises(ElaborationError):
            Module(sim, "top")

    def test_unknown_lookup_raises(self, sim):
        with pytest.raises(ElaborationError):
            sim.lookup("nope")

    def test_iter_named_sorted(self, sim):
        Module(sim, "beta")
        Module(sim, "alpha")
        names = [name for name, __ in sim.iter_named()]
        assert names == sorted(names)


class TestElaboration:
    def test_unbound_port_fails_elaboration(self, sim):
        module = Module(sim, "top")
        module.in_port("data", width=8)
        with pytest.raises(ElaborationError, match="never bound"):
            sim.run(1)

    def test_elaboration_is_idempotent(self, sim):
        Module(sim, "top")
        sim.elaborate()
        sim.elaborate()
        assert sim.elaborated

    def test_no_modules_after_elaboration(self, sim):
        sim.elaborate()
        with pytest.raises(ElaborationError):
            Module(sim, "late")

    def test_end_of_elaboration_hook_runs(self, sim):
        calls = []

        class Hooked(Module):
            def end_of_elaboration(self):
                calls.append(self.path)

        Hooked(sim, "a")
        parent = Hooked(sim, "b")
        Hooked(parent, "c")
        sim.elaborate()
        assert sorted(calls) == ["a", "b", "b.c"]


class TestTracing:
    def test_tracer_sees_signal_commits(self, sim):
        module = Module(sim, "top")
        signal = module.signal("s", width=8, init=0)
        seen = []

        class Recorder:
            def record_change(self, time, sig, value):
                seen.append((time, sig.name, value.to_int()))

        sim.add_tracer(Recorder())

        def writer():
            from repro.kernel import Timeout
            signal.write(5)
            yield Timeout(10 * NS)
            signal.write(9)
            yield Timeout(1)

        sim.spawn(writer, "w")
        sim.run(20 * NS)
        assert (0, "top.s", 5) in seen
        assert (10 * NS, "top.s", 9) in seen

    def test_remove_tracer(self, sim):
        recorder = type("R", (), {"record_change": lambda *a: None})()
        sim.add_tracer(recorder)
        sim.remove_tracer(recorder)
        assert recorder not in sim._tracers


class TestIdleRun:
    def test_result_is_the_end_time_integer(self, sim):
        Module(sim, "top")
        result = sim.run_until_idle(100 * NS)
        assert isinstance(result, int)
        assert result == sim.time
        assert result.quiescent
        assert list(result.blocked_processes) == []

    def test_blocked_guarded_call_is_reported(self, sim):
        from repro.osss import GlobalObject, guarded_method

        class Latch:
            def __init__(self):
                self.ready = False

            @guarded_method(lambda self: self.ready)
            def take(self):
                return True

        top = Module(sim, "top")
        latch = GlobalObject(top, "latch", Latch)

        def starved():
            yield from latch.take()

        sim.spawn(starved, "starved")
        result = sim.run_until_idle(100 * NS)
        assert not result.quiescent
        blocked = result.blocked_processes
        assert len(blocked) == 1
        assert blocked[0].method == "take"
        assert blocked[0].object_path == "top.latch"
        # The live query agrees with the snapshot on the result.
        assert [b.method for b in sim.blocked_processes()] == ["take"]


class TestDetections:
    def test_report_detection_records(self, sim):
        sim.report_detection("top.monitor", "TRDY# without DEVSEL#")
        assert len(sim.detections) == 1
        record = sim.detections[0]
        assert record.source == "top.monitor"
        assert "TRDY#" in record.message
        assert record.time == sim.time

    def test_nonstrict_monitor_violation_is_still_a_detection(self, sim):
        """The verify checkers feed detections even when not raising."""
        from repro.verify import InvariantChecker

        top = Module(sim, "top")
        flag = top.signal("flag", width=1, init=0)
        InvariantChecker(
            top, "inv", flag, lambda v: v.to_int() == 0, strict=False
        )

        def writer():
            from repro.kernel import Timeout
            yield Timeout(10 * NS)
            flag.write(1)
            yield Timeout(10 * NS)

        sim.spawn(writer, "w")
        sim.run(50 * NS)
        assert sim.detections
        assert "inv" in sim.detections[0].source
