"""Unit tests for the scheduler's delta-cycle and time-advance machinery."""

import pytest

from repro.errors import SimulationError
from repro.kernel import NS, Simulator, Timeout


def _noop():
    """A generator thread that terminates immediately."""
    return
    yield


@pytest.fixture
def sim():
    return Simulator()


class TestTimeAdvance:
    def test_run_to_duration(self, sim):
        sim.spawn(_noop, "noop")
        end = sim.run(100 * NS)
        assert end == 100 * NS
        assert sim.time == 100 * NS

    def test_run_until_starvation(self, sim):
        def thread():
            yield Timeout(30 * NS)

        sim.spawn(thread, "t")
        end = sim.run()  # unbounded: ends when no events remain
        assert end == 30 * NS

    def test_resume_continues_from_current_time(self, sim):
        stamps = []

        def thread():
            while True:
                yield Timeout(10 * NS)
                stamps.append(sim.time)

        sim.spawn(thread, "t")
        sim.run(25 * NS)
        assert stamps == [10 * NS, 20 * NS]
        sim.run(20 * NS)
        assert stamps == [10 * NS, 20 * NS, 30 * NS, 40 * NS]

    def test_simultaneous_timeouts_all_fire(self, sim):
        log = []

        def make(tag):
            def thread():
                yield Timeout(10 * NS)
                log.append(tag)
            return thread

        for i in range(4):
            sim.spawn(make(i), f"t{i}")
        sim.run(20 * NS)
        assert sorted(log) == [0, 1, 2, 3]


class TestStop:
    def test_stop_ends_run_early(self, sim):
        def stopper():
            yield Timeout(10 * NS)
            sim.stop()

        def late():
            yield Timeout(50 * NS)
            raise AssertionError("should not run")

        sim.spawn(stopper, "s")
        sim.spawn(late, "l")
        end = sim.run(100 * NS)
        assert end == 10 * NS


class TestDeltaCycles:
    def test_delta_count_increases(self, sim):
        def thread():
            for __ in range(5):
                yield Timeout(0)

        sim.spawn(thread, "t")
        sim.run(1)
        assert sim.delta_count >= 5

    def test_zero_delay_feedback_loop_detected(self):
        sim = Simulator(max_deltas_per_timestep=50)
        event = sim.event("ping")

        def looper():
            while True:
                event.notify_delta()
                yield event

        sim.spawn(looper, "loop")
        with pytest.raises(SimulationError, match="delta cycles"):
            sim.run(10)

    def test_current_process_tracked(self, sim):
        seen = []

        def thread():
            seen.append(sim.scheduler.current_process)
            yield Timeout(1)

        process = sim.spawn(thread, "t")
        sim.run(10)
        assert seen == [process]
        assert sim.scheduler.current_process is None


class TestSpawnHelpers:
    def test_spawn_returns_process(self, sim):
        process = sim.spawn(_noop, "x")
        assert process.name == "x"
        assert process in sim.scheduler.processes

    def test_run_until_idle_rejects_past_deadline(self, sim):
        sim.spawn(_noop, "x")
        sim.run(100 * NS)
        with pytest.raises(SimulationError):
            sim.run_until_idle(50 * NS)
