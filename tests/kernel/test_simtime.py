"""Unit tests for simulation-time helpers."""

import pytest

from repro.errors import SimulationError
from repro.kernel import FS, MS, NS, PS, SEC, US, format_time
from repro.kernel.simtime import check_delay


class TestUnits:
    def test_unit_ladder(self):
        assert PS == 1000 * FS
        assert NS == 1000 * PS
        assert US == 1000 * NS
        assert MS == 1000 * US
        assert SEC == 1000 * MS

    def test_literals_compose(self):
        assert 10 * NS == 10_000_000


class TestCheckDelay:
    def test_accepts_zero(self):
        assert check_delay(0) == 0

    def test_accepts_positive(self):
        assert check_delay(5 * NS) == 5 * NS

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            check_delay(-1)

    def test_rejects_float(self):
        with pytest.raises(SimulationError):
            check_delay(1.5)

    def test_rejects_bool(self):
        with pytest.raises(SimulationError):
            check_delay(True)


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "0 fs"

    def test_picks_largest_exact_unit(self):
        assert format_time(25 * NS) == "25 ns"
        assert format_time(3 * US) == "3 us"
        assert format_time(1 * SEC) == "1 s"

    def test_inexact_falls_to_smaller_unit(self):
        assert format_time(1500 * PS) == "1500 ps"

    def test_femtoseconds(self):
        assert format_time(7) == "7 fs"
