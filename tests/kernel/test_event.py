"""Unit tests for events and notification flavours."""

import pytest

from repro.errors import SimulationError
from repro.kernel import AllOf, AnyOf, NS, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestImmediateNotify:
    def test_wakes_waiter_same_evaluation(self, sim):
        event = sim.event("e")
        log = []

        def waiter():
            yield event
            log.append(sim.time)

        def notifier():
            yield Timeout(10 * NS)
            event.notify()

        sim.spawn(waiter, "waiter")
        sim.spawn(notifier, "notifier")
        sim.run(100 * NS)
        assert log == [10 * NS]

    def test_notify_with_no_waiters_is_lost(self, sim):
        event = sim.event("e")
        log = []

        def notifier():
            event.notify()
            yield Timeout(1 * NS)

        def late_waiter():
            yield Timeout(5 * NS)
            yield event  # notification already happened: waits forever
            log.append("woken")

        sim.spawn(notifier, "n")
        sim.spawn(late_waiter, "w")
        sim.run(100 * NS)
        assert log == []


class TestDeltaNotify:
    def test_wakes_in_next_delta_same_time(self, sim):
        event = sim.event("e")
        times = []

        def waiter():
            yield event
            times.append((sim.time, sim.delta_count))

        def notifier():
            yield Timeout(10 * NS)
            event.notify_delta()

        sim.spawn(waiter, "w")
        sim.spawn(notifier, "n")
        sim.run(100 * NS)
        assert len(times) == 1
        assert times[0][0] == 10 * NS


class TestTimedNotify:
    def test_notify_after_delay(self, sim):
        event = sim.event("e")
        log = []

        def waiter():
            yield event
            log.append(sim.time)

        def notifier():
            event.notify_after(25 * NS)
            yield Timeout(1)

        sim.spawn(waiter, "w")
        sim.spawn(notifier, "n")
        sim.run(100 * NS)
        assert log == [25 * NS]

    def test_notify_after_zero_is_delta(self, sim):
        event = sim.event("e")
        log = []

        def waiter():
            yield event
            log.append(sim.time)

        def notifier():
            event.notify_after(0)
            yield Timeout(1)

        sim.spawn(waiter, "w")
        sim.spawn(notifier, "n")
        sim.run(10 * NS)
        assert log == [0]

    def test_negative_delay_rejected(self, sim):
        event = sim.event("e")
        with pytest.raises(SimulationError):
            event.notify_after(-5)


class TestCompositeWaits:
    def test_any_of_first_wins(self, sim):
        fast, slow = sim.event("fast"), sim.event("slow")
        log = []

        def waiter():
            yield AnyOf(fast, slow)
            log.append(sim.time)

        def driver():
            fast.notify_after(10 * NS)
            slow.notify_after(50 * NS)
            yield Timeout(1)

        sim.spawn(waiter, "w")
        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert log == [10 * NS]

    def test_all_of_waits_for_every_event(self, sim):
        a, b = sim.event("a"), sim.event("b")
        log = []

        def waiter():
            yield AllOf(a, b)
            log.append(sim.time)

        def driver():
            a.notify_after(10 * NS)
            b.notify_after(40 * NS)
            yield Timeout(1)

        sim.spawn(waiter, "w")
        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert log == [40 * NS]

    def test_empty_composite_rejected(self, sim):
        with pytest.raises(SimulationError):
            AnyOf()
        with pytest.raises(SimulationError):
            AllOf()

    def test_composite_rejects_non_events(self, sim):
        with pytest.raises(SimulationError):
            AnyOf("not an event")


class TestMultipleWaiters:
    def test_all_waiters_wake(self, sim):
        event = sim.event("e")
        log = []

        def make_waiter(tag):
            def waiter():
                yield event
                log.append(tag)
            return waiter

        for i in range(5):
            sim.spawn(make_waiter(i), f"w{i}")

        def notifier():
            yield Timeout(5 * NS)
            event.notify()

        sim.spawn(notifier, "n")
        sim.run(10 * NS)
        assert sorted(log) == [0, 1, 2, 3, 4]
