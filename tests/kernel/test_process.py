"""Unit tests for thread and method processes."""

import pytest

from repro.errors import SimulationError
from repro.kernel import NS, Process, Simulator, Timeout


def _noop():
    """A generator thread that terminates immediately."""
    return
    yield


@pytest.fixture
def sim():
    return Simulator()


class TestThreads:
    def test_thread_runs_at_time_zero(self, sim):
        log = []

        def thread():
            log.append(sim.time)
            yield Timeout(1)

        sim.spawn(thread, "t")
        sim.run(10)
        assert log == [0]

    def test_dont_initialize_defers_start(self, sim):
        log = []

        def thread():
            log.append("ran")
            yield Timeout(1)

        sim.spawn(thread, "t", initialize=False)
        sim.run(10 * NS)
        assert log == []

    def test_sequential_timeouts_accumulate(self, sim):
        stamps = []

        def thread():
            for __ in range(3):
                yield Timeout(10 * NS)
                stamps.append(sim.time)

        sim.spawn(thread, "t")
        sim.run(100 * NS)
        assert stamps == [10 * NS, 20 * NS, 30 * NS]

    def test_generator_return_value_terminates(self, sim):
        process = sim.spawn(_noop, "empty")
        sim.run(1)
        assert process.done

    def test_plain_function_thread_finishes_immediately(self, sim):
        log = []

        def not_a_generator():
            log.append("ran")

        process = sim.spawn(not_a_generator, "plain")
        sim.run(1)
        assert log == ["ran"]
        assert process.done

    def test_yielding_garbage_raises(self, sim):
        def bad():
            yield "not a wait spec"

        sim.spawn(bad, "bad")
        with pytest.raises(SimulationError):
            sim.run(10)

    def test_terminated_event_fires(self, sim):
        log = []

        def short():
            yield Timeout(5 * NS)

        process = sim.spawn(short, "short")

        def watcher():
            yield process.terminated_event
            log.append(sim.time)

        sim.spawn(watcher, "watcher")
        sim.run(100 * NS)
        assert log == [5 * NS]

    def test_kill_stops_process(self, sim):
        log = []

        def forever():
            while True:
                yield Timeout(10 * NS)
                log.append(sim.time)

        process = sim.spawn(forever, "forever")

        def killer():
            yield Timeout(25 * NS)
            process.kill()

        sim.spawn(killer, "killer")
        sim.run(100 * NS)
        assert log == [10 * NS, 20 * NS]
        assert process.done

    def test_yield_from_composition(self, sim):
        log = []

        def helper(n):
            yield Timeout(n * NS)
            return n * 2

        def thread():
            result = yield from helper(5)
            log.append((sim.time, result))

        sim.spawn(thread, "t")
        sim.run(100 * NS)
        assert log == [(5 * NS, 10)]


class TestMethods:
    def test_method_reruns_on_sensitivity(self, sim):
        event = sim.event("e")
        log = []

        def method():
            log.append(sim.time)

        process = Process(sim.scheduler, "m", method, Process.METHOD)
        process.add_sensitivity(event)
        sim.scheduler.register_process(process, initialize=False)

        def driver():
            for __ in range(3):
                yield Timeout(10 * NS)
                event.notify()

        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert log == [10 * NS, 20 * NS, 30 * NS]

    def test_method_initialize_runs_once_at_start(self, sim):
        log = []
        process = Process(sim.scheduler, "m", lambda: log.append(sim.time),
                          Process.METHOD)
        sim.scheduler.register_process(process, initialize=True)
        sim.run(10)
        assert log == [0]

    def test_unknown_kind_rejected(self, sim):
        with pytest.raises(SimulationError):
            Process(sim.scheduler, "x", lambda: None, "fiber")
