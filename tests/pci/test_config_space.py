"""Tests for PCI configuration space and bus enumeration."""

import pytest

from repro.errors import ProtocolError
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.pci import (
    CMD_MEMORY_ENABLE,
    PciBus,
    PciCentralArbiter,
    PciConfigSpace,
    PciMaster,
    PciMonitor,
    PciOperation,
    PciTarget,
    REG_BAR0,
    REG_COMMAND_STATUS,
    REG_ID,
    STATUS_OK,
    config_read,
    config_write,
    enumerate_bus,
)
from repro.tlm import Memory


class TestConfigSpaceRegisters:
    def test_identity(self):
        space = PciConfigSpace(0x104C, 0xAC10, bar0_size=0x1000)
        assert space.config_read(REG_ID) == 0xAC10_104C

    def test_class_and_revision(self):
        space = PciConfigSpace(1, 2, bar0_size=16, class_code=0x020000,
                               revision=0x42)
        assert space.config_read(0x08) == 0x0200_0042

    def test_command_memory_enable(self):
        space = PciConfigSpace(1, 2, bar0_size=16)
        assert not space.memory_enabled
        space.config_write(REG_COMMAND_STATUS, CMD_MEMORY_ENABLE)
        assert space.memory_enabled

    def test_bar_sizing_handshake(self):
        space = PciConfigSpace(1, 2, bar0_size=0x4000)
        space.config_write(REG_BAR0, 0xFFFFFFFF)
        mask = space.config_read(REG_BAR0)
        assert ((~mask + 1) & 0xFFFFFFFF) == 0x4000
        space.config_write(REG_BAR0, 0x8000_4000)
        assert space.config_read(REG_BAR0) == 0x8000_4000
        assert space.bar0_base == 0x8000_4000

    def test_bar_base_aligned_to_size(self):
        space = PciConfigSpace(1, 2, bar0_size=0x1000)
        space.config_write(REG_BAR0, 0x1234_5678)
        assert space.bar0_base == 0x1234_5000

    def test_memory_decode_needs_enable_and_window(self):
        space = PciConfigSpace(1, 2, bar0_size=0x100, bar0_base=0x1000)
        assert not space.decodes_memory(0x1000)  # not enabled yet
        space.config_write(REG_COMMAND_STATUS, CMD_MEMORY_ENABLE)
        assert space.decodes_memory(0x1000)
        assert space.decodes_memory(0x10FC)
        assert not space.decodes_memory(0x1100)

    def test_identity_read_only(self):
        space = PciConfigSpace(1, 2, bar0_size=16)
        space.config_write(REG_ID, 0xFFFF_FFFF)
        assert space.config_read(REG_ID) == 0x0002_0001

    def test_validation(self):
        with pytest.raises(ProtocolError):
            PciConfigSpace(0x10000, 0, bar0_size=16)
        with pytest.raises(ProtocolError):
            PciConfigSpace(1, 2, bar0_size=24)  # not a power of two
        with pytest.raises(ProtocolError):
            PciConfigSpace(1, 2, bar0_size=0x100, bar0_base=0x10)


class EnumBench(Module):
    """A host bridge master plus two configurable devices."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.clock = Clock(self, "clock", period=10 * NS)
        self.bus = PciBus(self, "bus")
        PciCentralArbiter(self, "arb", self.bus, self.clock.clk)
        self.monitor = PciMonitor(self, "mon", self.bus, self.clock.clk)
        self.mem0 = Memory(0x1000)
        self.dev0 = PciTarget(
            self, "dev0", self.bus, self.clock.clk, self.mem0,
            base=0, size=0x1000,
            config_space=PciConfigSpace(0x104C, 0x0001, bar0_size=0x1000),
            idsel_index=0,
        )
        self.mem1 = Memory(0x4000)
        self.dev1 = PciTarget(
            self, "dev1", self.bus, self.clock.clk, self.mem1,
            base=0, size=0x4000,
            config_space=PciConfigSpace(0x8086, 0x7777, bar0_size=0x4000),
            idsel_index=2,
        )
        self.master = PciMaster(self, "master", self.bus, self.clock.clk)


class TestPinLevelConfigCycles:
    def test_config_read_identity(self):
        sim = Simulator()
        tb = EnumBench(sim, "tb")
        results = []

        def software():
            ok, identity = yield from config_read(tb.master, 0, REG_ID)
            results.append((ok, identity))
            sim.stop()

        sim.spawn(software, "sw")
        sim.run(5 * MS)
        assert results == [(True, 0x0001_104C)]

    def test_empty_slot_master_aborts(self):
        sim = Simulator()
        tb = EnumBench(sim, "tb")
        results = []

        def software():
            ok, __ = yield from config_read(tb.master, 7, REG_ID)
            results.append(ok)
            sim.stop()

        sim.spawn(software, "sw")
        sim.run(5 * MS)
        assert results == [False]

    def test_memory_disabled_until_programmed(self):
        sim = Simulator()
        tb = EnumBench(sim, "tb")
        statuses = []

        def software():
            op = PciOperation.read(0x0000_0000)
            yield from tb.master.transact(op)
            statuses.append(op.status)
            sim.stop()

        sim.spawn(software, "sw")
        sim.run(5 * MS)
        # Nobody decodes: both devices are unprogrammed.
        assert statuses == ["master_abort"]


class TestEnumeration:
    def _enumerate(self):
        sim = Simulator()
        tb = EnumBench(sim, "tb")
        outcome = {}

        def software():
            devices = yield from enumerate_bus(tb.master, n_slots=4)
            outcome["devices"] = devices
            # Use the newly-programmed windows.
            dev0 = devices[0]
            op = PciOperation.write(dev0.bar0_base + 0x10, [0xABCD])
            yield from tb.master.transact(op)
            outcome["write"] = op.status
            op = PciOperation.read(dev0.bar0_base + 0x10)
            yield from tb.master.transact(op)
            outcome["readback"] = op.data
            sim.stop()

        sim.spawn(software, "sw")
        sim.run(20 * MS)
        return tb, outcome

    def test_finds_both_devices(self):
        tb, outcome = self._enumerate()
        devices = outcome["devices"]
        assert len(devices) == 2
        assert (devices[0].vendor_id, devices[0].device_id) == (0x104C, 0x0001)
        assert (devices[1].vendor_id, devices[1].device_id) == (0x8086, 0x7777)
        assert devices[0].bar0_size == 0x1000
        assert devices[1].bar0_size == 0x4000

    def test_windows_disjoint_and_aligned(self):
        __, outcome = self._enumerate()
        devices = outcome["devices"]
        for device in devices:
            assert device.bar0_base % device.bar0_size == 0
        a, b = devices
        assert (a.bar0_base + a.bar0_size <= b.bar0_base
                or b.bar0_base + b.bar0_size <= a.bar0_base)

    def test_memory_usable_after_enumeration(self):
        tb, outcome = self._enumerate()
        assert outcome["write"] == STATUS_OK
        assert outcome["readback"] == [0xABCD]
        assert tb.mem0.read_word(0x10) == 0xABCD
        assert not tb.monitor.violations
