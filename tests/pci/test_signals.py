"""Unit tests for the PCI wire bundle and sampling helpers."""

import pytest

from repro.errors import ProtocolError
from repro.hdl import LogicVector, Module
from repro.kernel import Simulator, Timeout
from repro.pci import (
    PciAgentPins,
    PciBus,
    PciMaster,
    is_asserted,
    is_deasserted,
)


@pytest.fixture
def sim():
    return Simulator()


class TestSamplingHelpers:
    def test_driven_zero_is_asserted(self):
        assert is_asserted(LogicVector(1, 0))
        assert not is_deasserted(LogicVector(1, 0))

    def test_driven_one_is_deasserted(self):
        assert is_deasserted(LogicVector(1, 1))

    def test_floating_is_deasserted(self):
        assert is_deasserted(LogicVector.high_z(1))

    def test_unknown_is_deasserted(self):
        assert is_deasserted(LogicVector.unknown(1))


class TestPciBus:
    def test_wire_inventory(self, sim):
        bus = PciBus(sim, "bus", n_masters=3)
        assert bus.ad.width == 32
        assert bus.cbe_n.width == 4
        assert len(bus.req_n) == 3
        assert len(bus.gnt_n) == 3
        assert len(bus.shared_signals()) == 8

    def test_idle_when_floating(self, sim):
        bus = PciBus(sim, "bus")
        assert bus.idle

    def test_control_view(self, sim):
        bus = PciBus(sim, "bus")
        view = bus.control_view()
        assert view == {
            "frame": False, "irdy": False, "trdy": False,
            "devsel": False, "stop": False,
        }

    def test_busy_when_frame_driven(self, sim):
        bus = PciBus(sim, "bus")
        driver = bus.frame_n.get_driver("tester")

        def proc():
            driver.write(0)
            yield Timeout(0)

        sim.spawn(proc, "p")
        sim.run(10)
        assert not bus.idle


class TestAgentPins:
    def test_release_all_floats_everything(self, sim):
        bus = PciBus(sim, "bus")
        pins = PciAgentPins(bus, "agent")

        def proc():
            pins.frame_n.write(0)
            pins.ad.write(0x1234)
            yield Timeout(0)
            pins.release_all()
            yield Timeout(0)

        sim.spawn(proc, "p")
        sim.run(10)
        assert bus.idle
        assert bus.ad.read().is_all_z

    def test_master_index_out_of_range(self, sim):
        top = Module(sim, "top")
        bus = PciBus(top, "bus", n_masters=1)
        clk = top.signal("clk", width=1, init=0)
        with pytest.raises(ProtocolError):
            PciMaster(top, "m", bus, clk, master_index=1)
