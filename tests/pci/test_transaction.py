"""Unit tests for PCI operation/transaction records."""

import pytest

from repro.errors import ProtocolError
from repro.pci import (
    CMD_CONFIG_READ,
    CMD_MEM_READ,
    CMD_MEM_WRITE,
    PciOperation,
    PciTransaction,
    STATUS_PENDING,
)


class TestPciOperation:
    def test_read_factory(self):
        op = PciOperation.read(0x100, count=4)
        assert op.is_read and not op.is_write
        assert op.command == CMD_MEM_READ
        assert op.count == 4
        assert op.status == STATUS_PENDING
        assert op.command_name == "mem_read"

    def test_write_factory_scalar_and_list(self):
        op = PciOperation.write(0x100, 7)
        assert op.data == [7] and op.count == 1
        op = PciOperation.write(0x100, [1, 2])
        assert op.count == 2

    def test_unaligned_address_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation.read(0x101)

    def test_address_out_of_range_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation.read(1 << 32)

    def test_write_without_data_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation(CMD_MEM_WRITE, 0x100)

    def test_read_with_data_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation(CMD_MEM_READ, 0x100, data=[1])

    def test_zero_count_read_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation.read(0x100, count=0)

    def test_oversized_word_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation.write(0x100, [1 << 32])

    def test_bad_byte_enables_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation.read(0x100, byte_enables=0x1F)

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            PciOperation(0x4, 0x100)

    def test_config_read_is_read(self):
        op = PciOperation(CMD_CONFIG_READ, 0x0, count=1)
        assert op.is_read

    def test_latency_none_while_pending(self):
        op = PciOperation.read(0x0)
        assert op.latency is None
        op.enqueue_time = 10
        op.complete_time = 60
        assert op.latency == 50


class TestPciTransaction:
    def test_signature_contents(self):
        txn = PciTransaction(CMD_MEM_WRITE, 0x200, 0)
        txn.data = [1, 2]
        txn.byte_enables = [0xF, 0xF]
        assert txn.signature() == (CMD_MEM_WRITE, 0x200, (1, 2), (0xF, 0xF))

    def test_duration(self):
        txn = PciTransaction(CMD_MEM_READ, 0, 100)
        assert txn.duration is None
        txn.end_time = 350
        assert txn.duration == 250

    def test_word_count_and_repr(self):
        txn = PciTransaction(CMD_MEM_READ, 0x10, 0)
        txn.data = [5]
        assert txn.word_count == 1
        assert "mem_read" in repr(txn)
