"""Shared PCI testbench fixture."""

import pytest

from repro.hdl import Clock, Module
from repro.kernel import NS, Simulator
from repro.pci import (
    PciBus,
    PciCentralArbiter,
    PciMaster,
    PciMonitor,
    PciTarget,
)
from repro.tlm import Memory

CLOCK_PERIOD = 10 * NS


class PciTestbench(Module):
    """Clock + bus + arbiter + monitor + one memory target + N masters."""

    def __init__(
        self,
        parent,
        name,
        n_masters=1,
        mem_base=0x1000,
        mem_size=0x1000,
        strict_monitor=True,
        **target_kwargs,
    ):
        super().__init__(parent, name)
        self.clock = Clock(self, "clock", period=CLOCK_PERIOD)
        self.bus = PciBus(self, "bus", n_masters=n_masters)
        self.pci_arbiter = PciCentralArbiter(self, "arb", self.bus, self.clock.clk)
        self.memory = Memory(mem_size)
        self.target = PciTarget(
            self, "target", self.bus, self.clock.clk, self.memory,
            base=mem_base, size=mem_size, **target_kwargs,
        )
        self.monitor = PciMonitor(
            self, "monitor", self.bus, self.clock.clk, strict=strict_monitor
        )
        self.masters = [
            PciMaster(self, f"master{i}", self.bus, self.clock.clk, i)
            for i in range(n_masters)
        ]
        self.master = self.masters[0]
        self.mem_base = mem_base


@pytest.fixture
def make_tb():
    """Factory fixture: build a testbench with custom target knobs."""

    def build(**kwargs):
        sim = Simulator()
        tb = PciTestbench(sim, "tb", **kwargs)
        return sim, tb

    return build


@pytest.fixture
def tb_pair(make_tb):
    return make_tb()
