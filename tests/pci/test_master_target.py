"""Integration tests of the PCI master/target pin-level protocol."""

import pytest

from repro.kernel import MS, NS
from repro.pci import (
    PciOperation,
    STATUS_MASTER_ABORT,
    STATUS_OK,
)


def run_ops(sim, tb, ops, master=None, max_time=5 * MS):
    """Drive operations through a master; returns them completed."""
    master = master or tb.master
    done = {"flag": False}

    def stimulus():
        for op in ops:
            yield from master.transact(op)
        done["flag"] = True
        sim.stop()

    sim.spawn(stimulus, "stimulus")
    sim.run(max_time)
    assert done["flag"], "operations did not complete in time"
    return ops


class TestSingleTransfers:
    def test_single_write_then_read(self, tb_pair):
        sim, tb = tb_pair
        write = PciOperation.write(0x1000, 0xDEADBEEF)
        read = PciOperation.read(0x1000)
        run_ops(sim, tb, [write, read])
        assert write.status == STATUS_OK
        assert read.status == STATUS_OK
        assert read.data == [0xDEADBEEF]
        assert tb.memory.read_word(0) == 0xDEADBEEF

    def test_burst_write_read(self, tb_pair):
        sim, tb = tb_pair
        payload = [i * 0x1111 for i in range(8)]
        write = PciOperation.write(0x1000, payload)
        read = PciOperation.read(0x1000, count=8)
        run_ops(sim, tb, [write, read])
        assert read.data == payload

    def test_byte_enables_reach_memory(self, tb_pair):
        sim, tb = tb_pair
        ops = [
            PciOperation.write(0x1000, [0xFFFFFFFF]),
            PciOperation.write(0x1000, [0x0], byte_enables=0b0011),
            PciOperation.read(0x1000),
        ]
        run_ops(sim, tb, ops)
        assert ops[2].data == [0xFFFF0000]

    def test_latency_measured(self, tb_pair):
        sim, tb = tb_pair
        op = PciOperation.read(0x1000)
        run_ops(sim, tb, [op])
        assert op.latency is not None
        assert 0 < op.latency < 500 * NS


class TestMasterAbort:
    def test_unclaimed_address_aborts(self, tb_pair):
        sim, tb = tb_pair
        op = PciOperation.read(0x8000_0000)
        run_ops(sim, tb, [op])
        assert op.status == STATUS_MASTER_ABORT
        assert op.data == []
        assert tb.master.aborts_seen == 1

    def test_bus_usable_after_abort(self, tb_pair):
        sim, tb = tb_pair
        ops = [
            PciOperation.read(0x8000_0000),
            PciOperation.write(0x1000, 0x42),
            PciOperation.read(0x1000),
        ]
        run_ops(sim, tb, ops)
        assert ops[2].status == STATUS_OK
        assert ops[2].data == [0x42]


class TestWaitStates:
    @pytest.mark.parametrize("waits", [1, 2, 4])
    def test_data_survives_wait_states(self, make_tb, waits):
        sim, tb = make_tb(wait_states=waits)
        payload = [0xA0 + i for i in range(4)]
        write = PciOperation.write(0x1000, payload)
        read = PciOperation.read(0x1000, count=4)
        run_ops(sim, tb, [write, read])
        assert read.data == payload
        assert not tb.monitor.violations

    def test_wait_states_stretch_transactions(self, make_tb):
        sim_fast, tb_fast = make_tb(wait_states=0)
        fast = PciOperation.write(0x1000, [1, 2, 3, 4])
        run_ops(sim_fast, tb_fast, [fast])
        sim_slow, tb_slow = make_tb(wait_states=3)
        slow = PciOperation.write(0x1000, [1, 2, 3, 4])
        run_ops(sim_slow, tb_slow, [slow])
        assert slow.latency > fast.latency

    def test_decode_latency_stretches(self, make_tb):
        sim_fast, tb_fast = make_tb(decode_latency=1)
        fast = PciOperation.read(0x1000)
        run_ops(sim_fast, tb_fast, [fast])
        sim_slow, tb_slow = make_tb(decode_latency=4)
        slow = PciOperation.read(0x1000)
        run_ops(sim_slow, tb_slow, [slow])
        assert slow.latency > fast.latency


class TestRetryAndDisconnect:
    def test_retry_eventually_completes(self, make_tb):
        sim, tb = make_tb(retry_count=3)
        op = PciOperation.write(0x1000, 0x77)
        run_ops(sim, tb, [op])
        assert op.status == STATUS_OK
        assert op.retries == 3
        assert tb.target.retries_issued == 3
        assert tb.memory.read_word(0) == 0x77

    def test_disconnect_splits_burst(self, make_tb):
        sim, tb = make_tb(disconnect_after=2)
        payload = list(range(1, 8))
        write = PciOperation.write(0x1000, payload)
        read = PciOperation.read(0x1000, count=7)
        run_ops(sim, tb, [write, read])
        assert write.status == STATUS_OK
        assert read.data == payload
        # 7 words at <=2 words per transaction: at least 3 reconnects each.
        assert write.retries >= 3
        assert tb.target.disconnects_issued >= 6

    def test_retry_and_disconnect_combined(self, make_tb):
        sim, tb = make_tb(retry_count=1, disconnect_after=3)
        payload = list(range(9))
        write = PciOperation.write(0x1000, payload)
        read = PciOperation.read(0x1000, count=9)
        run_ops(sim, tb, [write, read])
        assert read.data == payload
        assert not tb.monitor.violations


class TestMultiMaster:
    def test_two_masters_interleave_safely(self, make_tb):
        sim, tb = make_tb(n_masters=2, mem_base=0x0, mem_size=0x2000)
        done = []

        def stim(master, base, tag):
            def run():
                for i in range(5):
                    op = PciOperation.write(base + 4 * i, [tag * 0x100 + i])
                    yield from master.transact(op)
                    assert op.status == STATUS_OK
                done.append(tag)
                if len(done) == 2:
                    sim.stop()
            return run

        sim.spawn(stim(tb.masters[0], 0x000, 1), "s0")
        sim.spawn(stim(tb.masters[1], 0x800, 2), "s1")
        sim.run(5 * MS)
        assert sorted(done) == [1, 2]
        assert tb.memory.read_word(0x000) == 0x100
        assert tb.memory.read_word(0x800) == 0x200
        assert not tb.monitor.violations

    def test_grant_rotates_between_masters(self, make_tb):
        sim, tb = make_tb(n_masters=2, mem_base=0x0, mem_size=0x2000)
        finished = []

        def stim(master, base, tag):
            def run():
                for i in range(10):
                    yield from master.transact(
                        PciOperation.write(base + 4 * i, [i])
                    )
                finished.append(tag)
                if len(finished) == 2:
                    sim.stop()
            return run

        sim.spawn(stim(tb.masters[0], 0x000, "a"), "sa")
        sim.spawn(stim(tb.masters[1], 0x800, "b"), "sb")
        sim.run(5 * MS)
        assert tb.pci_arbiter.grant_changes >= 4


class TestMonitorObservation:
    def test_monitor_reconstructs_transactions(self, tb_pair):
        sim, tb = tb_pair
        ops = [
            PciOperation.write(0x1000, [0x11, 0x22]),
            PciOperation.read(0x1000, count=2),
        ]
        run_ops(sim, tb, ops)
        completed = tb.monitor.completed_transactions
        assert len(completed) == 2
        assert completed[0].data == [0x11, 0x22]
        assert completed[1].data == [0x11, 0x22]
        assert completed[0].address == 0x1000

    def test_no_parity_errors_in_clean_run(self, tb_pair):
        sim, tb = tb_pair
        run_ops(sim, tb, [
            PciOperation.write(0x1000, list(range(16))),
            PciOperation.read(0x1000, count=16),
        ])
        assert tb.monitor.parity_errors == 0
        assert not tb.monitor.violations

    def test_signatures_stable_across_runs(self, make_tb):
        def one_run():
            sim, tb = make_tb()
            run_ops(sim, tb, [
                PciOperation.write(0x1000, [5, 6]),
                PciOperation.read(0x1000, count=2),
            ])
            return tb.monitor.signatures()

        assert one_run() == one_run()
