"""Unit and property tests for PCI parity."""

from hypothesis import given, strategies as st

from repro.hdl import LogicVector
from repro.pci import parity_of, parity_of_vectors


class TestParityOf:
    def test_zero_is_even(self):
        assert parity_of(0, 0) == 0

    def test_single_bit_is_odd(self):
        assert parity_of(1, 0) == 1
        assert parity_of(0, 1) == 1

    def test_known_vector(self):
        # 0xF has four ones -> even -> parity bit 0.
        assert parity_of(0xF, 0) == 0
        # 0x7 has three ones -> odd -> parity bit 1.
        assert parity_of(0x7, 0) == 1

    def test_cbe_contributes(self):
        assert parity_of(0, 0xF) == 0
        assert parity_of(0, 0x7) == 1


class TestParityOfVectors:
    def test_defined_vectors(self):
        ad = LogicVector(32, 0xDEADBEEF)
        cbe = LogicVector(4, 0x7)
        assert parity_of_vectors(ad, cbe) == parity_of(0xDEADBEEF, 0x7)

    def test_undefined_returns_none(self):
        assert parity_of_vectors(LogicVector.high_z(32), LogicVector(4, 0)) is None
        assert parity_of_vectors(LogicVector(32, 0), LogicVector.unknown(4)) is None


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=0xF),
)
def test_total_ones_even(ad, cbe):
    """Property: AD + C/BE + PAR always has an even number of ones."""
    par = parity_of(ad, cbe)
    total = bin(ad).count("1") + bin(cbe).count("1") + par
    assert total % 2 == 0


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=0xF),
    st.integers(min_value=0, max_value=31),
)
def test_single_bit_flip_flips_parity(ad, cbe, bit):
    """Property: parity detects any single-bit error on AD."""
    assert parity_of(ad, cbe) != parity_of(ad ^ (1 << bit), cbe)
