"""A polymorphic shared object through the whole flow.

Combines the two headline SystemC+ features — global objects and
hardware polymorphism: a checksum accelerator whose algorithm is a
polymorphic variable inside the shared state, reconfigured and invoked
through guarded methods, behaviourally and post-synthesis.
"""


from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.osss import GlobalObject, PolymorphicVar, connect, guarded_method
from repro.synthesis import SynthesisConfig, synthesize_communication


class ChecksumAlgo:
    def compute(self, words):
        raise NotImplementedError


class XorAlgo(ChecksumAlgo):
    def compute(self, words):
        value = 0
        for word in words:
            value ^= word
        return value


class SumAlgo(ChecksumAlgo):
    def compute(self, words):
        return sum(words) & 0xFFFFFFFF


class Crc8Algo(ChecksumAlgo):
    def compute(self, words):
        crc = 0
        for word in words:
            for shift in (0, 8, 16, 24):
                crc ^= (word >> shift) & 0xFF
                for __ in range(8):
                    crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 \
                        else (crc << 1) & 0xFF
        return crc


ALGOS = [XorAlgo, SumAlgo, Crc8Algo]


class ChecksumDevice:
    """Shared accelerator: configure the algorithm, then compute."""

    def __init__(self):
        self.algo = PolymorphicVar(ChecksumAlgo, ALGOS, name="algo")
        self.algo.assign(XorAlgo())
        self.computations = 0

    @guarded_method()
    def configure(self, tag):
        self.algo.assign(ALGOS[tag]())
        return tag

    @guarded_method()
    def compute(self, words):
        self.computations += 1
        return self.algo.call("compute", list(words))


DATA = [0xDEADBEEF, 0x12345678, 0x0BADF00D]
EXPECTED = {
    0: XorAlgo().compute(DATA),
    1: SumAlgo().compute(DATA),
    2: Crc8Algo().compute(DATA),
}


def _run(synthesize):
    sim = Simulator()
    clock = Clock(sim, "clock", period=10 * NS)
    host_a = Module(sim, "host_a")
    host_b = Module(sim, "host_b")
    dev_a = GlobalObject(host_a, "dev", ChecksumDevice)
    dev_b = GlobalObject(host_b, "dev", ChecksumDevice)
    connect(dev_a, dev_b)
    result = None
    if synthesize:
        result = synthesize_communication(sim, clock.clk, SynthesisConfig())
    observed = {}

    def configurator():
        for tag in (0, 1, 2):
            yield from dev_a.configure(tag)
            value = yield from dev_a.compute(DATA)
            observed[tag] = value
        sim.stop()

    sim.spawn(configurator, "config")
    sim.run(10 * MS)
    return observed, result


class TestPolymorphicDevice:
    def test_behavioural_dispatch(self):
        observed, __ = _run(synthesize=False)
        assert observed == EXPECTED

    def test_post_synthesis_dispatch(self):
        observed, result = _run(synthesize=True)
        assert observed == EXPECTED
        # The dispatch structure was synthesized alongside the channel.
        assert result.report.dispatches
        dispatch = result.report.dispatches[0]
        assert dispatch.variants == ["XorAlgo", "SumAlgo", "Crc8Algo"]
        assert dispatch.tag_bits == 2

    def test_dispatch_netlists_emitted(self):
        __, result = _run(synthesize=True)
        group = result.groups[0]
        assert group.dispatch_irs
        assert "run_xoralgo_compute" in group.verilog
        assert "run_crc8algo_compute" in group.verilog
        assert "poly0_algo" in group.vhdl

    def test_second_module_sees_configuration(self):
        """Configuration through one handle is visible through the other
        (shared state), behaviourally and post-synthesis."""
        for synthesize in (False, True):
            sim = Simulator()
            clock = Clock(sim, "clock", period=10 * NS)
            host_a = Module(sim, "a")
            host_b = Module(sim, "b")
            dev_a = GlobalObject(host_a, "dev", ChecksumDevice)
            dev_b = GlobalObject(host_b, "dev", ChecksumDevice)
            connect(dev_a, dev_b)
            if synthesize:
                synthesize_communication(sim, clock.clk,
                                         SynthesisConfig(emit_hdl=False))
            results = []

            def flow():
                yield from dev_a.configure(1)     # SumAlgo via handle A
                value = yield from dev_b.compute(DATA)  # compute via B
                results.append(value)
                sim.stop()

            sim.spawn(flow, "flow")
            sim.run(10 * MS)
            assert results == [EXPECTED[1]], f"synthesize={synthesize}"
