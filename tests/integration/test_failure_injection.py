"""Failure injection: the checkers must catch broken agents."""

import pytest

from repro.core import CommandType
from repro.errors import ProtocolError
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.pci import (
    PciBus,
    PciCentralArbiter,
    PciMaster,
    PciMonitor,
    PciOperation,
    PciTarget,
)
from repro.tlm import Memory


class RogueAgent(Module):
    """Drives a wire it does not own, after some delay."""

    def __init__(self, parent, name, bus, clk, start_cycle=6):
        super().__init__(parent, name)
        self.bus = bus
        self.clk = clk
        self.start_cycle = start_cycle
        self._irdy = bus.irdy_n.get_driver(self.path)
        self.thread(self._sabotage)

    def _sabotage(self):
        for __ in range(self.start_cycle):
            yield self.clk.posedge
        # Assert IRDY# with no transaction of our own.
        self._irdy.write(0)
        for __ in range(3):
            yield self.clk.posedge
        self._irdy.release()


class BadParityTarget(PciTarget):
    """A target that computes PAR over inverted data (always wrong)."""

    def _parity_duty(self):
        if self._drove_ad:
            ad = self.bus.ad.read()
            cbe = self.bus.cbe_n.read()
            if ad.is_fully_defined and cbe.is_fully_defined:
                from repro.pci.parity import parity_of

                wrong = 1 - parity_of(ad.to_int(), cbe.to_int())
                self.pins.par.write(wrong)
                return
        self.pins.par.release()


def _bench(sim, target_cls=PciTarget, monitor_strict=False, **target_kwargs):
    top = Module(sim, "top")
    clock = Clock(top, "clock", period=10 * NS)
    bus = PciBus(top, "bus")
    PciCentralArbiter(top, "arb", bus, clock.clk)
    memory = Memory(1 << 12)
    target = target_cls(top, "tgt", bus, clock.clk, memory, base=0,
                        size=1 << 12, **target_kwargs)
    monitor = PciMonitor(top, "mon", bus, clock.clk, strict=monitor_strict)
    master = PciMaster(top, "master", bus, clock.clk)
    return top, clock, bus, master, monitor


class TestRogueDrivers:
    def test_monitor_flags_orphan_irdy(self):
        sim = Simulator()
        top, clock, bus, master, monitor = _bench(sim)
        RogueAgent(top, "rogue", bus, clock.clk)
        sim.run(1 * MS)
        assert any("IRDY#" in v for v in monitor.violations)

    def test_strict_monitor_raises(self):
        sim = Simulator()
        top, clock, bus, master, monitor = _bench(sim, monitor_strict=True)
        RogueAgent(top, "rogue", bus, clock.clk)
        with pytest.raises(ProtocolError):
            sim.run(1 * MS)


class TestBadParity:
    def test_parity_errors_counted(self):
        sim = Simulator()
        top, clock, bus, master, monitor = _bench(
            sim, target_cls=BadParityTarget
        )
        done = []

        def stim():
            op = PciOperation.read(0x0, count=4)
            yield from master.transact(op)
            done.append(op)
            sim.stop()

        sim.spawn(stim, "stim")
        sim.run(5 * MS)
        assert done and done[0].status == "ok"  # data still transfers
        assert monitor.parity_errors > 0        # ...but PAR is flagged

    def test_good_target_has_no_parity_errors(self):
        sim = Simulator()
        top, clock, bus, master, monitor = _bench(sim)

        def stim():
            yield from master.transact(PciOperation.read(0x0, count=4))
            sim.stop()

        sim.spawn(stim, "stim")
        sim.run(5 * MS)
        assert monitor.parity_errors == 0


class TestBrokenFunctionalModel:
    def test_store_exception_reaches_testbench(self):
        """A functional model that rejects an access aborts the run with
        a diagnosable error rather than silently corrupting data."""

        class VetoMemory(Memory):
            def write_word(self, address, data, byte_enables=0xF):
                raise ProtocolError("write veto")

        sim = Simulator()
        top = Module(sim, "top")
        clock = Clock(top, "clock", period=10 * NS)
        bus = PciBus(top, "bus")
        PciCentralArbiter(top, "arb", bus, clock.clk)
        PciTarget(top, "tgt", bus, clock.clk, VetoMemory(1 << 12),
                  base=0, size=1 << 12)
        master = PciMaster(top, "master", bus, clock.clk)

        def stim():
            yield from master.transact(PciOperation.write(0x0, [1]))

        sim.spawn(stim, "stim")
        with pytest.raises(ProtocolError, match="write veto"):
            sim.run(1 * MS)


class TestApplicationLevelErrors:
    def test_master_abort_surfaces_in_response_status(self):
        """A read from an unmapped address returns a failed DataType to
        the application instead of hanging it."""
        commands = [CommandType.read(0x8000_0000, count=1)]
        bundle = build_pci_platform(
            [commands], PciPlatformConfig(monitor_strict=False)
        )
        bundle.run(10 * MS)
        app = bundle.handle.applications[0]
        assert app.done
        response = app.records[0].response
        assert response is not None
        assert not response.ok
        assert response.status == "master_abort"
        assert bundle.interface.operations_failed == 1
