"""Property-based tests of the communication semantics."""

from hypothesis import given, settings, strategies as st

from repro.core import expected_memory_image, generate_workload
from repro.flow import build_functional_platform, build_pci_platform
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.osss import GlobalObject, connect, guarded_method
from repro.synthesis import SynthesisConfig, synthesize_communication
from repro.verify import check_memory_image


class KeyedStore:
    """Per-key mailbox: client results independent of interleaving."""

    def __init__(self):
        self.slots = {}

    @guarded_method()
    def put(self, key, value):
        self.slots.setdefault(key, []).append(value)
        return len(self.slots[key])

    @guarded_method(lambda self: True)
    def get_all(self, key):
        return tuple(self.slots.get(key, ()))


def _run_clients(call_plans, synthesize):
    """Run per-client call plans; return per-client observed results."""
    sim = Simulator()
    clock = Clock(sim, "clock", period=10 * NS)
    handles = []
    for index in range(len(call_plans)):
        module = Module(sim, f"client{index}")
        handles.append(GlobalObject(module, "store", KeyedStore))
    connect(*handles)
    if synthesize:
        synthesize_communication(sim, clock.clk,
                                 SynthesisConfig(emit_hdl=False))
    results = {index: [] for index in range(len(call_plans))}
    remaining = [len(call_plans)]

    def make(index, plan, handle):
        def client():
            for value in plan:
                count = yield from handle.put(index, value)
                results[index].append(count)
            final = yield from handle.get_all(index)
            results[index].append(final)
            remaining[0] -= 1
            if remaining[0] == 0:
                sim.stop()
        return client

    for index, (plan, handle) in enumerate(zip(call_plans, handles)):
        sim.spawn(make(index, plan, handle), f"proc{index}")
    sim.run(50 * MS)
    assert remaining[0] == 0, "clients did not finish"
    return results, handles[0]


call_plans = st.lists(
    st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=5),
    min_size=1,
    max_size=4,
)


@settings(max_examples=20, deadline=None)
@given(call_plans)
def test_serialisation_invariant(plans):
    """Whatever the interleaving, each client's view is sequential: put
    counts are 1..n and get_all returns its own values in order."""
    results, handle = _run_clients(plans, synthesize=False)
    for index, plan in enumerate(plans):
        observed = results[index]
        assert observed[:-1] == list(range(1, len(plan) + 1))
        assert observed[-1] == tuple(plan)
    assert handle.stats.total_completed == sum(len(p) + 1 for p in plans)


@settings(max_examples=10, deadline=None)
@given(call_plans)
def test_rtl_channel_equivalent_to_behavioural(plans):
    """Per-client observations match between the behavioural server and
    the synthesized RT-level channel."""
    behavioural, __ = _run_clients(plans, synthesize=False)
    lowered, ___ = _run_clients(plans, synthesize=True)
    assert behavioural == lowered


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=1, max_value=4),
)
def test_pci_platform_matches_golden_model(seed, n_commands, max_burst):
    """Any generated workload leaves the pin-level platform's memory in
    the golden-model state, with zero protocol violations."""
    workload = generate_workload(seed, n_commands, address_span=0x100,
                                 max_burst=max_burst,
                                 partial_byte_enable_fraction=0.3)
    bundle = build_pci_platform([workload])
    bundle.run(100 * MS)
    golden = expected_memory_image(workload, 0x100 // 4)
    check_memory_image(bundle.memory, golden)
    assert not bundle.monitor.violations
    assert bundle.monitor.parity_errors == 0


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_functional_and_pci_traces_agree(seed):
    """Refinement consistency holds for arbitrary workloads."""
    workload = generate_workload(seed, 8, address_span=0x100, max_burst=3)
    functional = build_functional_platform([workload]).run(100 * MS)
    pci = build_pci_platform([workload]).run(100 * MS)
    assert functional.traces == pci.traces
