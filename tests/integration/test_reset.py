"""End-to-end tests of the interface's reset() guarded method.

The paper: *"This method is invoked in order to reset the interface. It
cancels all the pending commands and perform other initialising
operations."* The epoch mechanism additionally drops responses of
operations that were already in flight on the bus when reset hit.
"""

from repro.core import CommandType, FunctionalBusInterface
from repro.flow import build_pci_platform
from repro.hdl import Module
from repro.kernel import MS, NS, Simulator, Timeout
from repro.tlm import AddressRouter, Memory


def _functional_fixture(word_latency=0):
    sim = Simulator()
    top = Module(sim, "top")
    memory = Memory(1 << 12)
    router = AddressRouter()
    router.add_target(0, 1 << 12, memory, "mem")
    iface = FunctionalBusInterface(top, "iface", router,
                                   word_latency=word_latency)
    return sim, top, memory, iface


class TestResetSemantics:
    def test_reset_cancels_pending_command(self):
        sim, top, memory, iface = _functional_fixture(word_latency=10**9)
        log = []

        def controller():
            # Stuff the single command slot, then reset before the slow
            # dispatcher finishes; a second put must then go straight in.
            yield from iface.channel.call(
                "put_command", CommandType.write(0x0, [1])
            )
            yield from iface.channel.call(
                "put_command", CommandType.write(0x4, [2])
            )
            yield from iface.channel.call("reset")
            log.append("reset done")
            # The slot is free immediately after reset.
            yield from iface.channel.call(
                "put_command", CommandType.write(0x8, [3])
            )
            log.append("post-reset put accepted")

        sim.spawn(controller, "ctrl")
        sim.run(100 * MS)
        assert log == ["reset done", "post-reset put accepted"]

    def test_stale_response_dropped_after_reset(self):
        # 1 ms per word: the read is still "on the bus" when reset hits.
        sim, top, memory, iface = _functional_fixture(word_latency=10**12)
        memory.load(0x0, [0x1234])
        outcome = {}

        def controller():
            yield from iface.channel.call(
                "put_command", CommandType.read(0x0)
            )
            yield Timeout(10 * NS)       # dispatcher has taken the command
            yield from iface.channel.call("reset")
            # Wait long enough for the in-flight read to try delivering.
            yield Timeout(3 * 10**12)
            state = iface.channel_state
            outcome["responses"] = len(state.responses)
            outcome["epoch"] = state.epoch
            sim.stop()

        sim.spawn(controller, "ctrl")
        sim.run(10**13)
        assert outcome["responses"] == 0      # stale response was dropped
        assert outcome["epoch"] == 1

    def _second_user_platform(self, synthesize):
        """A platform plus a second application-style user with its own
        port.

        Post-synthesis, every handle is one hardware port with a single
        outstanding call; a process must not funnel its calls through the
        *dispatcher's* handle (that can deadlock, exactly as sharing a
        physical port would) — it gets its own connected global object,
        like any application module.
        """
        from repro.core.bus_interface import BusInterfaceChannel
        from repro.osss import GlobalObject

        commands = [CommandType.write(0x10, [0xAA])]
        # Build without synthesis first so the extra handle joins the
        # group before lowering.
        bundle = build_pci_platform([commands], synthesize=False)
        sim = bundle.handle.sim
        iface = bundle.interface
        user_port = GlobalObject(bundle.top, "user2_port", BusInterfaceChannel)
        iface.connect_application(user_port)
        if synthesize:
            from repro.synthesis import synthesize_communication

            synthesize_communication(sim, bundle.clock.clk)
        return bundle, sim, iface, user_port

    def _run_second_user(self, synthesize):
        bundle, sim, iface, user_port = self._second_user_platform(synthesize)
        results = {}

        def second_user():
            from repro.core.application import wait_for_all

            yield from wait_for_all(bundle.handle.applications)
            yield from user_port.call("reset")
            yield from user_port.call(
                "put_command", CommandType.write(0x20, [0xBB])
            )
            yield from user_port.call(
                "put_command", CommandType.read(0x20)
            )
            response = yield from user_port.call("app_data_get")
            results["data"] = response.data
            sim.stop()

        sim.spawn(second_user, "user2")
        # The platform's quiesce watcher may stop the run between the
        # first application finishing and the second user's traffic;
        # resuming the scheduler continues where it left off.
        for __ in range(5):
            sim.run(100 * MS)
            if "data" in results:
                break
        return bundle, results

    def test_interface_fully_usable_after_reset(self):
        bundle, results = self._run_second_user(synthesize=False)
        assert results["data"] == [0xBB]
        assert bundle.memory.read_word(0x10) == 0xAA
        assert bundle.memory.read_word(0x20) == 0xBB

    def test_reset_works_post_synthesis(self):
        bundle, results = self._run_second_user(synthesize=True)
        assert results["data"] == [0xBB]
        assert bundle.memory.read_word(0x20) == 0xBB
