"""Tests for the ``python -m repro`` command-line demos."""

import os

import pytest

from repro.__main__ import main


class TestCli:
    def test_library_listing(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "pci" in out and "wishbone" in out
        assert "PciBusInterface" in out

    def test_refine(self, capsys):
        assert main(["--commands", "6", "refine"]) == 0
        out = capsys.readouterr().out
        assert "trace-consistent: True" in out

    def test_flow(self, capsys):
        assert main(["--commands", "6", "flow"]) == 0
        out = capsys.readouterr().out
        assert "post-synthesis validation" in out
        assert "FAIL" not in out

    def test_report(self, capsys):
        assert main(["--commands", "4", "report"]) == 0
        out = capsys.readouterr().out
        assert "communication synthesis report" in out
        assert "BusInterfaceChannel" in out

    def test_report_with_verilog(self, capsys):
        assert main(["--commands", "4", "report", "--verilog"]) == 0
        out = capsys.readouterr().out
        assert "module chan0" in out

    def test_waveforms(self, capsys, tmp_path):
        vcd_path = str(tmp_path / "out.vcd")
        assert main(["waveforms", "--vcd", vcd_path]) == 0
        out = capsys.readouterr().out
        assert "frame_n" in out
        assert os.path.exists(vcd_path)
        with open(vcd_path) as handle:
            assert "$enddefinitions" in handle.read()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])
