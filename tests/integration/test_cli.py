"""Tests for the ``python -m repro`` command-line demos."""

import os

import pytest

from repro.__main__ import main


class TestCli:
    def test_library_listing(self, capsys):
        assert main(["library"]) == 0
        out = capsys.readouterr().out
        assert "pci" in out and "wishbone" in out
        assert "PciBusInterface" in out

    def test_refine(self, capsys):
        assert main(["--commands", "6", "refine"]) == 0
        out = capsys.readouterr().out
        assert "trace-consistent: True" in out

    def test_flow(self, capsys):
        assert main(["--commands", "6", "flow"]) == 0
        out = capsys.readouterr().out
        assert "post-synthesis validation" in out
        assert "FAIL" not in out

    def test_report(self, capsys):
        assert main(["--commands", "4", "report"]) == 0
        out = capsys.readouterr().out
        assert "communication synthesis report" in out
        assert "BusInterfaceChannel" in out

    def test_report_with_verilog(self, capsys):
        assert main(["--commands", "4", "report", "--verilog"]) == 0
        out = capsys.readouterr().out
        assert "module chan0" in out

    def test_waveforms(self, capsys, tmp_path):
        vcd_path = str(tmp_path / "out.vcd")
        assert main(["waveforms", "--vcd", vcd_path]) == 0
        out = capsys.readouterr().out
        assert "frame_n" in out
        assert os.path.exists(vcd_path)
        with open(vcd_path) as handle:
            assert "$enddefinitions" in handle.read()

    def test_lint_through_main(self, capsys):
        # Regression: the global --seed default (None) shadows the lint
        # subcommand's own default in the shared argparse namespace.
        assert main(["--commands", "4", "lint", "--target",
                     "functional"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])


class TestBusSwapCli:
    """The global --bus knob: the same commands, another element."""

    @pytest.mark.parametrize("bus", ["wishbone", "axi4lite", "tlmgp"])
    def test_refine_on_every_family(self, bus, capsys):
        assert main(["--commands", "5", "--bus", bus, "refine"]) == 0
        out = capsys.readouterr().out
        assert "trace-consistent: True" in out

    def test_flow_with_bus(self, capsys):
        assert main(["--commands", "5", "--bus", "axi4lite", "flow"]) == 0
        out = capsys.readouterr().out
        assert "axi4lite-device-under-design" in out or "ok" in out
        assert "FAIL" not in out

    def test_report_with_bus(self, capsys):
        assert main(["--commands", "4", "--bus", "wishbone",
                     "report"]) == 0
        out = capsys.readouterr().out
        assert "communication synthesis report" in out

    def test_functional_bus_rejected(self):
        with pytest.raises(SystemExit):
            main(["--bus", "functional", "flow"])

    def test_waveforms_guard_non_pci(self, capsys):
        assert main(["--bus", "wishbone", "waveforms"]) == 2
        out = capsys.readouterr().out
        assert "PCI-specific" in out

    def test_response_capacity_plumbs_through(self, capsys):
        assert main(["--commands", "5", "--response-capacity", "2",
                     "refine"]) == 0
        out = capsys.readouterr().out
        assert "trace-consistent: True" in out


class TestMatrixCli:
    def test_single_bus_matrix(self, capsys):
        assert main(["--commands", "4", "--bus", "tlmgp", "matrix"]) == 0
        out = capsys.readouterr().out
        assert "swap matrix: seed 55" in out
        assert "ALL CONSISTENT" in out
        assert "3 cells" in out

    def test_matrix_honours_seed(self, capsys):
        assert main(["--seed", "7", "--commands", "4", "--bus",
                     "wishbone", "matrix"]) == 0
        out = capsys.readouterr().out
        assert "swap matrix: seed 7" in out


class TestSeedPlumbing:
    def _output(self, argv, capsys):
        import re

        assert main(argv) == 0
        # Wall-clock timings are the only legitimate run-to-run delta.
        return re.sub(r"\d+\.\d+s", "<t>", capsys.readouterr().out)

    def test_flow_seed_is_reproducible(self, capsys):
        argv = ["--commands", "4", "--seed", "17", "flow"]
        assert self._output(argv, capsys) == self._output(argv, capsys)

    def test_flow_seed_changes_the_workload(self, capsys):
        base = ["--commands", "4"]
        assert self._output([*base, "--seed", "17", "flow"], capsys) \
            != self._output([*base, "--seed", "18", "flow"], capsys)

    def test_waveforms_seed_is_reproducible(self, capsys, tmp_path):
        def dump(name):
            path = str(tmp_path / name)
            assert main(["--seed", "23", "waveforms", "--vcd", path]) == 0
            capsys.readouterr()
            with open(path) as handle:
                return handle.read()

        assert dump("a.vcd") == dump("b.vcd")


class TestFaultCli:
    def test_fault_campaign_table(self, capsys):
        assert main(["fault", "--runs", "6", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "fault campaign 'demo-pci'" in out
        assert "detection coverage" in out

    def test_fault_campaign_json(self, capsys):
        import json

        assert main(["--seed", "11", "fault", "--runs", "6",
                     "--workers", "1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["campaign"] == "demo-pci"
        assert data["seed"] == 11
        assert len(data["outcomes"]) == 6

    def test_fault_seed_reproducible(self, capsys):
        def classifications():
            assert main(["--seed", "31", "fault", "--runs", "6",
                         "--workers", "1", "--json"]) == 0
            import json

            data = json.loads(capsys.readouterr().out)
            return [(o["run_id"], o["classification"], o["window"])
                    for o in data["outcomes"]]

        assert classifications() == classifications()

    def test_fault_lint_gate(self, capsys):
        assert main(["fault", "--runs", "6", "--workers", "1",
                     "--lint"]) == 0
        out = capsys.readouterr().out
        assert "detection coverage" in out
