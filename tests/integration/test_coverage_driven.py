"""Coverage-driven validation of the adopted test set.

The paper validates "with respect to the test set adopted"; functional
coverage makes that qualification measurable. These tests run a workload
designed to hit every interesting protocol corner and require the
covergroups to close.
"""

from repro.core import CommandType, generate_workload
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.kernel import MS
from repro.verify import CoverageCollector, OneHotChecker


def _make_collector():
    coverage = CoverageCollector("pci")
    coverage.add_point("kind", ["mem_read", "mem_write"])
    coverage.add_point("termination", ["completion", "retry",
                                       "disconnect_with_data",
                                       "master_abort"])
    coverage.add_point("burst_bucket", ["single", "short", "long"])
    return coverage


def _covered_run(commands, config=None, coverage=None):
    bundle = build_pci_platform(
        [commands], config or PciPlatformConfig(monitor_strict=False)
    )
    bundle.run(200 * MS)
    coverage = coverage or _make_collector()
    for transaction in bundle.monitor.transactions:
        coverage.sample("kind", transaction.command_name)
        coverage.sample("termination", transaction.terminated_by)
        words = transaction.word_count
        bucket = "single" if words <= 1 else ("short" if words <= 4 else "long")
        coverage.sample("burst_bucket", bucket)
    return bundle, coverage


class TestCoverageClosure:
    def test_full_corner_workload_closes_coverage(self):
        """Two regression runs close the covergroups together: a clean
        platform for long bursts, a pathological one for terminations."""
        coverage = _make_collector()
        clean_commands = list(generate_workload(seed=3, n_commands=10,
                                                address_span=0x200,
                                                max_burst=8))
        clean_commands.append(CommandType.read(0x100, count=8))  # long burst
        clean_commands.append(CommandType.read(0x8000_0000))     # master abort
        __, coverage = _covered_run(
            clean_commands, PciPlatformConfig(monitor_strict=False), coverage
        )
        corner_commands = [CommandType.write(0x0, list(range(1, 9))),
                           CommandType.read(0x0, count=8)]
        config = PciPlatformConfig(retry_count=1, disconnect_after=3,
                                   monitor_strict=False)
        __, coverage = _covered_run(corner_commands, config, coverage)
        coverage.require(goal=1.0)

    def test_happy_path_workload_leaves_holes(self):
        """A clean workload cannot cover the termination corners: the
        coverage model proves the test set's limits."""
        commands = [CommandType.write(0x0, [1]), CommandType.read(0x0)]
        __, coverage = _covered_run(commands)
        holes = coverage.point("termination").holes()
        assert "retry" in holes
        assert "master_abort" in holes

    def test_report_names_the_holes(self):
        commands = [CommandType.write(0x0, [1])]
        __, coverage = _covered_run(commands)
        text = coverage.report()
        assert "holes" in text


class TestChannelInvariants:
    def test_grant_lines_one_hot_post_synthesis(self):
        """At most one client of the synthesized channel is granted at
        any instant — checked live by an invariant monitor."""
        workloads = [
            generate_workload(seed=20 + i, n_commands=5,
                              address_base=0x400 * i, address_span=0x400)
            for i in range(3)
        ]
        bundle = build_pci_platform(workloads, synthesize=True)
        channel = bundle.synthesis.groups[0].channel
        checker = OneHotChecker(
            bundle.top, "gnt_checker", channel.gnt, strict=True
        )
        bundle.run(400 * MS)
        assert checker.checks > 0
        assert not checker.violations

    def test_done_implies_grant(self):
        """DONE is only ever asserted for the currently granted client."""
        workloads = [generate_workload(seed=33, n_commands=6,
                                       address_span=0x200)]
        bundle = build_pci_platform(workloads, synthesize=True)
        channel = bundle.synthesis.groups[0].channel
        violations = []

        def probe():
            while True:
                yield bundle.clock.clk.posedge
                for index in range(len(channel.clients)):
                    done = channel.done[index].read().to_int_default(0)
                    gnt = channel.gnt[index].read().to_int_default(0)
                    if done and not gnt:
                        violations.append(bundle.handle.sim.time)

        bundle.handle.sim.spawn(probe, "probe")
        bundle.run(200 * MS)
        assert not violations
