"""Integration tests mirroring the paper's experiments (see DESIGN.md)."""

import io


from repro.core import (
    CommandType,
    compare_refinement,
    generate_workload,
)
from repro.flow import (
    DesignFlow,
    PciPlatformConfig,
    build_functional_platform,
    build_pci_platform,
    standard_flow_builders,
)
from repro.hdl import Module
from repro.kernel import MS, NS, Simulator, Timeout
from repro.osss import GlobalObject, connect, guarded_method
from repro.trace import VcdTracer, WaveformCapture, render
from repro.verify import check_bus_transactions, check_traces


class TestFig1SharedBistable:
    """Figure 1: connected global objects share one state space."""

    def test_three_connected_bistables(self):
        class Bistable:
            def __init__(self):
                self.state = False

            @guarded_method()
            def set(self):
                self.state = True

            @guarded_method()
            def get_state(self):
                return self.state

        sim = Simulator()
        m1, m2 = Module(sim, "m1"), Module(sim, "m2")
        b1 = GlobalObject(m1, "bistable", Bistable)
        b2 = GlobalObject(m2, "bistable", Bistable)
        b_top = GlobalObject(m1, "top_bistable", Bistable)
        connect(b1, b2, b_top)
        observations = []

        def setter():
            yield Timeout(10 * NS)
            yield from b1.set()

        def getter():
            value = yield from b2.get_state()
            observations.append(("before", value))
            yield Timeout(20 * NS)
            value = yield from b2.get_state()
            observations.append(("after", value))

        sim.spawn(setter, "s")
        sim.spawn(getter, "g")
        sim.run(1 * MS)
        assert ("before", False) in observations
        assert ("after", True) in observations


class TestFig3Refinement:
    """Figure 3: interface swap preserves traces; TLM simulates cheaper."""

    def test_traces_identical_and_tlm_cheaper(self):
        workload = generate_workload(seed=77, n_commands=25,
                                     address_span=0x400, max_burst=4,
                                     partial_byte_enable_fraction=0.2)
        report = compare_refinement(
            lambda: build_functional_platform([workload]).handle,
            lambda: build_pci_platform([workload]).handle,
            max_time=50 * MS,
        )
        assert report.consistent
        assert report.delta_ratio > 2.0

    def test_swap_under_pathological_target_still_consistent(self):
        workload = generate_workload(seed=78, n_commands=10,
                                     address_span=0x100, max_burst=3)
        config = PciPlatformConfig(wait_states=2, retry_count=1,
                                   disconnect_after=2)
        report = compare_refinement(
            lambda: build_functional_platform([workload], config).handle,
            lambda: build_pci_platform([workload], config).handle,
            max_time=100 * MS,
        )
        assert report.consistent


class TestExpSynConsistency:
    """Section 3, steps 1-3: simulate, synthesize, re-simulate, compare."""

    def _run(self, synthesize):
        workload = generate_workload(seed=55, n_commands=15,
                                     address_span=0x200, max_burst=3)
        bundle = build_pci_platform([workload], synthesize=synthesize)
        result = bundle.run(50 * MS)
        return result, bundle

    def test_application_traces_consistent(self):
        pre, __ = self._run(False)
        post, ___ = self._run(True)
        check_traces(pre.traces, post.traces).require_consistent()

    def test_bus_transactions_consistent(self):
        __, bundle_pre = self._run(False)
        ___, bundle_post = self._run(True)
        report = check_bus_transactions(
            bundle_pre.monitor.signatures(),
            bundle_post.monitor.signatures(),
        )
        report.require_consistent()

    def test_post_synthesis_takes_longer_sim_time(self):
        pre, __ = self._run(False)
        post, ___ = self._run(True)
        # Cycle-accurate method calls cost clock cycles the behavioural
        # channel did not: simulated end time must grow.
        assert post.sim_time > pre.sim_time

    def test_full_design_flow(self):
        workloads = [generate_workload(seed=9, n_commands=10,
                                       address_span=0x100)]
        flow = DesignFlow({"name": "exp-syn"},
                          *standard_flow_builders(workloads))
        report = flow.run(50 * MS)
        assert report.succeeded


class TestFig4Waveforms:
    """Figure 4: post-synthesis simulation waveforms of the PCI handler."""

    def test_vcd_and_ascii_artifacts(self):
        commands = [
            CommandType.write(0x100, [0xDEADBEEF, 0x12345678]),
            CommandType.read(0x100, count=2),
        ]
        bundle = build_pci_platform([commands], synthesize=True)
        sim = bundle.handle.sim
        stream = io.StringIO()
        vcd = VcdTracer(stream)
        capture = WaveformCapture()
        watched = [bundle.clock.clk] + bundle.bus.shared_signals()
        vcd.add_signals(watched)
        capture.add_signals(watched)
        sim.add_tracer(vcd)
        sim.add_tracer(capture)
        bundle.run(10 * MS)
        vcd.close(sim.time)

        vcd_text = stream.getvalue()
        assert "$var wire 32" in vcd_text       # the AD bus
        assert "frame_n" in vcd_text
        assert vcd_text.count("#") > 10         # real activity

        art = render(capture, [s.name for s in watched], 0, 3000 * NS,
                     15 * NS)
        assert "#" in art and "_" in art and "~" in art
        # The write burst's data words crossed the AD bus.
        ad_values = [v for __, v in capture.changes("top.bus.ad")]
        assert any(v.is_fully_defined and v.to_int() == 0xDEADBEEF
                   for v in ad_values)
        assert any(v.is_fully_defined and v.to_int() == 0x12345678
                   for v in ad_values)

    def test_waveforms_show_the_handshake(self):
        commands = [CommandType.write(0x100, [0x1])]
        bundle = build_pci_platform([commands])
        sim = bundle.handle.sim
        capture = WaveformCapture()
        capture.add_signals([bundle.bus.frame_n, bundle.bus.irdy_n,
                             bundle.bus.trdy_n, bundle.bus.devsel_n])
        sim.add_tracer(capture)
        bundle.run(10 * MS)
        # FRAME# must have been asserted (driven low) at least once.
        frames = [v for __, v in capture.changes("top.bus.frame_n")]
        assert any(v.is_fully_defined and v.to_int() == 0 for v in frames)
        trdys = [v for __, v in capture.changes("top.bus.trdy_n")]
        assert any(v.is_fully_defined and v.to_int() == 0 for v in trdys)
