"""The committed fig4.vcd must be byte-reproducible.

The netlist analysis passes are read-only over the synthesized IR and
must not perturb simulation: regenerating the paper's Figure-4 waveform
dump with the benchmark recipe has to reproduce the committed file
byte for byte.
"""

import os

from repro.core import CommandType
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.kernel import MS
from repro.trace import VcdTracer

COMMITTED = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "fig4.vcd"
)

COMMANDS = [
    CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
    CommandType.read(0x100, count=3),
]


def test_fig4_vcd_is_byte_identical(tmp_path):
    fresh = str(tmp_path / "fig4.vcd")
    bundle = build_pci_platform(
        [COMMANDS], PciPlatformConfig(wait_states=1), synthesize=True
    )
    sim = bundle.handle.sim
    vcd = VcdTracer(fresh)
    vcd.add_signals([bundle.clock.clk] + bundle.bus.shared_signals())
    sim.add_tracer(vcd)
    bundle.run(10 * MS)
    vcd.close(sim.time)

    with open(COMMITTED, "rb") as handle:
        expected = handle.read()
    with open(fresh, "rb") as handle:
        actual = handle.read()
    assert actual == expected
