"""Integration tests for contention and arbitration (EXP-TIME / ABL-ARB)."""

import pytest

from repro.core import generate_workload
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.kernel import MS
from repro.osss import RoundRobinArbiter, StaticPriorityArbiter


def _contending_platform(n_apps, arbiter=None, synthesize=False, n_commands=6):
    workloads = [
        generate_workload(seed=100 + i, n_commands=n_commands,
                          address_base=0x400 * i, address_span=0x400,
                          max_burst=2)
        for i in range(n_apps)
    ]
    config = PciPlatformConfig(arbiter=arbiter)
    return build_pci_platform(workloads, config, synthesize=synthesize)


class TestContention:
    @pytest.mark.parametrize("n_apps", [1, 2, 4])
    def test_all_apps_complete_behaviourally(self, n_apps):
        bundle = _contending_platform(n_apps)
        result = bundle.run(100 * MS)
        assert result.transactions == 6 * n_apps
        assert not bundle.monitor.violations

    @pytest.mark.parametrize("n_apps", [1, 2, 4])
    def test_all_apps_complete_post_synthesis(self, n_apps):
        bundle = _contending_platform(n_apps, synthesize=True)
        result = bundle.run(200 * MS)
        assert result.transactions == 6 * n_apps

    def test_latency_grows_with_contention(self):
        """EXP-TIME shape: mean call latency grows with client count."""

        def mean_latency(n_apps):
            bundle = _contending_platform(n_apps, synthesize=True)
            bundle.run(200 * MS)
            apps = bundle.handle.applications
            total = sum(r.latency for a in apps for r in a.records)
            count = sum(len(a.records) for a in apps)
            return total / count

        assert mean_latency(4) > mean_latency(1)

    def test_channel_wait_time_reflects_contention(self):
        bundle = _contending_platform(4, synthesize=True)
        bundle.run(200 * MS)
        channel = bundle.synthesis.groups[0].channel
        waits = [record.wait_time for record in channel.call_log]
        assert max(waits) > 0


class TestArbitrationPolicies:
    def test_priority_app_finishes_first(self):
        arbiter = StaticPriorityArbiter({"top.app0.bus_port": 0},
                                        default_priority=10)
        bundle = _contending_platform(3, arbiter=arbiter, n_commands=8)
        bundle.run(200 * MS)
        apps = bundle.handle.applications
        finish = {a.name: max(r.complete_time for r in a.records) for a in apps}
        assert finish["app0"] <= min(finish["app1"], finish["app2"])

    def test_round_robin_fair_across_applications(self):
        bundle = _contending_platform(3, arbiter=RoundRobinArbiter(),
                                      n_commands=8)
        bundle.run(200 * MS)
        grants = bundle.interface.channel.stats.grants_by_client
        # Fairness judged over the application ports only: the protocol
        # dispatcher legitimately makes ~2x the calls (get + response).
        app_counts = [count for client, count in grants.items()
                      if ".app" in client]
        assert len(app_counts) == 3
        numerator = sum(app_counts) ** 2
        denominator = len(app_counts) * sum(c * c for c in app_counts)
        assert numerator / denominator > 0.9

    def test_policies_consistent_across_synthesis(self):
        """The arbitration policy survives lowering: each application's
        own trace is unchanged by synthesis, for every policy."""
        for arbiter_factory in (lambda: None, RoundRobinArbiter,
                                lambda: StaticPriorityArbiter({})):
            pre = _contending_platform(2, arbiter=arbiter_factory())
            pre_result = pre.run(200 * MS)
            post = _contending_platform(2, arbiter=arbiter_factory(),
                                        synthesize=True)
            post_result = post.run(400 * MS)
            assert pre_result.traces == post_result.traces
