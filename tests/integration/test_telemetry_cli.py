"""End-to-end CLI coverage for the telemetry surfaces.

``report --matrix`` scorecards, ``fault --telemetry/--flight-record/
--progress-json`` and the ``telemetry`` replay command, all through
``python -m repro``'s real argument parser.
"""

import json

from repro.__main__ import main


class TestReportMatrixCli:
    def test_scorecard_table(self, capsys):
        assert main([
            "--bus", "pci", "--commands", "4", "report", "--matrix",
        ]) == 0
        out = capsys.readouterr().out
        assert "communication scorecard: seed 55" in out
        assert "(reference)" in out
        for level in ("functional", "synthesized", "compiled"):
            assert level in out
        for column in ("util", "beats/cyc", "p50 ns", "p95 ns", "p99 ns"):
            assert column in out

    def test_scorecard_json(self, capsys):
        assert main([
            "--bus", "tlmgp", "--commands", "3",
            "report", "--matrix", "--format", "json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["seed"] == 55
        assert document["buses"] == ["tlmgp"]
        assert len(document["cells"]) == 3
        for cell in document["cells"]:
            assert cell["transactions"] > 0
            assert "p99" in cell["latency"]

    def test_scorecard_markdown(self, capsys):
        assert main([
            "--bus", "tlmgp", "--commands", "3",
            "report", "--matrix", "--format", "markdown",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("| bus | level |")
        assert all(line.startswith("|") for line in lines)


class TestFaultTelemetryCli:
    def test_telemetry_flag_adds_report_line(self, capsys):
        assert main([
            "--seed", "11", "fault", "--runs", "4", "--workers", "1",
            "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out

    def test_progress_json_mirror(self, capsys, tmp_path):
        path = tmp_path / "progress.json"
        assert main([
            "--seed", "11", "fault", "--runs", "4", "--workers", "1",
            "--progress-json", str(path),
        ]) == 0
        document = json.loads(path.read_text())
        assert document["done"] is True
        assert document["completed"] == 4
        assert sum(document["classifications"].values()) == 4

    def test_flight_record_then_replay(self, capsys, tmp_path):
        directory = tmp_path / "records"
        assert main([
            "--seed", "11", "fault", "--runs", "2", "--workers", "1",
            "--flight-record", str(directory),
        ]) == 0
        out = capsys.readouterr().out
        assert "flight records:" in out
        record = directory / "run000.jsonl"
        assert record.exists()

        chrome = tmp_path / "replay.trace.json"
        assert main([
            "telemetry", str(record), "--tail", "5",
            "--chrome", str(chrome),
        ]) == 0
        out = capsys.readouterr().out
        assert "== flight record ==" in out
        assert "run.end" in out
        payload = json.loads(chrome.read_text())
        assert "traceEvents" in payload

    def test_replay_rejects_missing_file(self, capsys, tmp_path):
        assert main([
            "telemetry", str(tmp_path / "does-not-exist.jsonl"),
        ]) == 2
