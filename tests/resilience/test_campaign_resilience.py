"""Self-healing campaigns: recovered outcomes, crash survival, parity
of serial and parallel execution."""

import json

import pytest

from repro.fault import (
    RECOVERED,
    WORKER_ERROR,
    CampaignSpec,
    FaultSpec,
    RunOutcome,
    RunSpec,
    demo_campaign_spec,
    execute_run,
    recovery_rate,
    recovery_stats,
    report_as_dict,
    run_campaign,
    run_golden,
)
from repro.kernel.simtime import NS, US


def _spec(**kwargs):
    kwargs.setdefault("platform", "pci")
    kwargs.setdefault("seed", 55)
    kwargs.setdefault("n_apps", 2)
    kwargs.setdefault("commands_per_app", 4)
    kwargs.setdefault("think_time", 240 * NS)
    kwargs.setdefault("resilience", True)
    faults = kwargs.pop(
        "faults", [FaultSpec("delayed_grant", "top.interface.channel")]
    )
    return CampaignSpec("resilience-test", faults, **kwargs)


class TestRecoveredClassification:
    def test_delayed_grant_outliving_the_policy_timeout_recovers(self):
        """The grant starves callers past the 20 us attempt deadline:
        the guard policy times out, retries, and completes once the
        window closes — damage fully absorbed at the call level."""
        spec = _spec()
        golden = run_golden(spec)
        run = RunSpec(
            0, "delayed_grant", "top.interface.channel",
            (300 * NS, 25 * US), {},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification == RECOVERED
        assert outcome.recovery_events >= 1
        assert outcome.recovery_latency > 0
        assert "recoveries absorbed" in outcome.detail

    def test_master_abort_replay_recovers_the_demo_run(self):
        """Seed-55 run 7 of the stock demo campaign: DEVSEL# stuck
        deasserted mid-run, the masters abort, the interface element
        replays once the wire heals — silent becomes recovered."""
        spec = demo_campaign_spec("pci", seed=55, runs=20)
        spec.resilience = True
        golden = run_golden(spec)
        run = RunSpec(
            7, "stuck_at", "top.bus.devsel_n",
            (881617522, 1545367522), {"value": 1},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification == RECOVERED
        assert outcome.recovery_latency > 0

    def test_without_resilience_the_same_run_stays_damaged(self):
        spec = _spec(resilience=False)
        golden = run_golden(spec)
        run = RunSpec(
            0, "delayed_grant", "top.interface.channel",
            (300 * NS, 25 * US), {},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification != RECOVERED
        assert outcome.recovery_events == 0


class TestSerialParallelParity:
    def test_serial_equals_parallel_with_resilience(self):
        spec = _spec(
            faults=[
                FaultSpec("stuck_at", "top.bus.devsel_n", repeats=2,
                          params={"value": 1}),
                FaultSpec("delayed_grant", "top.interface.channel",
                          repeats=2),
            ],
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert [o.to_dict() | {"wall_seconds": 0}
                for o in serial.outcomes] == \
               [o.to_dict() | {"wall_seconds": 0}
                for o in parallel.outcomes]

    def test_serial_equals_parallel_with_crashes(self):
        spec = _spec(
            faults=[FaultSpec("delayed_grant", "top.interface.channel",
                              repeats=4)],
            crash_run_ids=(1,),
        )
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert [(o.run_id, o.classification, o.detail)
                for o in serial.outcomes] == \
               [(o.run_id, o.classification, o.detail)
                for o in parallel.outcomes]


class TestSelfHealingRunner:
    def test_completed_runs_survive_a_worker_crash(self):
        spec = _spec(
            faults=[FaultSpec("delayed_grant", "top.interface.channel",
                              repeats=4)],
            crash_run_ids=(2,),
        )
        result = run_campaign(spec, workers=2)
        assert len(result.outcomes) == 4
        by_id = {o.run_id: o for o in result.outcomes}
        assert by_id[2].classification == WORKER_ERROR
        assert "worker process died" in by_id[2].detail
        for run_id in (0, 1, 3):
            assert by_id[run_id].classification != WORKER_ERROR
        assert result.pool_restarts >= 1

    def test_crashes_fail_the_cli_exit_code_path(self):
        spec = _spec(
            faults=[FaultSpec("delayed_grant", "top.interface.channel",
                              repeats=2)],
            crash_run_ids=(0,),
        )
        result = run_campaign(spec, workers=1)
        assert any(
            o.classification == WORKER_ERROR for o in result.outcomes
        )


class TestRecoveryReporting:
    def _outcomes(self):
        def outcome(run_id, classification, events=0, latency=0):
            return RunOutcome(
                run_id, "stuck_at", "top.bus.devsel_n", (0, 1),
                classification, recovery_events=events,
                recovery_latency=latency,
            )

        return [
            outcome(0, "recovered", events=2, latency=1000),
            outcome(1, "recovered", events=1, latency=3000),
            outcome(2, "detected"),
            outcome(3, "silent"),
            outcome(4, "benign"),
        ]

    def test_recovery_rate_counts_effective_faults_only(self):
        assert recovery_rate(self._outcomes()) == pytest.approx(0.5)
        assert recovery_rate([]) is None

    def test_recovery_stats_aggregate_latencies(self):
        stats = recovery_stats(self._outcomes())
        assert stats["recovery_events"] == 3
        assert stats["mean_recovery_latency"] == 2000
        assert stats["max_recovery_latency"] == 3000

    def test_report_dict_carries_resilience_fields(self):
        spec = _spec(
            faults=[FaultSpec("delayed_grant", "top.interface.channel")],
        )
        result = run_campaign(spec, workers=1)
        report = report_as_dict(result)
        assert report["resilience"] is True
        assert "recovered" in report["classifications"]
        assert "recovery" in report
        assert "pool_restarts" in report
        assert "recovery_rate" in report
        json.dumps(report)  # stays JSON-serialisable

    def test_outcome_dict_carries_recovery_fields(self):
        outcome = RunOutcome(
            0, "stuck_at", "top.bus.devsel_n", (0, 1), RECOVERED,
            recovery_events=1, recovery_latency=42,
        )
        data = outcome.to_dict()
        assert data["recovery_events"] == 1
        assert data["recovery_latency"] == 42


@pytest.mark.slow
class TestSeedFiftyFiveAcceptance:
    def test_demo_campaign_reclassifies_damage_as_recovered(self):
        spec = demo_campaign_spec("pci", seed=55, runs=20)
        spec.resilience = True
        result = run_campaign(spec, workers=2, max_runs=20)
        recovered = [
            o for o in result.outcomes if o.classification == RECOVERED
        ]
        assert recovered
        assert all(o.recovery_latency > 0 for o in recovered)

        baseline = demo_campaign_spec("pci", seed=55, runs=20)
        baseline_result = run_campaign(baseline, workers=2, max_runs=20)
        assert all(
            o.classification != RECOVERED for o in baseline_result.outcomes
        )
