"""In-sim run supervision: wall budget, stall detection, abort action."""

from repro.errors import GuardTimeoutError
from repro.hdl.clock import Clock
from repro.hdl.module import Module
from repro.kernel.process import Timeout
from repro.kernel.simtime import US
from repro.kernel.simulator import Simulator
from repro.osss.global_object import GlobalObject
from repro.osss.guarded_method import guarded_method
from repro.resilience import RunWatchdog, communication_progress


class _DeadCell:
    def __init__(self):
        self.ready = False

    @guarded_method(lambda self: self.ready)
    def take(self):
        return 1


class _Stuck(Module):
    """One caller blocked forever on a guard nothing opens."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.cell = GlobalObject(self, "cell", _DeadCell)
        self.error = None
        self.thread(self._caller, "caller")

    def _caller(self):
        try:
            yield from self.cell.call("take")
        except GuardTimeoutError as error:
            self.error = error


class _Busy(Module):
    """Healthy traffic: a call completes every couple of microseconds."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.cell = GlobalObject(self, "cell", _DeadCell)
        self.cell.state.ready = True
        self.served = 0
        self.thread(self._caller, "caller")

    def _caller(self):
        while True:
            yield from self.cell.call("take")
            self.served += 1
            yield Timeout(2 * US)


class TestWallBudget:
    def test_exhausted_budget_stops_the_run(self):
        sim = Simulator()
        Clock(sim, "clock", period=1 * US)
        watchdog = RunWatchdog(sim, wall_budget=1e-9, poll=10 * US)
        sim.run(1000 * US)
        assert watchdog.fired
        assert watchdog.reason == "wall"
        assert sim.time <= 10 * US  # stopped at the first tick

    def test_generous_budget_never_fires(self):
        sim = Simulator()
        Clock(sim, "clock", period=1 * US)
        watchdog = RunWatchdog(sim, wall_budget=300.0, poll=10 * US)
        sim.run(100 * US)
        assert not watchdog.fired
        assert sim.time == 100 * US


class TestStallDetection:
    def test_frozen_pending_traffic_fires_stall(self):
        sim = Simulator()
        _Stuck(sim, "top")
        watchdog = RunWatchdog(sim, poll=1 * US, stall_strikes=3)
        sim.run(1000 * US)
        assert watchdog.fired
        assert watchdog.reason == "stall"
        # strikes only start accumulating once the snapshot stabilises,
        # so the trigger lands a few polls in — far before the horizon.
        assert sim.time <= 10 * US

    def test_progressing_traffic_never_stalls(self):
        sim = Simulator()
        top = _Busy(sim, "top")
        watchdog = RunWatchdog(sim, poll=1 * US, stall_strikes=3)
        sim.run(50 * US)
        assert not watchdog.fired
        assert top.served > 10

    def test_zero_strikes_disables_stall_detection(self):
        sim = Simulator()
        _Stuck(sim, "top")
        watchdog = RunWatchdog(sim, poll=1 * US, stall_strikes=0)
        sim.run(50 * US)
        assert not watchdog.fired
        assert sim.time == 50 * US

    def test_idle_platform_is_not_a_stall(self):
        """No pending calls: a quiet bus must never trip the watchdog."""
        sim = Simulator()
        Clock(sim, "clock", period=1 * US)
        watchdog = RunWatchdog(sim, poll=1 * US, stall_strikes=2)
        sim.run(50 * US)
        assert not watchdog.fired


class TestAbortAction:
    def test_abort_surfaces_guard_timeout_in_caller(self):
        sim = Simulator()
        top = _Stuck(sim, "top")
        watchdog = RunWatchdog(
            sim, poll=1 * US, stall_strikes=3, action="abort"
        )
        sim.run(50 * US)
        assert watchdog.fired
        assert watchdog.aborted_calls == 1
        assert isinstance(top.error, GuardTimeoutError)
        assert "watchdog aborted" in str(top.error)

    def test_cancel_disarms(self):
        sim = Simulator()
        _Stuck(sim, "top")
        watchdog = RunWatchdog(sim, poll=1 * US, stall_strikes=1)
        watchdog.cancel()
        sim.run(50 * US)
        assert not watchdog.fired


class TestProgressSnapshot:
    def test_counts_submissions_completions_and_pending(self):
        sim = Simulator()
        _Stuck(sim, "top")
        assert communication_progress(sim) == (0, 0, 0)
        sim.run(1 * US)
        submitted, completed, pending = communication_progress(sim)
        assert submitted == 1
        assert completed == 0
        assert pending == 1
