"""Kernel checkpoint/restore and replay-based rollback."""

import io

import pytest

from repro.core.command import CommandType
from repro.errors import CheckpointError
from repro.flow.platforms import PciPlatformConfig, build_pci_platform
from repro.hdl.module import Module
from repro.kernel.process import Timeout
from repro.kernel.simtime import MS, NS, US
from repro.kernel.simulator import Simulator
from repro.osss.global_object import GlobalObject
from repro.osss.guarded_method import guarded_method
from repro.resilience import ReplayCheckpointer, capture, restore
from repro.trace.vcd import VcdTracer


class _Accumulator:
    def __init__(self):
        self.total = 0

    def add(self, amount):
        self.total += amount
        return self.total


class _Counter(Module):
    """A register that ticks every microsecond plus a shared total."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.reg = self.signal("reg", width=8, init=0)
        self.acc = GlobalObject(self, "acc", _Accumulator)
        self.thread(self._tick, "tick")

    def _tick(self):
        value = 0
        while True:
            yield Timeout(1 * US)
            value += 1
            self.reg.write(value)
            yield from self.acc.call("add", 1)
            # Idle gap: every microsecond boundary is quiescent.
            yield Timeout(1 * NS)


def _build():
    sim = Simulator()
    top = _Counter(sim, "top")
    return sim, top


class TestCaptureRestore:
    def test_roundtrip_restores_signals_and_shared_state(self):
        sim, top = _build()
        sim.run(int(5.5 * US))
        checkpoint = sim.checkpoint()
        assert checkpoint.time == int(5.5 * US)
        sim.run(4 * US)  # keep mutating past the snapshot
        assert top.acc.state.total == 9
        sim.restore(checkpoint)
        assert top.acc.state.total == 5
        assert top.reg.read().to_int() == 5

    def test_identical_runs_produce_equal_checkpoints(self):
        a_sim, __ = _build()
        b_sim, __ = _build()
        a_sim.run(int(7.5 * US))
        b_sim.run(int(7.5 * US))
        assert capture(a_sim) == capture(b_sim)
        assert capture(a_sim).signature() == capture(b_sim).signature()

    def test_capture_refuses_in_flight_guarded_calls(self):
        class _DeadCell:
            def __init__(self):
                self.ready = False

            @guarded_method(lambda self: self.ready)
            def take(self):
                return 1

        sim = Simulator()

        class _Stuck(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.cell = GlobalObject(self, "cell", _DeadCell)
                self.thread(self._caller, "caller")

            def _caller(self):
                yield from self.cell.call("take")

        _Stuck(sim, "top")
        sim.run(1 * US)
        with pytest.raises(CheckpointError, match="in-flight"):
            capture(sim)

    def test_restored_state_replays_the_same_changes(self):
        """State-level restore at a quiescent point: a design whose
        whole state lives in signals and shared objects evolves through
        the same change sequence after restore as it did the first
        time (relative to the restore point — program counters are not
        rewound, absolute time keeps running)."""

        class _SignalCounter(Module):
            """No generator-local state: next value is read from reg.
            The exact 1 us period keeps the process phase-aligned across
            the restore point (program counters are not rewound)."""

            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.reg = self.signal("reg", width=8, init=0)
                self.thread(self._tick, "tick")

            def _tick(self):
                while True:
                    yield Timeout(1 * US)
                    self.reg.write(self.reg.read().to_int() + 1)

        class _Recorder:
            def __init__(self, origin):
                self.origin = origin
                self.changes = []

            def record_change(self, time, signal, value):
                self.changes.append((time - self.origin, str(value)))

        sim = Simulator()
        _SignalCounter(sim, "top")
        sim.run(int(5.5 * US))
        checkpoint = sim.checkpoint()

        first = _Recorder(sim.time)
        sim.add_tracer(first)
        sim.run(3 * US)
        sim.remove_tracer(first)

        sim.restore(checkpoint)
        second = _Recorder(sim.time)
        sim.add_tracer(second)
        sim.run(3 * US)
        sim.remove_tracer(second)

        assert first.changes
        assert first.changes == second.changes

    def test_restore_rejects_foreign_hierarchy(self):
        sim, __ = _build()
        sim.run(int(2.5 * US))
        checkpoint = capture(sim)
        other = Simulator()

        class _Different(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.other_reg = self.signal("other_reg", width=8, init=0)

        _Different(other, "top")
        with pytest.raises(CheckpointError, match="missing"):
            restore(other, checkpoint)


_COMMANDS = [
    CommandType.write(0x40, [11, 22, 33]),
    CommandType.read(0x40, count=3),
]


def _platform_builder():
    return build_pci_platform([list(_COMMANDS)], PciPlatformConfig())


class TestReplayCheckpointer:
    def test_rollback_reproduces_the_baseline(self):
        checkpointer = ReplayCheckpointer(_platform_builder)
        __, baseline = checkpointer.baseline(2 * US)
        replayed = checkpointer.rollback()
        assert capture(replayed.handle.sim, strict=False) == baseline

    def test_rollback_reproduces_the_vcd(self):
        """Replay-based restore + re-run dumps the identical waveform:
        every build gets its own tracer and the baseline and replayed
        VCD streams must match byte for byte."""
        captures = []

        def builder():
            bundle = _platform_builder()
            stream = io.StringIO()
            tracer = VcdTracer(stream)
            tracer.add_signals(
                [bundle.clock.clk] + bundle.bus.shared_signals()
            )
            bundle.handle.sim.add_tracer(tracer)
            captures.append((stream, tracer))
            return bundle

        checkpointer = ReplayCheckpointer(builder)
        baseline_platform, __ = checkpointer.baseline(2 * US)
        replayed = checkpointer.rollback()
        (a_stream, a_tracer), (b_stream, b_tracer) = captures
        a_tracer.close(baseline_platform.handle.sim.time)
        b_tracer.close(replayed.handle.sim.time)
        assert a_stream.getvalue() == b_stream.getvalue()

    def test_rollback_before_baseline_raises(self):
        with pytest.raises(CheckpointError, match="baseline"):
            ReplayCheckpointer(_platform_builder).rollback()

    def test_nondeterministic_builder_is_rejected(self):
        builds = []

        def flaky_builder():
            # Second build carries different traffic: replay diverges.
            builds.append(None)
            commands = (
                list(_COMMANDS)
                if len(builds) == 1
                else [CommandType.write(0x40, [99])]
            )
            return build_pci_platform([commands], PciPlatformConfig())

        checkpointer = ReplayCheckpointer(flaky_builder)
        checkpointer.baseline(2 * US)
        with pytest.raises(CheckpointError, match="not deterministic"):
            checkpointer.rollback()


def _vcd_dump(config):
    bundle = build_pci_platform([list(_COMMANDS)], config)
    sim = bundle.handle.sim
    stream = io.StringIO()
    tracer = VcdTracer(stream)
    tracer.add_signals([bundle.clock.clk] + bundle.bus.shared_signals())
    sim.add_tracer(tracer)
    bundle.run(10 * MS)
    tracer.close(sim.time)
    return stream.getvalue()


class TestVcdDeterminism:
    def test_recovery_off_platform_reproduces_vcd_exactly(self):
        """Two fresh builds with resilience off dump identical VCDs —
        the recovery machinery's off path must not perturb a single
        signal edge (the fig4 byte-stability gate in miniature)."""
        assert _vcd_dump(PciPlatformConfig()) == _vcd_dump(
            PciPlatformConfig()
        )
