"""Protocol-level transaction replay inside the interface elements.

The paper's refinement claim, exploited for robustness: recovery lives
in the swappable bus-interface IP, so the same unmodified applications
survive wire-level damage at the pin-accurate level, after communication
synthesis, and behind a different bus from the library.
"""

import pytest

from repro.core.command import CommandType
from repro.fault.models import make_fault
from repro.flow.platforms import (
    PciPlatformConfig,
    build_pci_platform,
    build_wishbone_platform,
)
from repro.kernel.simtime import MS, NS, US
from repro.resilience import InterfaceRecovery, RecoveryLog, ResilienceConfig

# Read data with odd parity: a PAR wire stuck low is then a guaranteed
# PERR#-style mismatch on every read data phase inside the window.
_COMMANDS = [
    CommandType.write(0x100, [1, 2, 3]),
    CommandType.read(0x100, count=3),
    CommandType.read(0x100, count=2),
]

#: Protocol replay only — no call-level policy, so the recovery we
#: observe is attributable to the interface element alone.
_REPLAY_ONLY = ResilienceConfig(
    guard_policy=None,
    interface=InterfaceRecovery(
        replay_limit=3, backoff=2 * US, check_parity=True
    ),
)


def _config(resilience=None):
    # Campaign conditions: the strict monitor would raise on the very
    # parity violation the replay is meant to absorb.
    return PciPlatformConfig(monitor_strict=False, resilience=resilience)


def _run_pci(synthesize, fault_spec=None, resilience=None):
    bundle = build_pci_platform(
        [list(_COMMANDS)], _config(resilience), synthesize=synthesize
    )
    log = RecoveryLog().attach(bundle.handle.sim.probes)
    fault = None
    if fault_spec is not None:
        kind, path, window, params = fault_spec
        fault = make_fault(kind, path, window, **params)
        fault.arm(bundle.handle.sim)
    result = bundle.run(10 * MS)
    return bundle, result, log, fault


#: PAR stuck low while read data is on the wire. The master regenerates
#: the expected parity from AD/CBE# one cycle behind the data phase, so
#: the mismatch is detected PERR#-style and the whole operation replays.
_PARITY_FAULT = ("stuck_at", "top.bus.par", (200 * NS, 1 * US), {"value": 0})


class TestPciParityReplay:
    @pytest.mark.parametrize("synthesize", [False, True],
                             ids=["pin_accurate", "post_synthesis"])
    def test_parity_mismatch_replays_to_golden_behaviour(self, synthesize):
        golden_bundle, golden, __, __ = _run_pci(synthesize)
        bundle, result, log, fault = _run_pci(
            synthesize, _PARITY_FAULT, _REPLAY_ONLY
        )
        assert fault.activations > 0
        interface = bundle.interface
        assert interface.master.parity_errors_seen >= 1
        assert interface.operations_replayed >= 1
        assert interface.operations_recovered >= 1
        assert log.retries >= 1
        assert log.recoveries >= 1
        episodes = [e for e in log.episodes() if e.outcome == "recovered"]
        assert episodes and all(e.latency > 0 for e in episodes)
        # The applications never noticed: same traces as the clean run.
        assert result.traces == golden.traces
        for app in bundle.handle.applications:
            assert app.finished

    def test_without_recovery_the_same_fault_corrupts_silently(self):
        golden_bundle, golden, __, __ = _run_pci(False)
        bundle, result, log, fault = _run_pci(False, _PARITY_FAULT)
        assert fault.activations > 0
        assert bundle.interface.operations_replayed == 0
        assert len(log) == 0
        # PAR stuck low corrupts nothing by itself (it is a check bit),
        # and with parity checking off nobody even looks at it.
        assert bundle.interface.master.parity_errors_seen == 0
        assert result.traces == golden.traces

    def test_exhausted_replays_give_up_and_surface_the_failure(self):
        # A fault window far longer than the whole replay budget: every
        # re-issue fails again and the episode ends in a giveup.
        fault_spec = ("stuck_at", "top.bus.par", (200 * NS, 9 * MS),
                      {"value": 0})
        bundle, result, log, fault = _run_pci(False, fault_spec, _REPLAY_ONLY)
        assert log.giveups >= 1
        episodes = [e for e in log.episodes() if e.outcome == "giveup"]
        assert episodes
        assert episodes[0].attempts == _REPLAY_ONLY.interface.replay_limit


class TestWishboneReplay:
    def test_bus_error_replays_to_golden_behaviour(self):
        config = PciPlatformConfig(monitor_strict=False)
        golden = build_wishbone_platform([list(_COMMANDS)], config)
        golden_result = golden.run(10 * MS)

        damaged_config = PciPlatformConfig(
            monitor_strict=False,
            resilience=ResilienceConfig(
                guard_policy=None,
                interface=InterfaceRecovery(replay_limit=3, backoff=2 * US),
            ),
        )
        bundle = build_wishbone_platform([list(_COMMANDS)], damaged_config)
        log = RecoveryLog().attach(bundle.handle.sim.probes)
        # ERR asserted over a short window: in-flight operations abort
        # with a bus_error status and replay once the wire clears.
        fault = make_fault(
            "glitch", "top.bus.err", (100 * NS, 400 * NS), value=1
        )
        fault.arm(bundle.handle.sim)
        result = bundle.run(10 * MS)
        assert fault.activations > 0
        assert bundle.interface.operations_replayed >= 1
        assert bundle.interface.operations_recovered >= 1
        assert log.recoveries >= 1
        assert result.traces == golden_result.traces

    def test_clean_wishbone_run_replays_nothing(self):
        config = PciPlatformConfig(
            monitor_strict=False,
            resilience=ResilienceConfig(
                guard_policy=None, interface=InterfaceRecovery()
            ),
        )
        bundle = build_wishbone_platform([list(_COMMANDS)], config)
        log = RecoveryLog().attach(bundle.handle.sim.probes)
        bundle.run(10 * MS)
        assert bundle.interface.operations_replayed == 0
        assert len(log) == 0


class TestRecoveryAccounting:
    def test_replay_counters_start_at_zero(self):
        bundle, __, __, __ = _run_pci(False)
        assert bundle.interface.recovery is None
        assert bundle.interface.operations_replayed == 0
        assert bundle.interface.operations_recovered == 0

    def test_enable_recovery_arms_parity_checking(self):
        bundle = build_pci_platform([list(_COMMANDS)], _config())
        assert bundle.interface.master.check_parity is False
        bundle.interface.enable_recovery(
            InterfaceRecovery(check_parity=True)
        )
        assert bundle.interface.master.check_parity is True
        assert bundle.interface.recovery is not None
