"""RetryPolicy mechanics and guarded-call recovery behaviour."""

import pytest

from repro.errors import GuardTimeoutError, SimulationError
from repro.hdl.module import Module
from repro.kernel.process import Timeout
from repro.kernel.simtime import NS, US
from repro.kernel.simulator import Simulator
from repro.osss.global_object import GlobalObject
from repro.osss.guarded_method import guarded_method
from repro.resilience import (
    RecoveryLog,
    RetryPolicy,
    attach_retry_policy,
    default_guard_policy,
)


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            RetryPolicy(timeout=0)
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(backoff=-1)
        with pytest.raises(SimulationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(jitter=1.0)

    def test_attach_rejects_policy_free_objects(self):
        with pytest.raises(SimulationError):
            attach_retry_policy(object(), RetryPolicy())


class TestBackoffSchedule:
    def test_schedule_is_reproducible_per_seed(self):
        a = RetryPolicy(seed=55)
        b = RetryPolicy(seed=55)
        keys = ("top.app0", "put_command", 1_234_000)
        assert a.backoff_schedule(*keys) == b.backoff_schedule(*keys)

    def test_schedule_differs_across_seeds_and_identities(self):
        policy = RetryPolicy(seed=55)
        other_seed = RetryPolicy(seed=56)
        keys = ("top.app0", "put_command", 1_234_000)
        assert policy.backoff_schedule(*keys) != other_seed.backoff_schedule(
            *keys
        )
        assert policy.backoff_schedule(*keys) != policy.backoff_schedule(
            "top.app1", "put_command", 1_234_000
        )

    def test_jitter_free_schedule_is_exact_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, backoff=1 * US, multiplier=2.0,
            max_backoff=3 * US, jitter=0.0,
        )
        assert policy.backoff_schedule("x") == [
            1 * US, 2 * US, 3 * US, 3 * US  # capped at max_backoff
        ]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(
            max_attempts=4, backoff=1 * US, multiplier=1.0, jitter=0.1,
        )
        for delay in policy.backoff_schedule("id"):
            assert 0.9 * US <= delay <= 1.1 * US

    def test_default_guard_policy_threads_the_seed(self):
        assert default_guard_policy(55).seed == 55
        schedule = default_guard_policy(55).backoff_schedule("k")
        assert schedule == default_guard_policy(55).backoff_schedule("k")
        assert schedule != default_guard_policy(56).backoff_schedule("k")


class _Cell:
    """take() blocks until armed; executions are counted."""

    def __init__(self):
        self.ready = False
        self.executions = 0

    @guarded_method(lambda self: self.ready)
    def take(self):
        self.executions += 1
        return self.executions

    def arm(self):
        self.ready = True


class _Host(Module):
    def __init__(self, parent, name, arm_after=None):
        super().__init__(parent, name)
        self.cell = GlobalObject(self, "cell", _Cell)
        self.arm_after = arm_after
        self.result = None
        self.error = None
        self.thread(self._caller, "caller")
        if arm_after is not None:
            self.thread(self._armer, "armer")

    def _caller(self):
        try:
            self.result = yield from self.cell.call("take")
        except GuardTimeoutError as error:
            self.error = error

    def _armer(self):
        yield Timeout(self.arm_after)
        yield from self.cell.call("arm")


class TestGuardedCallPolicy:
    def _build(self, arm_after, policy):
        sim = Simulator()
        host = _Host(sim, "top", arm_after=arm_after)
        attach_retry_policy(host.cell, policy, ("take",))
        log = RecoveryLog().attach(sim.probes)
        return sim, host, log

    def test_dead_guard_surfaces_guard_timeout(self):
        policy = RetryPolicy(
            timeout=1 * US, max_attempts=3, backoff=100 * NS, jitter=0.0,
        )
        sim, host, log = self._build(None, policy)
        sim.run(50 * US)
        assert host.result is None
        assert isinstance(host.error, GuardTimeoutError)
        assert "3 attempts" in str(host.error)
        # One timeout per attempt, a retry before each re-submission,
        # one final giveup — and nothing recovered.
        assert log.timeouts == 3
        assert log.retries == 2
        assert log.giveups == 1
        assert log.recoveries == 0
        (episode,) = log.episodes()
        assert episode.outcome == "giveup"
        assert episode.attempts == 3

    def test_late_guard_recovers_without_double_execution(self):
        policy = RetryPolicy(
            timeout=1 * US, max_attempts=4, backoff=100 * NS, jitter=0.0,
        )
        # Armed after the first attempt's deadline but well inside the
        # retry budget: attempt >= 2 succeeds.
        sim, host, log = self._build(int(1.5 * US), policy)
        sim.run(50 * US)
        assert host.error is None
        assert host.result == 1
        assert host.cell.state.executions == 1  # cancelled attempts never ran
        assert log.timeouts >= 1
        assert log.recoveries == 1
        (episode,) = log.episodes()
        assert episode.outcome == "recovered"
        assert episode.latency is not None and episode.latency > 0

    def test_immediate_success_emits_no_probes(self):
        policy = RetryPolicy(timeout=1 * US, max_attempts=3)
        sim = Simulator()
        host = _Host(sim, "top", arm_after=None)
        host.cell.state.ready = True
        attach_retry_policy(host.cell, policy, ("take",))
        log = RecoveryLog().attach(sim.probes)
        sim.run(10 * US)
        assert host.result == 1
        assert len(log) == 0

    def test_schedule_identical_across_identical_runs(self):
        """Same seed, same design: the recovery timeline reproduces."""
        policy = RetryPolicy(
            timeout=1 * US, max_attempts=3, backoff=200 * NS,
            jitter=0.3, seed=55,
        )
        timelines = []
        for __ in range(2):
            sim, host, log = self._build(None, policy)
            sim.run(50 * US)
            timelines.append([(e.kind, e.time) for e in log.events])
        assert timelines[0] == timelines[1]
