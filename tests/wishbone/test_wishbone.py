"""Tests for the Wishbone substrate and its library interface element."""

import pytest

from repro.core import CommandType, default_library, generate_workload
from repro.core import expected_memory_image
from repro.errors import ProtocolError
from repro.flow import (
    PciPlatformConfig,
    build_functional_platform,
    build_pci_platform,
    build_wishbone_platform,
)
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.tlm import Memory
from repro.verify import check_memory_image
from repro.wishbone import (
    WishboneBus,
    WishboneBusInterface,
    WishboneFunctionalInterface,
    WishboneMaster,
    WishboneMonitor,
    WishboneOperation,
    WishboneSlave,
)


class WbBench(Module):
    def __init__(self, parent, name, ack_latency=0, mem_size=0x1000):
        super().__init__(parent, name)
        self.clock = Clock(self, "clock", period=10 * NS)
        self.bus = WishboneBus(self, "bus")
        self.memory = Memory(mem_size)
        self.slave = WishboneSlave(
            self, "slave", self.bus, self.clock.clk, self.memory,
            base=0x0, size=mem_size, ack_latency=ack_latency,
        )
        self.monitor = WishboneMonitor(self, "mon", self.bus, self.clock.clk)
        self.master = WishboneMaster(self, "master", self.bus, self.clock.clk)


def _run_ops(ops, **tb_kwargs):
    sim = Simulator()
    tb = WbBench(sim, "tb", **tb_kwargs)

    def stim():
        for op in ops:
            yield from tb.master.transact(op)
        sim.stop()

    sim.spawn(stim, "stim")
    sim.run(10 * MS)
    return tb


class TestOperation:
    def test_factories(self):
        read = WishboneOperation.read(0x10, count=2)
        assert not read.is_write and read.count == 2
        write = WishboneOperation.write(0x10, 5)
        assert write.is_write and write.data == [5]

    def test_validation(self):
        with pytest.raises(ProtocolError):
            WishboneOperation.read(0x2)
        with pytest.raises(ProtocolError):
            WishboneOperation.write(0x0, [])
        with pytest.raises(ProtocolError):
            WishboneOperation.read(0x0, count=0)
        with pytest.raises(ProtocolError):
            WishboneOperation.read(0x0, sel=0x100)


class TestPinLevel:
    def test_write_read_roundtrip(self):
        ops = [
            WishboneOperation.write(0x40, [0xAA, 0xBB, 0xCC]),
            WishboneOperation.read(0x40, count=3),
        ]
        tb = _run_ops(ops)
        assert ops[0].status == "ok"
        assert ops[1].data == [0xAA, 0xBB, 0xCC]
        assert not tb.monitor.violations

    def test_sel_byte_lanes(self):
        ops = [
            WishboneOperation.write(0x0, [0xFFFFFFFF]),
            WishboneOperation.write(0x0, [0x0], sel=0x3),
            WishboneOperation.read(0x0),
        ]
        tb = _run_ops(ops)
        assert ops[2].data == [0xFFFF0000]

    def test_ack_latency_stretches(self):
        fast_op = WishboneOperation.write(0x0, [1])
        _run_ops([fast_op])
        slow_op = WishboneOperation.write(0x0, [1])
        _run_ops([slow_op], ack_latency=4)
        fast_cycles = fast_op.complete_time - fast_op.enqueue_time
        slow_cycles = slow_op.complete_time - slow_op.enqueue_time
        assert slow_cycles > fast_cycles

    def test_unmapped_address_times_out(self):
        op = WishboneOperation.read(0x8000_0000)
        tb = _run_ops([op])
        assert op.status == "timeout"
        assert tb.master.timeouts_seen == 1

    def test_slave_error_propagates(self):
        # ROM region at offset beyond memory -> ProtocolError -> ERR.
        op = WishboneOperation.write(0x1000 - 4, [1])
        tb = _run_ops([op], mem_size=0x1000)
        assert op.status == "ok"  # last valid word is fine
        bad = WishboneOperation.write(0x0, [1], sel=0xF)
        # Force an internal store error by using a ROM.
        from repro.tlm import RomMemory

        sim = Simulator()
        tb = WbBench(sim, "tb")
        tb.slave.store = RomMemory([0], size_bytes=0x1000)

        def stim():
            yield from tb.master.transact(bad)
            sim.stop()

        sim.spawn(stim, "stim")
        sim.run(10 * MS)
        assert bad.status == "bus_error"
        assert tb.slave.errors_signalled == 1
        transfers = tb.monitor.transfers
        assert transfers and transfers[-1].terminated_by == "err"

    def test_monitor_records_transfers(self):
        ops = [
            WishboneOperation.write(0x10, [7]),
            WishboneOperation.read(0x10),
        ]
        tb = _run_ops(ops)
        signatures = tb.monitor.signatures()
        assert (0x10, True, 7, 0xF, "ack") in signatures
        assert (0x10, False, 7, 0xF, "ack") in signatures


class TestLibraryElement:
    def test_in_default_library(self):
        library = default_library()
        assert library.lookup("wishbone", "pin_accurate") is WishboneBusInterface
        assert (
            library.lookup("wishbone", "functional")
            is WishboneFunctionalInterface
        )
        assert library.abstractions_for("wishbone") == [
            "functional", "pin_accurate",
        ]

    def test_golden_memory_image(self):
        workload = generate_workload(seed=44, n_commands=25,
                                     address_span=0x200, max_burst=4,
                                     partial_byte_enable_fraction=0.3)
        bundle = build_wishbone_platform([workload])
        bundle.run(100 * MS)
        golden = expected_memory_image(workload, 0x200 // 4)
        check_memory_image(bundle.memory, golden)
        assert not bundle.monitor.violations

    def test_peripheral_reachable(self):
        commands = [
            CommandType.write(0x0001_0008, 0x42),
            CommandType.read(0x0001_0008, count=1),
        ]
        bundle = build_wishbone_platform([commands])
        bundle.run(10 * MS)
        app = bundle.handle.applications[0]
        assert app.records[1].response.data == [0x42 ^ 0xFFFFFFFF]


class TestCrossBusPortability:
    """The methodology's punchline: the application never changes."""

    def test_same_traces_on_three_platforms(self):
        workload = generate_workload(seed=4, n_commands=15,
                                     address_span=0x200, max_burst=3)
        functional = build_functional_platform([workload]).run(100 * MS)
        pci = build_pci_platform([workload]).run(100 * MS)
        wishbone = build_wishbone_platform([workload]).run(100 * MS)
        assert functional.traces == pci.traces == wishbone.traces

    def test_wishbone_synthesis_consistency(self):
        workload = generate_workload(seed=5, n_commands=10,
                                     address_span=0x100, max_burst=2)
        pre = build_wishbone_platform([workload]).run(100 * MS)
        post = build_wishbone_platform([workload], synthesize=True).run(
            200 * MS
        )
        assert pre.traces == post.traces

    def test_wait_states_dont_change_traces(self):
        workload = generate_workload(seed=6, n_commands=10,
                                     address_span=0x100)
        fast = build_wishbone_platform([workload]).run(100 * MS)
        slow = build_wishbone_platform(
            [workload], PciPlatformConfig(wait_states=3)
        ).run(200 * MS)
        assert fast.traces == slow.traces
        assert slow.sim_time > fast.sim_time
