"""Tests for the DOT FSM export."""

from repro.synthesis import (
    Fsm,
    Net,
    UnOp,
    build_channel_ir,
    emit_fsm_dot,
    emit_module_dot,
)


class TestFsmDot:
    def test_basic_structure(self):
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        go = Net("go", 1)
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("RUN", UnOp("~", go.ref()), "IDLE")
        text = emit_fsm_dot(fsm)
        assert text.startswith("digraph ctrl {")
        assert "IDLE -> RUN" in text
        assert "RUN -> IDLE" in text
        assert text.rstrip().endswith("}")

    def test_reset_state_marked(self):
        fsm = Fsm("ctrl", ["A", "B"], "A")
        text = emit_fsm_dot(fsm)
        assert "A [shape=doublecircle]" in text

    def test_edge_labels_cleaned(self):
        fsm = Fsm("ctrl", ["A", "B"], "A")
        go = Net("go_signal", 1)
        fsm.add_transition("A", go.ref(), "B")
        text = emit_fsm_dot(fsm)
        assert "go_signal" in text
        assert "Ref(" not in text

    def test_unconditional_edge_has_no_label(self):
        fsm = Fsm("ctrl", ["A", "B"], "A")
        fsm.add_transition("A", None, "B")
        text = emit_fsm_dot(fsm)
        assert "A -> B;" in text


class TestModuleDot:
    def test_channel_fsm_exported(self):
        module = build_channel_ir("chan", 2, ["m0"], "fcfs")
        text = emit_module_dot(module)
        assert "digraph chan_chan_server" in text
        assert "IDLE -> EXEC" in text
        assert "EXEC -> DONE" in text
        assert "DONE -> IDLE" in text

    def test_module_without_fsm(self):
        from repro.synthesis import RtlModule

        assert emit_module_dot(RtlModule("empty")) == ""
