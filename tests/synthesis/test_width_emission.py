"""Width plumbing: IfaceParams -> netlist -> emitted HDL -> codegen.

The library promise needs *generic* elements, so the elaboration width
must flow through every backend: the channel netlist's behavioural data
buses, the Verilog/VHDL the emitters print, and the masking constants
the compiled fast-sim backend bakes into its generated Python.
"""

import pytest

from repro.compile import compile_module
from repro.core import expected_memory_image, generate_workload
from repro.flow import PciPlatformConfig, build_platform
from repro.iface import IfaceParams
from repro.kernel import MS
from repro.synthesis import build_channel_ir, emit_verilog, emit_vhdl
from repro.synthesis.tool import SynthesisConfig
from repro.verify import check_memory_image


def _channel(data_width):
    return build_channel_ir(
        "chan", 2, ["put_command", "get_command"], "round_robin",
        data_width=data_width,
    )


class TestNetlistWidths:
    @pytest.mark.parametrize("width", [16, 64])
    def test_data_buses_track_width(self, width):
        module = _channel(width)
        ports = {p.name: p.width for p in module.ports}
        assert ports["arg_data"] == width
        assert ports["ret_data"] == width


class TestVerilogEmission:
    @pytest.mark.parametrize("width", [16, 64])
    def test_port_ranges(self, width):
        text = emit_verilog(_channel(width))
        assert f"input  wire [{width - 1}:0] arg_data" in text
        assert f"output wire [{width - 1}:0] ret_data" in text

    def test_sixteen_and_sixtyfour_differ_only_in_widths(self):
        narrow = emit_verilog(_channel(16))
        wide = emit_verilog(_channel(64))
        assert narrow != wide
        assert narrow.replace("[15:0]", "[63:0]").replace(
            "16'", "64'"
        ) == wide


class TestVhdlEmission:
    @pytest.mark.parametrize("width", [16, 64])
    def test_port_ranges(self, width):
        text = emit_vhdl(_channel(width))
        assert (
            f"arg_data : in  std_logic_vector({width - 1} downto 0)"
            in text
        )
        assert (
            f"ret_data : out std_logic_vector({width - 1} downto 0)"
            in text
        )


class TestCompiledMasking:
    @pytest.mark.parametrize("width,mask", [(16, 0xFFFF),
                                            (64, 0xFFFFFFFFFFFFFFFF)])
    def test_generated_source_masks_to_width(self, width, mask):
        netlist = compile_module(_channel(width))
        assert f"& {mask:#x}" in netlist.source

    def test_wide_value_wraps(self):
        # Drive a 16-bit input with an over-wide value: the compiled
        # entry masking must truncate it to the declared port width.
        netlist = compile_module(_channel(16))
        env = dict(netlist.reset_registers())
        env.update({name: 0 for name in netlist.input_names})
        env["arg_data"] = 0x12345
        outs = netlist.comb(env)
        assert all(value < (1 << 64) for value in outs.values())


class TestEndToEndWidths:
    @pytest.mark.parametrize("bus", ["wishbone", "axi4lite"])
    def test_sixtyfour_bit_platform_compiled(self, bus):
        """A 64-bit data path through synthesis and the compiled core."""
        workload = generate_workload(seed=21, n_commands=8,
                                     address_span=0x200, max_burst=3)
        config = PciPlatformConfig(params=IfaceParams(data_width=64))
        bundle = build_platform(
            [workload], config, bus=bus, synthesize=True,
            synthesis_config=SynthesisConfig(backend="compiled",
                                             data_width=64),
        )
        bundle.run(200 * MS)
        golden = expected_memory_image(workload, 0x200 // 4)
        check_memory_image(bundle.memory, golden)
        assert bundle.interface.params.data_width == 64
