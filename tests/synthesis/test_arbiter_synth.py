"""Unit tests for arbiter lowering: executable policies and IR emission."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SynthesisError
from repro.osss import (
    Arbiter,
    FcfsArbiter,
    RandomArbiter,
    RoundRobinArbiter,
    StaticPriorityArbiter,
)
from repro.synthesis import (
    RtlFcfsPolicy,
    RtlRandomPolicy,
    RtlRoundRobinPolicy,
    RtlStaticPriorityPolicy,
    RtlModule,
    lower_arbiter,
)
from repro.synthesis.arbiter_synth import emit_arbiter_ir


class TestLowering:
    def test_kind_mapping(self):
        paths = ["c0", "c1"]
        assert isinstance(lower_arbiter(FcfsArbiter(), 2, paths), RtlFcfsPolicy)
        assert isinstance(
            lower_arbiter(RoundRobinArbiter(), 2, paths), RtlRoundRobinPolicy
        )
        assert isinstance(
            lower_arbiter(RandomArbiter(), 2, paths), RtlRandomPolicy
        )

    def test_static_priority_maps_client_paths(self):
        arbiter = StaticPriorityArbiter({"c1": 1, "c0": 9})
        policy = lower_arbiter(arbiter, 2, ["c0", "c1"])
        assert isinstance(policy, RtlStaticPriorityPolicy)
        assert policy.priorities == [9, 1]

    def test_unknown_kind_rejected(self):
        class Custom(Arbiter):
            kind = "tarot"

        with pytest.raises(SynthesisError):
            lower_arbiter(Custom(), 2, ["a", "b"])


class TestFcfsPolicy:
    def test_oldest_wins(self):
        policy = RtlFcfsPolicy(3)
        policy.tick([True, False, False])
        policy.tick([True, True, False])
        # Client 0 has waited longer.
        assert policy.select([0, 1]) == 0

    def test_age_resets_on_grant(self):
        policy = RtlFcfsPolicy(2)
        policy.tick([True, True])
        policy.tick([True, True])
        assert policy.select([0, 1]) == 0  # tie broken by index
        # 0's age cleared; 1 is now oldest.
        policy.tick([True, True])
        assert policy.select([0, 1]) == 1

    def test_age_saturates(self):
        policy = RtlFcfsPolicy(1)
        for __ in range(1000):
            policy.tick([True])
        assert policy.ages[0] == 255


class TestRoundRobinPolicy:
    def test_pointer_rotation(self):
        policy = RtlRoundRobinPolicy(3)
        assert policy.select([0, 1, 2]) == 0
        assert policy.select([0, 1, 2]) == 1
        assert policy.select([0, 1, 2]) == 2
        assert policy.select([0, 1, 2]) == 0

    def test_skips_ineligible(self):
        policy = RtlRoundRobinPolicy(3)
        policy.select([0, 1, 2])  # pointer -> 1
        assert policy.select([0, 2]) == 2

    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            RtlRoundRobinPolicy(2).select([])


class TestRandomPolicy:
    def test_lfsr_never_zero(self):
        policy = RtlRandomPolicy(2, seed=0)
        assert policy.lfsr != 0
        for __ in range(100):
            policy.tick([True, True])
            assert policy.lfsr != 0

    def test_deterministic(self):
        def run(seed):
            policy = RtlRandomPolicy(4, seed=seed)
            picks = []
            for __ in range(20):
                policy.tick([True] * 4)
                picks.append(policy.select([0, 1, 2, 3]))
            return picks

        assert run(5) == run(5)
        assert run(5) != run(6)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=3),
    st.data(),
)
def test_policies_always_select_eligible(n_clients, which, data):
    policy = [
        RtlFcfsPolicy(n_clients),
        RtlRoundRobinPolicy(n_clients),
        RtlStaticPriorityPolicy(n_clients, list(range(n_clients))),
        RtlRandomPolicy(n_clients),
    ][which]
    for __ in range(10):
        requesting = data.draw(
            st.lists(st.booleans(), min_size=n_clients, max_size=n_clients)
        )
        policy.tick(requesting)
        eligible = [i for i, r in enumerate(requesting) if r]
        if eligible:
            assert policy.select(eligible) in eligible


class TestIrEmission:
    def _emit(self, kind, n=3, priorities=None):
        module = RtlModule(f"arb_{kind}")
        eligible = [module.add_net(f"e{i}", 1).ref() for i in range(n)]
        enable = module.add_net("en", 1)
        any_e, grant = emit_arbiter_ir(
            module, kind, n, eligible, enable.ref(), priorities
        )
        return module, any_e, grant

    @pytest.mark.parametrize("kind", ["fcfs", "round_robin", "static_priority",
                                      "random"])
    def test_emits_grant_nets(self, kind):
        priorities = [2, 0, 1] if kind == "static_priority" else None
        module, any_e, grant = self._emit(kind, priorities=priorities)
        assert grant.width == 2
        assert any(a.target is grant for a in module.assigns)

    def test_round_robin_has_pointer_register(self):
        module, __, ___ = self._emit("round_robin")
        assert any(r.name == "arb_rr_pointer" for r in module.registers)

    def test_fcfs_has_age_registers(self):
        module, __, ___ = self._emit("fcfs")
        ages = [r for r in module.registers if r.name.startswith("arb_age_")]
        assert len(ages) == 3

    def test_random_has_lfsr(self):
        module, __, ___ = self._emit("random")
        assert any(r.name == "arb_lfsr" for r in module.registers)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SynthesisError):
            self._emit("tarot")

    def test_vector_length_checked(self):
        module = RtlModule("m")
        enable = module.add_net("en", 1)
        with pytest.raises(SynthesisError):
            emit_arbiter_ir(module, "fcfs", 3,
                            [module.add_net("e0", 1).ref()], enable.ref())
