"""Tests of the synthesis driver (discovery, lowering, reporting)."""

import pytest

from repro.errors import SynthesisError
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.osss import GlobalObject, connect, guarded_method
from repro.synthesis import (
    SynthesisConfig,
    discover_groups,
    synthesize_communication,
)


class Latch:
    def __init__(self):
        self.value = 0

    @guarded_method()
    def store(self, v):
        self.value = v

    @guarded_method()
    def load(self):
        return self.value


def _design(n_groups=1, hosts_per_group=2):
    sim = Simulator()
    clock = Clock(sim, "clock", period=10 * NS)
    groups = []
    for g in range(n_groups):
        hosts = []
        for h in range(hosts_per_group):
            module = Module(sim, f"g{g}h{h}")
            hosts.append(GlobalObject(module, "obj", Latch))
        connect(*hosts)
        groups.append(hosts)
    return sim, clock, groups


class TestDiscovery:
    def test_groups_found(self):
        sim, __, groups = _design(n_groups=3, hosts_per_group=2)
        found = discover_groups(sim)
        assert len(found) == 3
        assert all(len(g) == 2 for g in found)

    def test_handles_sorted_by_path(self):
        sim, __, ___ = _design()
        found = discover_groups(sim)
        paths = [h.path for h in found[0]]
        assert paths == sorted(paths)


class TestSynthesisDriver:
    def test_synthesizes_all_groups(self):
        sim, clock, groups = _design(n_groups=2)
        result = synthesize_communication(sim, clock.clk)
        assert len(result.groups) == 2
        assert result.report.total_fsm_states >= 6

    def test_only_filter(self):
        sim, clock, groups = _design(n_groups=2)
        result = synthesize_communication(sim, clock.clk, only=[groups[0][0]])
        assert len(result.groups) == 1
        # The untouched group still has its behavioural server.
        assert groups[1][0]._root()._lowered is None

    def test_group_for_lookup(self):
        sim, clock, groups = _design(n_groups=2)
        result = synthesize_communication(sim, clock.clk)
        group = result.group_for(groups[1][1])
        assert groups[1][1] in group.handles

    def test_group_for_unsynthesized_raises(self):
        sim, clock, groups = _design(n_groups=2)
        result = synthesize_communication(sim, clock.clk, only=[groups[0][0]])
        with pytest.raises(SynthesisError):
            result.group_for(groups[1][0])

    def test_empty_design_rejected(self):
        sim = Simulator()
        clock = Clock(sim, "clock", period=10 * NS)
        with pytest.raises(SynthesisError):
            synthesize_communication(sim, clock.clk)

    def test_elaborated_design_rejected(self):
        sim, clock, __ = _design()
        sim.run(10 * NS)
        with pytest.raises(SynthesisError):
            synthesize_communication(sim, clock.clk)

    def test_design_with_traffic_rejected(self):
        sim, clock, groups = _design()
        # Pre-run a different sim? Instead: simulate traffic counters.
        groups[0][0].space.stats.total_requests = 1
        with pytest.raises(SynthesisError):
            synthesize_communication(sim, clock.clk)

    def test_hdl_emission_toggle(self):
        sim, clock, __ = _design()
        result = synthesize_communication(
            sim, clock.clk, SynthesisConfig(emit_hdl=False)
        )
        assert result.groups[0].verilog == ""
        assert result.all_verilog() == ""

    def test_hdl_emitted_by_default(self):
        sim, clock, __ = _design()
        result = synthesize_communication(sim, clock.clk)
        assert "module chan0" in result.all_verilog()
        assert "entity chan0" in result.all_vhdl()

    def test_report_render(self):
        sim, clock, __ = _design()
        result = synthesize_communication(sim, clock.clk)
        text = result.report.render()
        assert "communication synthesis report" in text
        assert "lowered channels:" in text
        assert "Latch" in text

    def test_config_validation(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(body_cycles=0)
        with pytest.raises(SynthesisError):
            SynthesisConfig(data_width=0)

    def test_post_synthesis_behaviour_preserved(self):
        sim, clock, groups = _design()
        synthesize_communication(sim, clock.clk)
        results = []

        def writer():
            yield from groups[0][0].store(0x77)

        def reader():
            from repro.kernel import Timeout

            yield Timeout(500 * NS)
            value = yield from groups[0][1].load()
            results.append(value)

        sim.spawn(writer, "w")
        sim.spawn(reader, "r")
        sim.run(2 * MS)
        assert results == [0x77]
