"""Unit tests for the Verilog and VHDL backends."""

import pytest

from repro.synthesis import (
    BinOp,
    Const,
    Fsm,
    Mux,
    RtlModule,
    UnOp,
    build_channel_ir,
    emit_verilog,
    emit_vhdl,
)


def _tiny_module():
    module = RtlModule("tiny", comment="a tiny test module")
    module.add_port("clk", "in", 1)
    module.add_port("rst_n", "in", 1)
    a = module.add_port("a", "in", 4)
    b = module.add_port("b", "in", 4)
    y = module.add_port("y", "out", 4)
    sel = module.add_port("sel", "in", 1)
    reg = module.add_register("acc", 4, reset_value=3)
    module.add_assign(y, Mux(sel.ref(), a.ref(), b.ref()), "select input")
    module.add_clocked_assign(reg, BinOp("+", reg.ref(), Const(1, 4)),
                              enable=sel.ref())
    fsm = Fsm("ctrl", ["IDLE", "GO"], "IDLE")
    module.add_fsm(fsm)
    fsm.add_transition("IDLE", sel.ref(), "GO")
    fsm.add_transition("GO", UnOp("~", sel.ref()), "IDLE")
    return module


class TestVerilog:
    def test_module_shell(self):
        text = emit_verilog(_tiny_module())
        assert text.startswith("// a tiny test module")
        assert "module tiny (" in text
        assert text.rstrip().endswith("endmodule")

    def test_ports_and_widths(self):
        text = emit_verilog(_tiny_module())
        assert "input  wire clk" in text
        assert "[3:0] a" in text
        assert "output wire [3:0] y" in text

    def test_combinational_assign(self):
        text = emit_verilog(_tiny_module())
        assert "assign y = (sel ? a : b);" in text

    def test_reset_block(self):
        text = emit_verilog(_tiny_module())
        assert "always @(posedge clk or negedge rst_n)" in text
        assert "acc <= 4'd3;" in text

    def test_enable_gating(self):
        text = emit_verilog(_tiny_module())
        assert "if (sel)" in text

    def test_fsm_case(self):
        text = emit_verilog(_tiny_module())
        assert "localparam CTRL_IDLE = 1'd0;" in text
        assert "case (ctrl_state)" in text
        assert "CTRL_GO" in text

    def test_channel_netlist_emits(self):
        module = build_channel_ir("chan", 2, ["a", "b", "c"], "round_robin")
        text = emit_verilog(module)
        assert "module chan" in text
        assert "arb_rr_pointer" in text
        assert text.count("endmodule") == 1


class TestVhdl:
    def test_entity_architecture(self):
        text = emit_vhdl(_tiny_module())
        assert "entity tiny is" in text
        assert "architecture rtl of tiny is" in text
        assert "end architecture rtl;" in text
        assert "use ieee.std_logic_1164.all;" in text

    def test_ports(self):
        text = emit_vhdl(_tiny_module())
        assert "clk : in  std_logic" in text
        assert "a : in  std_logic_vector(3 downto 0)" in text

    def test_clocked_process(self):
        text = emit_vhdl(_tiny_module())
        assert "process (clk, rst_n)" in text
        assert "rising_edge(clk)" in text
        assert 'acc <= "0011";' in text

    def test_mux_when_else(self):
        text = emit_vhdl(_tiny_module())
        assert "when sel = '1' else" in text

    def test_fsm_case(self):
        text = emit_vhdl(_tiny_module())
        assert "case ctrl_state is" in text
        assert "when others =>" in text

    def test_arithmetic_uses_numeric_std(self):
        text = emit_vhdl(_tiny_module())
        assert "unsigned(acc)" in text

    def test_channel_netlist_emits(self):
        module = build_channel_ir("chan", 2, ["a", "b"], "fcfs")
        text = emit_vhdl(module)
        assert "entity chan is" in text


class TestBackendsAgree:
    @pytest.mark.parametrize("kind", ["fcfs", "round_robin", "static_priority",
                                      "random"])
    def test_all_arbiters_emit_in_both_languages(self, kind):
        priorities = [1, 0] if kind == "static_priority" else None
        module = build_channel_ir("chan", 2, ["m0", "m1"], kind,
                                  priorities=priorities)
        verilog = emit_verilog(module)
        vhdl = emit_vhdl(module)
        # Every port must appear in both outputs.
        for port in module.ports:
            assert port.name in verilog
            assert port.name in vhdl
