"""Tests of the executable RT-level method channel."""

import pytest

from repro.errors import SimulationError, SynthesisError
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator, Timeout
from repro.osss import (
    GlobalObject,
    RoundRobinArbiter,
    StaticPriorityArbiter,
    connect,
    guarded_method,
)
from repro.synthesis import SynthesisConfig, synthesize_communication

CLOCK_PERIOD = 10 * NS


class TokenStore:
    def __init__(self):
        self.tokens = 0
        self.history = []

    @guarded_method()
    def deposit(self, n=1):
        self.tokens += n
        self.history.append(("deposit", n))
        return self.tokens

    @guarded_method(lambda self: self.tokens > 0)
    def withdraw(self):
        self.tokens -= 1
        self.history.append(("withdraw", 1))
        return self.tokens

    @guarded_method()
    def explode(self):
        raise RuntimeError("kaboom")


class Host(Module):
    def __init__(self, parent, name, arbiter=None):
        super().__init__(parent, name)
        self.obj = GlobalObject(self, "obj", TokenStore, arbiter=arbiter)


def _build(n_hosts=2, arbiter=None, body_cycles=1):
    sim = Simulator()
    clock = Clock(sim, "clock", period=CLOCK_PERIOD)
    hosts = [Host(sim, f"h{i}", arbiter if i == 0 else None)
             for i in range(n_hosts)]
    connect(*[h.obj for h in hosts])
    result = synthesize_communication(
        sim, clock.clk, SynthesisConfig(body_cycles=body_cycles, emit_hdl=False)
    )
    return sim, hosts, result.groups[0].channel


class TestLoweredCalls:
    def test_basic_call_roundtrip(self):
        sim, hosts, channel = _build()
        results = []

        def caller():
            value = yield from hosts[0].obj.deposit(5)
            results.append((value, sim.time))

        sim.spawn(caller, "c")
        sim.run(1 * MS)
        assert results and results[0][0] == 5
        # The call took a handful of clock cycles, not zero time.
        assert results[0][1] >= 2 * CLOCK_PERIOD
        assert channel.calls_serviced == 1

    def test_guard_blocks_until_state_allows(self):
        sim, hosts, channel = _build()
        log = []

        def consumer():
            value = yield from hosts[1].obj.withdraw()
            log.append(("withdraw_done", sim.time))

        def producer():
            yield Timeout(500 * NS)
            yield from hosts[0].obj.deposit(1)

        sim.spawn(consumer, "c")
        sim.spawn(producer, "p")
        sim.run(2 * MS)
        assert log and log[0][1] > 500 * NS

    def test_exception_propagates(self):
        sim, hosts, __ = _build()
        caught = []

        def caller():
            try:
                yield from hosts[0].obj.explode()
            except RuntimeError as error:
                caught.append(str(error))

        sim.spawn(caller, "c")
        sim.run(1 * MS)
        assert caught == ["kaboom"]

    def test_concurrent_callers_serialised(self):
        sim, hosts, channel = _build(n_hosts=4)
        done = []

        def make(index):
            def caller():
                yield from hosts[index].obj.deposit(1)
                done.append(index)
            return caller

        for i in range(4):
            sim.spawn(make(i), f"c{i}")
        sim.run(2 * MS)
        assert sorted(done) == [0, 1, 2, 3]
        assert hosts[0].obj.state.tokens == 4
        assert channel.calls_serviced == 4

    def test_two_processes_share_one_port(self):
        sim, hosts, channel = _build(n_hosts=1)
        done = []

        def caller_a():
            yield from hosts[0].obj.deposit(1)
            done.append("a")

        def caller_b():
            yield from hosts[0].obj.deposit(1)
            done.append("b")

        sim.spawn(caller_a, "a")
        sim.spawn(caller_b, "b")
        sim.run(2 * MS)
        assert sorted(done) == ["a", "b"]
        assert hosts[0].obj.state.tokens == 2

    def test_body_cycles_charged(self):
        def run_with(body_cycles):
            sim, hosts, channel = _build(body_cycles=body_cycles)
            stamp = []

            def caller():
                yield from hosts[0].obj.deposit(1)
                stamp.append(sim.time)

            sim.spawn(caller, "c")
            sim.run(2 * MS)
            return stamp[0]

        assert run_with(8) > run_with(1)

    def test_timeout_not_supported(self):
        sim, hosts, __ = _build()

        def caller():
            yield from hosts[0].obj.call("deposit", 1, timeout=100 * NS)

        sim.spawn(caller, "c")
        with pytest.raises(SynthesisError):
            sim.run(1 * MS)

    def test_try_call_not_supported(self):
        sim, hosts, __ = _build()
        with pytest.raises(SimulationError):
            hosts[0].obj.try_call("deposit", 1)

    def test_stats_still_recorded(self):
        sim, hosts, channel = _build()

        def caller():
            yield from hosts[0].obj.deposit(1)
            yield from hosts[0].obj.withdraw()

        sim.spawn(caller, "c")
        sim.run(2 * MS)
        stats = hosts[0].obj.stats
        assert stats.total_completed == 2
        assert channel.mean_call_cycles(CLOCK_PERIOD) > 0


class TestArbitrationPolicies:
    def test_priority_order_under_contention(self):
        arbiter = StaticPriorityArbiter({"h2.obj": 0, "h1.obj": 1, "h0.obj": 2})
        sim, hosts, channel = _build(n_hosts=3, arbiter=arbiter)
        order = []

        def make(index):
            def caller():
                yield from hosts[index].obj.deposit(1)
                order.append(index)
            return caller

        # All three request in the same delta; priority decides service order.
        for i in range(3):
            sim.spawn(make(i), f"c{i}")
        sim.run(2 * MS)
        assert order == [2, 1, 0]

    def test_round_robin_shares_under_load(self):
        sim, hosts, channel = _build(n_hosts=2, arbiter=RoundRobinArbiter())
        counts = {0: 0, 1: 0}

        def make(index):
            def caller():
                for __ in range(10):
                    yield from hosts[index].obj.deposit(1)
                    counts[index] += 1
            return caller

        for i in range(2):
            sim.spawn(make(i), f"c{i}")
        sim.run(20 * MS)
        assert counts == {0: 10, 1: 10}
        fairness = hosts[0].obj.stats.fairness_index()
        assert fairness > 0.95
