"""Unit tests for the RTL IR."""

import pytest

from repro.errors import SynthesisError
from repro.synthesis import (
    BinOp,
    BitSelect,
    Concat,
    Const,
    Fsm,
    Mux,
    Net,
    Register,
    RtlModule,
    UnOp,
    clog2,
    mux_chain,
)


class TestClog2:
    def test_values(self):
        assert clog2(1) == 1
        assert clog2(2) == 1
        assert clog2(3) == 2
        assert clog2(4) == 2
        assert clog2(5) == 3
        assert clog2(256) == 8

    def test_invalid(self):
        with pytest.raises(SynthesisError):
            clog2(0)


class TestExpressions:
    def test_const_range_checked(self):
        Const(3, 2)
        with pytest.raises(SynthesisError):
            Const(4, 2)
        with pytest.raises(SynthesisError):
            Const(0, 0)

    def test_binop_width_rules(self):
        a, b = Net("a", 4), Net("b", 4)
        assert BinOp("&", a.ref(), b.ref()).width == 4
        assert BinOp("==", a.ref(), b.ref()).width == 1
        with pytest.raises(SynthesisError):
            BinOp("&", a.ref(), Net("c", 5).ref())
        with pytest.raises(SynthesisError):
            BinOp("**", a.ref(), b.ref())

    def test_unop_widths(self):
        a = Net("a", 4)
        assert UnOp("~", a.ref()).width == 4
        assert UnOp("|", a.ref()).width == 1

    def test_mux_rules(self):
        sel = Net("sel", 1)
        a, b = Net("a", 8), Net("b", 8)
        mux = Mux(sel.ref(), a.ref(), b.ref())
        assert mux.width == 8
        with pytest.raises(SynthesisError):
            Mux(Net("wide", 2).ref(), a.ref(), b.ref())
        with pytest.raises(SynthesisError):
            Mux(sel.ref(), a.ref(), Net("c", 4).ref())

    def test_bitselect_and_concat(self):
        a = Net("a", 8)
        assert BitSelect(a.ref(), 7).width == 1
        with pytest.raises(SynthesisError):
            BitSelect(a.ref(), 8)
        assert Concat(a.ref(), Net("b", 4).ref()).width == 12
        with pytest.raises(SynthesisError):
            Concat()

    def test_mux_chain_priority(self):
        default = Const(0, 4)
        sel_a, sel_b = Net("sa", 1), Net("sb", 1)
        chain = mux_chain(default, [(sel_a.ref(), Const(1, 4)),
                                    (sel_b.ref(), Const(2, 4))])
        # Outermost mux tests the first (highest-priority) condition.
        assert isinstance(chain, Mux)
        assert chain.select.net.name == "sa"

    def test_node_and_mux_counting(self):
        sel = Net("s", 1)
        expr = Mux(sel.ref(), Const(1, 4), Const(0, 4))
        assert expr.count_muxes() == 1
        assert expr.count_nodes() == 4


class TestStructure:
    def test_register_reset_checked(self):
        Register("r", 4, reset_value=15)
        with pytest.raises(SynthesisError):
            Register("r", 4, reset_value=16)

    def test_module_name_collisions(self):
        module = RtlModule("m")
        module.add_net("x", 4)
        with pytest.raises(SynthesisError):
            module.add_register("x", 4)

    def test_assign_width_checked(self):
        module = RtlModule("m")
        target = module.add_net("t", 4)
        with pytest.raises(SynthesisError):
            module.add_assign(target, Const(0, 5))

    def test_clocked_assign_needs_register(self):
        module = RtlModule("m")
        net = module.add_net("n", 4)
        with pytest.raises(SynthesisError):
            module.add_clocked_assign(net, Const(0, 4))

    def test_port_lookup(self):
        module = RtlModule("m")
        module.add_port("clk", "in", 1)
        assert module.port("clk").direction == "in"
        with pytest.raises(SynthesisError):
            module.port("nope")
        with pytest.raises(SynthesisError):
            module.add_port("x", "sideways", 1)

    def test_resource_counters(self):
        module = RtlModule("m")
        reg = module.add_register("r", 8)
        sel = module.add_net("sel", 1)
        out = module.add_net("out", 8)
        module.add_assign(out, Mux(sel.ref(), reg.ref(), Const(0, 8)))
        assert module.flip_flop_bits() == 8
        assert module.mux_count() == 1
        assert module.expression_nodes() >= 4


class TestFsm:
    def test_construction(self):
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        assert fsm.state_bits == 1
        assert fsm.encode("RUN") == 1
        with pytest.raises(SynthesisError):
            fsm.encode("NOPE")

    def test_validation(self):
        with pytest.raises(SynthesisError):
            Fsm("f", [], "X")
        with pytest.raises(SynthesisError):
            Fsm("f", ["A", "A"], "A")
        with pytest.raises(SynthesisError):
            Fsm("f", ["A"], "B")

    def test_transitions_checked(self):
        fsm = Fsm("ctrl", ["A", "B"], "A")
        go = Net("go", 1)
        fsm.add_transition("A", go.ref(), "B")
        with pytest.raises(SynthesisError):
            fsm.add_transition("A", go.ref(), "C")
        with pytest.raises(SynthesisError):
            fsm.add_transition("A", Net("wide", 2).ref(), "B")

    def test_fsm_registers_in_module(self):
        module = RtlModule("m")
        fsm = Fsm("ctrl", ["A", "B", "C"], "A")
        module.add_fsm(fsm)
        assert fsm.state_register in module.registers
        assert module.flip_flop_bits() == 2
