"""Stress and edge cases of the executable RT-level channel."""

import pytest

from repro.errors import SynthesisError
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.osss import GlobalObject, RoundRobinArbiter, connect, guarded_method
from repro.synthesis import SynthesisConfig, synthesize_communication

CLOCK = 10 * NS


class Tally:
    def __init__(self):
        self.per_client: dict = {}
        self.total = 0

    @guarded_method()
    def bump(self, who):
        self.per_client[who] = self.per_client.get(who, 0) + 1
        self.total += 1
        return self.total

    @guarded_method(lambda self: self.total >= 10)
    def over_ten(self):
        return self.total


def _stress(n_clients, calls_each, arbiter=None):
    sim = Simulator()
    clock = Clock(sim, "clock", period=CLOCK)
    handles = []
    for i in range(n_clients):
        module = Module(sim, f"m{i}")
        handles.append(
            GlobalObject(module, "t", Tally,
                         arbiter=arbiter if i == 0 else None)
        )
    connect(*handles)
    result = synthesize_communication(sim, clock.clk,
                                      SynthesisConfig(emit_hdl=False))
    channel = result.groups[0].channel
    finished = [0]

    def make(index, handle):
        def client():
            for __ in range(calls_each):
                yield from handle.bump(index)
            finished[0] += 1
            if finished[0] == n_clients:
                sim.stop()
        return client

    for index, handle in enumerate(handles):
        sim.spawn(make(index, handle), f"c{index}")
    sim.run(200 * MS)
    return handles[0].state, channel, finished[0]


class TestStress:
    def test_twelve_clients(self):
        state, channel, finished = _stress(12, 10)
        assert finished == 12
        assert state.total == 120
        assert all(count == 10 for count in state.per_client.values())
        assert channel.calls_serviced == 120

    def test_round_robin_twelve_clients(self):
        state, channel, finished = _stress(12, 5, arbiter=RoundRobinArbiter())
        assert state.total == 60
        # Rotation keeps worst-case waits bounded to roughly one lap.
        lap = 12 * 5  # clients x (handshake cycles per call)
        waits = [r.wait_time // CLOCK for r in channel.call_log]
        assert max(waits) < lap * 2

    def test_busy_idle_accounting(self):
        __, channel, ___ = _stress(2, 5)
        assert channel.busy_cycles > 0
        assert channel.idle_cycles > 0
        assert channel.calls_serviced == 10


class TestEdgeCases:
    def test_guard_dependent_on_other_clients(self):
        """A guard that only becomes true through others' calls."""
        sim = Simulator()
        clock = Clock(sim, "clock", period=CLOCK)
        producer_host = Module(sim, "prod")
        waiter_host = Module(sim, "wait")
        producer = GlobalObject(producer_host, "t", Tally)
        waiter = GlobalObject(waiter_host, "t", Tally)
        connect(producer, waiter)
        synthesize_communication(sim, clock.clk,
                                 SynthesisConfig(emit_hdl=False))
        log = []

        def waiting_client():
            value = yield from waiter.over_ten()  # blocked until total>=10
            log.append(("woke", value, sim.time))
            sim.stop()

        def producing_client():
            for __ in range(12):
                yield from producer.bump("p")

        sim.spawn(waiting_client, "w")
        sim.spawn(producing_client, "p")
        sim.run(200 * MS)
        assert log and log[0][1] >= 10

    def test_unknown_method_raises_in_caller(self):
        sim = Simulator()
        clock = Clock(sim, "clock", period=CLOCK)
        host = Module(sim, "m")
        handle = GlobalObject(host, "t", Tally)
        synthesize_communication(sim, clock.clk,
                                 SynthesisConfig(emit_hdl=False))

        def caller():
            yield from handle.call("does_not_exist")

        sim.spawn(caller, "c")
        with pytest.raises(Exception):
            sim.run(10 * MS)

    def test_foreign_handle_rejected(self):
        sim = Simulator()
        clock = Clock(sim, "clock", period=CLOCK)
        host_a = Module(sim, "a")
        host_b = Module(sim, "b")
        handle_a = GlobalObject(host_a, "t", Tally)
        handle_b = GlobalObject(host_b, "t", Tally)  # separate group
        result = synthesize_communication(
            sim, clock.clk, SynthesisConfig(emit_hdl=False),
            only=[handle_a],
        )
        channel = result.groups[0].channel
        with pytest.raises(SynthesisError):
            channel.client_index(handle_b)

    def test_body_exception_does_not_wedge_channel(self):
        class Fragile:
            def __init__(self):
                self.ok_calls = 0

            @guarded_method()
            def maybe(self, explode):
                if explode:
                    raise ValueError("no")
                self.ok_calls += 1
                return self.ok_calls

        sim = Simulator()
        clock = Clock(sim, "clock", period=CLOCK)
        host = Module(sim, "m")
        handle = GlobalObject(host, "t", Fragile)
        synthesize_communication(sim, clock.clk,
                                 SynthesisConfig(emit_hdl=False))
        outcomes = []

        def caller():
            try:
                yield from handle.maybe(True)
            except ValueError:
                outcomes.append("raised")
            value = yield from handle.maybe(False)
            outcomes.append(value)
            sim.stop()

        sim.spawn(caller, "c")
        sim.run(10 * MS)
        assert outcomes == ["raised", 1]
