"""Unit tests for channel/object/polymorphism netlist generation."""

import pytest

from repro.errors import SynthesisError
from repro.osss import PolymorphicVar, guarded_method
from repro.synthesis import (
    build_channel_ir,
    build_object_ir,
    estimate_state_bits,
    synthesize_dispatch,
)
from repro.osss.guarded_method import guarded_methods_of


class SharedThing:
    def __init__(self):
        self.flag = False
        self.count = 0
        self.items = [1, 2, 3]

    @guarded_method(lambda self: not self.flag)
    def acquire(self):
        self.flag = True

    @guarded_method(lambda self: self.flag)
    def release(self):
        self.flag = False

    @guarded_method()
    def poke(self):
        self.count += 1


class TestChannelIr:
    def test_port_inventory(self):
        module = build_channel_ir("chan", 3, ["a", "b"], "fcfs")
        names = {p.name for p in module.ports}
        for i in range(3):
            assert {f"req_{i}", f"method_{i}", f"gnt_{i}", f"done_{i}"} <= names
        assert {"clk", "rst_n", "guard_0", "guard_1", "exec_go"} <= names

    def test_has_server_fsm(self):
        module = build_channel_ir("chan", 2, ["m"], "round_robin")
        assert len(module.fsms) == 1
        assert module.fsms[0].states == ["IDLE", "EXEC", "DONE"]

    def test_body_cycles_sizes_counter(self):
        small = build_channel_ir("c1", 1, ["m"], "fcfs", body_cycles=1)
        large = build_channel_ir("c2", 1, ["m"], "fcfs", body_cycles=9)
        reg = lambda m: next(r for r in m.registers if r.name == "exec_counter")
        assert reg(large).width > reg(small).width

    def test_validation(self):
        with pytest.raises(SynthesisError):
            build_channel_ir("c", 0, ["m"], "fcfs")
        with pytest.raises(SynthesisError):
            build_channel_ir("c", 1, [], "fcfs")

    def test_resources_scale_with_clients(self):
        small = build_channel_ir("c1", 1, ["m"], "round_robin")
        large = build_channel_ir("c2", 6, ["m"], "round_robin")
        assert large.mux_count() > small.mux_count()
        assert large.flip_flop_bits() >= small.flip_flop_bits()


class TestObjectIr:
    def test_state_estimation(self):
        estimate = estimate_state_bits(SharedThing())
        assert estimate["flag"] == 1
        assert estimate["count"] == 32
        assert estimate["items"] == 96

    def test_estimation_handles_odd_types(self):
        class Odd:
            def __init__(self):
                self.nothing = None
                self.text = "hi"
                self.mapping = {"a": 1}

        estimate = estimate_state_bits(Odd())
        assert estimate["nothing"] == 1
        assert estimate["text"] == 16
        assert estimate["mapping"] == 32

    def test_guard_ports_and_strobes(self):
        thing = SharedThing()
        methods = guarded_methods_of(SharedThing)
        order = sorted(methods)
        module = build_object_ir("obj", thing, methods, order)
        names = {p.name for p in module.ports}
        for i in range(len(order)):
            assert f"guard_{i}" in names
            assert f"run_{i}" in names

    def test_state_registers_created(self):
        thing = SharedThing()
        methods = guarded_methods_of(SharedThing)
        module = build_object_ir("obj", thing, methods, sorted(methods))
        reg_names = {r.name for r in module.registers}
        assert {"state_flag", "state_count", "state_items"} <= reg_names

    def test_empty_methods_rejected(self):
        with pytest.raises(SynthesisError):
            build_object_ir("obj", SharedThing(), {}, [])


class Base:
    def work(self):
        raise NotImplementedError


class VariantA(Base):
    def __init__(self):
        self.small = True

    def work(self):
        return "a"


class VariantB(Base):
    def __init__(self):
        self.big = [0] * 8

    def work(self):
        return "b"


class TestDispatchSynthesis:
    def test_dispatch_module(self):
        var = PolymorphicVar(Base, [VariantA, VariantB], name="v")
        module, info = synthesize_dispatch(var)
        assert info.tag_bits == 1
        assert info.variants == ["VariantA", "VariantB"]
        # Union sized by the largest variant (8 * 32 bits).
        assert info.union_state_bits == 256
        names = {p.name for p in module.ports}
        assert "run_varianta_work" in names
        assert "run_variantb_work" in names

    def test_mux_inputs_metric(self):
        var = PolymorphicVar(Base, [VariantA, VariantB])
        __, info = synthesize_dispatch(var)
        assert info.mux_inputs == len(info.variants) * len(info.methods)

    def test_base_without_methods_rejected(self):
        class Empty:
            pass

        class Sub(Empty):
            pass

        var = PolymorphicVar(Empty, [Sub])
        with pytest.raises(SynthesisError):
            synthesize_dispatch(var)
