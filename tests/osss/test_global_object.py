"""Unit tests for global objects: shared state, blocking guards, queueing."""

import pytest

from repro.errors import ArbitrationError, GuardTimeoutError, SimulationError
from repro.hdl import Module
from repro.kernel import NS, Simulator, Timeout
from repro.osss import (
    FcfsArbiter,
    GlobalObject,
    StaticPriorityArbiter,
    connect,
    guarded_method,
)


class Mailbox:
    """One-slot mailbox: the canonical guarded-method object."""

    def __init__(self):
        self.slot = None

    @guarded_method(lambda self: self.slot is None)
    def put(self, item):
        self.slot = item

    @guarded_method(lambda self: self.slot is not None)
    def get(self):
        item, self.slot = self.slot, None
        return item


class Host(Module):
    def __init__(self, parent, name, cls=Mailbox, **kwargs):
        super().__init__(parent, name)
        self.obj = GlobalObject(self, "obj", cls, **kwargs)


@pytest.fixture
def sim():
    return Simulator()


class TestSharedState:
    def test_figure1_shared_bistable(self, sim):
        """The paper's Figure 1 scenario, exactly."""

        class Bistable:
            def __init__(self):
                self.state = False

            @guarded_method()
            def set(self):
                self.state = True

            @guarded_method()
            def get_state(self):
                return self.state

        host_a = Host(sim, "m1", Bistable)
        host_b = Host(sim, "m2", Bistable)
        top = GlobalObject(host_a, "top_b", Bistable)
        connect(host_a.obj, host_b.obj, top)
        log = []

        def setter():
            yield Timeout(10 * NS)
            yield from host_a.obj.set()

        def getter():
            yield Timeout(20 * NS)
            value = yield from host_b.obj.get_state()
            log.append(value)

        sim.spawn(setter, "s")
        sim.spawn(getter, "g")
        sim.run(100 * NS)
        assert log == [True]
        assert host_b.obj.state is host_a.obj.state

    def test_unconnected_objects_have_separate_state(self, sim):
        host_a = Host(sim, "a")
        host_b = Host(sim, "b")
        assert host_a.obj.state is not host_b.obj.state

    def test_connect_is_transitive(self, sim):
        hosts = [Host(sim, f"h{i}") for i in range(4)]
        hosts[0].obj.connect(hosts[1].obj)
        hosts[2].obj.connect(hosts[3].obj)
        hosts[1].obj.connect(hosts[2].obj)
        spaces = {id(h.obj.space) for h in hosts}
        assert len(spaces) == 1

    def test_connect_different_classes_rejected(self, sim):
        class Other:
            @guarded_method()
            def noop(self):
                pass

        host_a = Host(sim, "a")
        host_b = Host(sim, "b", Other)
        with pytest.raises(SimulationError):
            host_a.obj.connect(host_b.obj)

    def test_connect_empty_rejected(self):
        with pytest.raises(SimulationError):
            connect()

    def test_double_connect_is_noop(self, sim):
        host_a = Host(sim, "a")
        host_b = Host(sim, "b")
        host_a.obj.connect(host_b.obj)
        host_a.obj.connect(host_b.obj)
        assert host_a.obj.space is host_b.obj.space

    def test_two_explicit_arbiters_rejected(self, sim):
        host_a = Host(sim, "a", arbiter=FcfsArbiter())
        host_b = Host(sim, "b", arbiter=FcfsArbiter())
        with pytest.raises(ArbitrationError):
            host_a.obj.connect(host_b.obj)

    def test_explicit_arbiter_wins_group(self, sim):
        arbiter = StaticPriorityArbiter({"b.obj": 0})
        host_a = Host(sim, "a")
        host_b = Host(sim, "b", arbiter=arbiter)
        host_a.obj.connect(host_b.obj)
        assert host_a.obj.space.arbiter is arbiter


class TestBlockingSemantics:
    def test_guard_suspends_until_true(self, sim):
        host = Host(sim, "h")
        log = []

        def consumer():
            item = yield from host.obj.get()  # blocks: slot empty
            log.append((item, sim.time))

        def producer():
            yield Timeout(30 * NS)
            yield from host.obj.put("hello")

        sim.spawn(consumer, "c")
        sim.spawn(producer, "p")
        sim.run(100 * NS)
        assert log == [("hello", 30 * NS)]

    def test_put_blocks_when_full(self, sim):
        host = Host(sim, "h")
        log = []

        def producer():
            yield from host.obj.put(1)
            yield from host.obj.put(2)  # blocks until get
            log.append(("second put", sim.time))

        def consumer():
            yield Timeout(50 * NS)
            item = yield from host.obj.get()
            log.append(("got", item, sim.time))

        sim.spawn(producer, "p")
        sim.spawn(consumer, "c")
        sim.run(200 * NS)
        assert ("got", 1, 50 * NS) in log
        assert log[-1] == ("second put", 50 * NS)

    def test_timeout_raises(self, sim):
        host = Host(sim, "h")
        errors = []

        def consumer():
            try:
                yield from host.obj.call("get", timeout=20 * NS)
            except GuardTimeoutError:
                errors.append(sim.time)

        sim.spawn(consumer, "c")
        sim.run(100 * NS)
        assert errors == [20 * NS]

    def test_timeout_cancels_request(self, sim):
        host = Host(sim, "h")

        def consumer():
            try:
                yield from host.obj.call("get", timeout=10 * NS)
            except GuardTimeoutError:
                pass

        sim.spawn(consumer, "c")
        sim.run(50 * NS)
        assert host.obj.space.pending == []

    def test_method_exception_propagates_to_caller(self, sim):
        class Exploder:
            @guarded_method()
            def boom(self):
                raise ValueError("bang")

        host = Host(sim, "h", Exploder)
        caught = []

        def caller():
            try:
                yield from host.obj.boom()
            except ValueError as error:
                caught.append(str(error))

        sim.spawn(caller, "c")
        sim.run(10 * NS)
        assert caught == ["bang"]

    def test_unknown_method_rejected(self, sim):
        host = Host(sim, "h")

        def caller():
            yield from host.obj.call("no_such_method")

        sim.spawn(caller, "c")
        with pytest.raises(SimulationError):
            sim.run(10 * NS)

    def test_attribute_sugar_unknown_name(self, sim):
        host = Host(sim, "h")
        with pytest.raises(AttributeError):
            host.obj.no_such_method

    def test_plain_method_callable_through_channel(self, sim):
        class WithPlain:
            def helper(self):
                return 99

        host = Host(sim, "h", WithPlain)
        results = []

        def caller():
            value = yield from host.obj.call("helper")
            results.append(value)

        sim.spawn(caller, "c")
        sim.run(10 * NS)
        assert results == [99]


class TestQueueingAndStats:
    def test_concurrent_calls_are_serialised(self, sim):
        class Appender:
            def __init__(self):
                self.log = []

            @guarded_method()
            def add(self, tag):
                self.log.append(tag)

        host = Host(sim, "h", Appender)
        others = [Host(sim, f"o{i}", Appender) for i in range(3)]
        connect(host.obj, *[o.obj for o in others])

        def make_caller(handle, tag):
            def caller():
                yield from handle.add(tag)
            return caller

        for i, other in enumerate(others):
            sim.spawn(make_caller(other.obj, i), f"c{i}")
        sim.run(100 * NS)
        assert sorted(host.obj.state.log) == [0, 1, 2]
        assert host.obj.stats.total_completed == 3

    def test_wait_time_recorded(self, sim):
        host = Host(sim, "h")

        def consumer():
            yield from host.obj.get()

        def producer():
            yield Timeout(40 * NS)
            yield from host.obj.put("x")

        sim.spawn(consumer, "c")
        sim.spawn(producer, "p")
        sim.run(100 * NS)
        assert host.obj.stats.max_wait_time >= 40 * NS

    def test_try_call_immediate(self, sim):
        host = Host(sim, "h")
        granted, result = host.obj.try_call("put", "now")
        assert granted
        assert host.obj.state.slot == "now"
        granted, __ = host.obj.try_call("put", "again")  # guard false
        assert not granted

    def test_service_time_delays_completion(self, sim):
        host = Host(sim, "h", service_time=25 * NS)
        done = []

        def caller():
            yield from host.obj.put("x")
            done.append(sim.time)

        sim.spawn(caller, "c")
        sim.run(100 * NS)
        assert done == [25 * NS]

    def test_connect_after_traffic_rejected(self, sim):
        host_a = Host(sim, "a")
        host_b = Host(sim, "b")

        def caller():
            yield from host_a.obj.put(1)

        sim.spawn(caller, "c")
        sim.run(10 * NS)
        with pytest.raises(SimulationError):
            host_a.obj.connect(host_b.obj)

    def test_fairness_index(self, sim):
        host = Host(sim, "h")
        stats = host.obj.stats
        assert stats.fairness_index() == 1.0
        stats.grants_by_client = {"a": 5, "b": 5}
        assert stats.fairness_index() == 1.0
        stats.grants_by_client = {"a": 10, "b": 0}
        assert stats.fairness_index() == pytest.approx(0.5)
