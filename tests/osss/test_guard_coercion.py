"""guard_true coercion: 0/1-like guard results are accepted, anything
that is not clearly a truth value still raises."""

import pytest

from repro.errors import SimulationError
from repro.osss.guarded_method import guarded_method


class Cell:
    def __init__(self, guard_value):
        self.guard_value = guard_value

    @guarded_method(lambda self: self.guard_value)
    def act(self):
        return "ran"

    @guarded_method()
    def always(self):
        return "open"


def guard_of(value):
    return type(Cell(value)).__dict__["act"].guard_true(Cell(value))


class TestPassThrough:
    def test_true_false_untouched(self):
        assert guard_of(True) is True
        assert guard_of(False) is False

    def test_unguarded_method_is_open(self):
        descriptor = Cell.__dict__["always"]
        assert descriptor.guard_true(Cell(None)) is True


class TestCoercion:
    @pytest.mark.parametrize("value,expected", [
        (1, True),
        (0, False),
        (1.0, True),
        (0.0, False),
    ])
    def test_zero_one_like_coerced(self, value, expected):
        assert guard_of(value) is expected

    def test_result_is_a_real_bool(self):
        assert isinstance(guard_of(1), bool)


class TestRejection:
    @pytest.mark.parametrize("value", [2, -1, 0.5, "yes", "", [], [1], None])
    def test_non_truth_values_raise(self, value):
        with pytest.raises(SimulationError, match="expected bool"):
            guard_of(value)
