"""Unit tests for hardware-oriented polymorphism."""

import pytest

from repro.errors import SimulationError
from repro.osss import PolymorphicVar


class Shape:
    def area(self):
        raise NotImplementedError

    def sides(self):
        raise NotImplementedError


class Square(Shape):
    def __init__(self, edge=2):
        self.edge = edge

    def area(self):
        return self.edge * self.edge

    def sides(self):
        return 4


class Triangle(Shape):
    def __init__(self, base=3, height=4):
        self.base = base
        self.height = height

    def area(self):
        return self.base * self.height // 2

    def sides(self):
        return 3


class Pentagon(Shape):
    def area(self):
        return 10

    def sides(self):
        return 5


class TestBoundedSet:
    def test_variants_must_subclass_base(self):
        with pytest.raises(SimulationError):
            PolymorphicVar(Shape, [Square, int])

    def test_duplicates_rejected(self):
        with pytest.raises(SimulationError):
            PolymorphicVar(Shape, [Square, Square])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            PolymorphicVar(Shape, [])

    def test_assignment_outside_set_rejected(self):
        var = PolymorphicVar(Shape, [Square, Triangle])
        with pytest.raises(SimulationError):
            var.assign(Pentagon())

    def test_exact_class_required(self):
        class FancySquare(Square):
            pass

        var = PolymorphicVar(Shape, [Square])
        with pytest.raises(SimulationError):
            var.assign(FancySquare())


class TestDispatch:
    def test_late_binding(self):
        var = PolymorphicVar(Shape, [Square, Triangle])
        var.assign(Square(3))
        assert var.call("area") == 9
        var.assign(Triangle(6, 2))
        assert var.call("area") == 6

    def test_tag_follows_variant_order(self):
        var = PolymorphicVar(Shape, [Square, Triangle, Pentagon])
        var.assign(Triangle())
        assert var.tag == 1
        var.assign(Pentagon())
        assert var.tag == 2

    def test_tag_bits(self):
        assert PolymorphicVar(Shape, [Square]).tag_bits == 1
        assert PolymorphicVar(Shape, [Square, Triangle]).tag_bits == 1
        assert PolymorphicVar(Shape, [Square, Triangle, Pentagon]).tag_bits == 2

    def test_method_must_be_on_base(self):
        class Labelled(Square):
            def label(self):
                return "sq"

        var = PolymorphicVar(Shape, [Labelled])
        var.assign(Labelled())
        with pytest.raises(SimulationError):
            var.call("label")

    def test_unassigned_read_rejected(self):
        var = PolymorphicVar(Shape, [Square])
        with pytest.raises(SimulationError):
            var.call("area")
        assert not var.is_valid

    def test_clear(self):
        var = PolymorphicVar(Shape, [Square])
        var.assign(Square())
        var.clear()
        assert not var.is_valid

    def test_dispatch_table(self):
        var = PolymorphicVar(Shape, [Square, Triangle])
        table = var.dispatch_table("area")
        assert set(table) == {0, 1}
        assert table[0](Square(4)) == 16
        assert table[1](Triangle(2, 2)) == 2

    def test_interface_methods(self):
        var = PolymorphicVar(Shape, [Square])
        assert var.interface_methods() == ("area", "sides")
