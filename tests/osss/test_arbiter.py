"""Unit and property tests for the scheduling algorithms."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ArbitrationError
from repro.kernel import Simulator
from repro.osss import (
    FcfsArbiter,
    MethodRequest,
    RandomArbiter,
    RoundRobinArbiter,
    StaticPriorityArbiter,
    make_arbiter,
)


def _request(client, arrival=0, priority=0):
    sim = Simulator()
    from repro.kernel.event import Event

    return MethodRequest(
        client=client,
        method="m",
        args=(),
        kwargs={},
        arrival_time=arrival,
        done_event=Event(sim.scheduler, "done"),
        priority=priority,
    )


class TestFcfs:
    def test_earliest_arrival_wins(self):
        arbiter = FcfsArbiter()
        late = _request("a", arrival=10)
        early = _request("b", arrival=5)
        assert arbiter.select([late, early]) is early

    def test_ties_broken_by_submission_order(self):
        arbiter = FcfsArbiter()
        first = _request("a", arrival=7)
        second = _request("b", arrival=7)
        assert arbiter.select([second, first]) is first

    def test_empty_rejected(self):
        with pytest.raises(ArbitrationError):
            FcfsArbiter().select([])


class TestRoundRobin:
    def test_rotation(self):
        arbiter = RoundRobinArbiter()
        a, b, c = _request("a"), _request("b"), _request("c")
        assert arbiter.select([a, b, c]).client == "a"
        # a rotates to the back: b now wins.
        a2 = _request("a")
        assert arbiter.select([a2, b, c]).client == "b"
        assert arbiter.select([a2, _request("b"), c]).client == "c"
        assert arbiter.select([a2, _request("b"), _request("c")]).client == "a"

    def test_absent_clients_skipped(self):
        arbiter = RoundRobinArbiter()
        arbiter.select([_request("a"), _request("b")])
        # Only a requests now; it wins despite having just been served.
        assert arbiter.select([_request("a")]).client == "a"


class TestStaticPriority:
    def test_lowest_number_wins(self):
        arbiter = StaticPriorityArbiter({"low": 10, "high": 1})
        low = _request("low")
        high = _request("high")
        assert arbiter.select([low, high]) is high

    def test_default_priority_for_unknown(self):
        arbiter = StaticPriorityArbiter({"vip": 1}, default_priority=50)
        assert arbiter.priority_of("vip") == 1
        assert arbiter.priority_of("anyone") == 50

    def test_equal_priority_falls_back_to_fcfs(self):
        arbiter = StaticPriorityArbiter({})
        early = _request("a", arrival=1)
        late = _request("b", arrival=2)
        assert arbiter.select([late, early]) is early


class TestRandom:
    def test_deterministic_for_seed(self):
        requests = [_request(c) for c in "abcd"]
        picks_1 = [RandomArbiter(seed=3).select(requests).client for __ in range(5)]
        picks_2 = [RandomArbiter(seed=3).select(requests).client for __ in range(5)]
        assert picks_1 == picks_2

    def test_selects_within_eligible(self):
        arbiter = RandomArbiter(seed=9)
        requests = [_request(c) for c in "ab"]
        for __ in range(20):
            assert arbiter.select(requests) in requests

    def test_spreads_over_clients(self):
        arbiter = RandomArbiter(seed=1)
        requests = [_request(c) for c in "abcd"]
        picks = {arbiter.select(requests).client for __ in range(50)}
        assert len(picks) >= 3


class TestFactory:
    def test_known_kinds(self):
        for kind in ("fcfs", "round_robin", "static_priority", "random"):
            assert make_arbiter(kind).kind == kind

    def test_unknown_kind(self):
        with pytest.raises(ArbitrationError):
            make_arbiter("coin_flip")


# -- properties ---------------------------------------------------------------

client_names = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5, unique=True
)


@given(client_names, st.integers(min_value=0, max_value=3))
def test_every_arbiter_selects_from_eligible(clients, which):
    arbiter = [FcfsArbiter(), RoundRobinArbiter(),
               StaticPriorityArbiter({}), RandomArbiter(seed=7)][which]
    requests = [_request(c, arrival=i) for i, c in enumerate(clients)]
    chosen = arbiter.select(requests)
    assert chosen in requests


@given(client_names)
def test_round_robin_no_starvation(clients):
    """Every persistent requester is served within len(clients) grants."""
    arbiter = RoundRobinArbiter()
    served = set()
    for __ in range(len(clients)):
        requests = [_request(c) for c in clients]
        served.add(arbiter.select(requests).client)
    assert served == set(clients)
