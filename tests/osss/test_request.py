"""Unit tests for method requests and servicing statistics."""

from repro.kernel import Simulator
from repro.kernel.event import Event
from repro.osss import MethodRequest, RequestStats


def _request(client="c", method="m", arrival=0, priority=0):
    sim = Simulator()
    return MethodRequest(
        client=client,
        method=method,
        args=(1, 2),
        kwargs={"k": 3},
        arrival_time=arrival,
        done_event=Event(sim.scheduler, "done"),
        priority=priority,
    )


class TestMethodRequest:
    def test_initial_state(self):
        request = _request()
        assert not request.completed
        assert request.error is None
        assert request.grant_time is None
        assert request.args == (1, 2)
        assert request.kwargs == {"k": 3}

    def test_sequence_numbers_monotonic(self):
        first = _request()
        second = _request()
        assert second.seq > first.seq

    def test_wait_time(self):
        request = _request(arrival=100)
        assert request.wait_time == 0  # never granted
        request.grant_time = 250
        assert request.wait_time == 150

    def test_repr_reflects_state(self):
        request = _request(client="app", method="go")
        assert "pending" in repr(request)
        request.completed = True
        assert "done" in repr(request)


class TestRequestStats:
    def test_grant_and_completion_bookkeeping(self):
        stats = RequestStats()
        request = _request(client="a", arrival=10)
        request.grant_time = 30
        stats.record_grant(request, 30)
        stats.record_completion(request)
        assert stats.grants_by_client == {"a": 1}
        assert stats.grant_log == [(30, "a", "m")]
        assert stats.total_completed == 1
        assert stats.wait_times == [20]

    def test_mean_and_max_wait(self):
        stats = RequestStats()
        for arrival, grant in ((0, 10), (0, 30)):
            request = _request(arrival=arrival)
            request.grant_time = grant
            stats.record_completion(request)
        assert stats.mean_wait_time == 20.0
        assert stats.max_wait_time == 30

    def test_empty_stats(self):
        stats = RequestStats()
        assert stats.mean_wait_time == 0.0
        assert stats.max_wait_time == 0
        assert stats.fairness_index() == 1.0

    def test_fairness_values(self):
        stats = RequestStats()
        stats.grants_by_client = {"a": 1, "b": 1, "c": 1}
        assert stats.fairness_index() == 1.0
        stats.grants_by_client = {"a": 3, "b": 0, "c": 0}
        assert 0.3 < stats.fairness_index() < 0.4
