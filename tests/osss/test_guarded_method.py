"""Unit tests for the guarded-method decorator."""

import pytest

from repro.errors import SimulationError
from repro.osss import (
    GuardedMethodDescriptor,
    guarded_method,
    guarded_methods_of,
    is_guarded,
)


class Counter:
    def __init__(self):
        self.value = 0
        self.limit = 3

    @guarded_method(lambda self: self.value < self.limit)
    def increment(self):
        self.value += 1
        return self.value

    @guarded_method()
    def read(self):
        return self.value

    def plain(self):
        return "plain"


class SaturatingCounter(Counter):
    @guarded_method(lambda self: self.value > 0)
    def decrement(self):
        self.value -= 1
        return self.value


class TestDescriptor:
    def test_discovery(self):
        methods = guarded_methods_of(Counter)
        assert set(methods) == {"increment", "read"}
        assert is_guarded(Counter, "increment")
        assert not is_guarded(Counter, "plain")

    def test_inheritance_adds_methods(self):
        methods = guarded_methods_of(SaturatingCounter)
        assert set(methods) == {"increment", "read", "decrement"}

    def test_direct_invocation_behaves_like_method(self):
        counter = Counter()
        assert counter.increment() == 1
        assert counter.value == 1

    def test_class_access_returns_descriptor(self):
        assert isinstance(Counter.increment, GuardedMethodDescriptor)

    def test_guard_evaluation(self):
        counter = Counter()
        descriptor = guarded_methods_of(Counter)["increment"]
        assert descriptor.guard_true(counter)
        counter.value = 3
        assert not descriptor.guard_true(counter)

    def test_unguarded_is_always_true(self):
        descriptor = guarded_methods_of(Counter)["read"]
        assert descriptor.guard_true(Counter())

    def test_non_bool_guard_rejected(self):
        class Bad:
            @guarded_method(lambda self: 42)
            def method(self):
                pass

        descriptor = guarded_methods_of(Bad)["method"]
        with pytest.raises(SimulationError):
            descriptor.guard_true(Bad())

    def test_invoke_passes_arguments(self):
        class Adder:
            @guarded_method()
            def add(self, a, b=10):
                return a + b

        descriptor = guarded_methods_of(Adder)["add"]
        assert descriptor.invoke(Adder(), 1) == 11
        assert descriptor.invoke(Adder(), 1, b=2) == 3

    def test_docstring_preserved(self):
        class Documented:
            @guarded_method()
            def method(self):
                """The docs."""

        assert guarded_methods_of(Documented)["method"].__doc__ == "The docs."
