"""Tests for the campaign lint rule FLT001 (unobserved fault targets)."""

from repro.fault import CampaignSpec, FaultSpec, demo_campaign_spec
from repro.lint import lint_campaign


def _spec(faults):
    return CampaignSpec("lint-test", faults, platform="pci",
                        n_apps=1, commands_per_app=2)


class TestFlt001:
    def test_demo_campaign_is_clean(self):
        report = lint_campaign(demo_campaign_spec("pci", runs=6))
        assert not [d for d in report.diagnostics
                    if d.rule_id == "FLT001"]

    def test_unobserved_signal_target_warns(self):
        report = lint_campaign(_spec([
            FaultSpec("stuck_at", "top.clock.clk", params={"value": 0}),
        ]))
        findings = [d for d in report.diagnostics if d.rule_id == "FLT001"]
        assert len(findings) == 1
        assert findings[0].path == "top.clock.clk"
        assert "unobserved" in findings[0].message
        assert findings[0].hint

    def test_mixed_line_with_observed_target_passes(self):
        # The glob also matches monitored bus wires, so the line can
        # produce detections and must not warn.
        report = lint_campaign(_spec([
            FaultSpec("bit_flip", "top.*", params={"bit": 0}),
        ]))
        assert not [d for d in report.diagnostics
                    if d.rule_id == "FLT001"]

    def test_channel_lines_out_of_scope(self):
        report = lint_campaign(_spec([
            FaultSpec("delayed_grant", "top.interface.channel"),
        ]))
        assert not [d for d in report.diagnostics
                    if d.rule_id == "FLT001"]

    def test_suppressible_like_any_rule(self):
        from repro.lint import LintConfig

        report = lint_campaign(
            _spec([FaultSpec("stuck_at", "top.clock.clk",
                             params={"value": 0})]),
            config=LintConfig(suppress=["FLT001"]),
        )
        assert not report.diagnostics
        assert report.suppressed == 1
