"""The PR's acceptance scenario: the stock campaign on the Figure-4
PCI platform, end to end through the parallel runner.

The full-size campaign is ``slow``; a truncated smoke version keeps the
subsystem exercised in every tier-1 run.
"""

import pytest

from repro.fault import (
    BENIGN,
    CLASSIFICATIONS,
    DETECTED,
    classify_counts,
    demo_campaign_spec,
    detection_coverage,
    run_campaign,
)


def _fingerprint(result):
    return [
        (o.run_id, o.kind, o.target_path, o.window, o.classification)
        for o in result.outcomes
    ]


class TestSmoke:
    def test_truncated_demo_classifies_cleanly(self):
        result = run_campaign(
            demo_campaign_spec("pci", seed=11, runs=12),
            workers=2, max_runs=12,
        )
        counts = classify_counts(result.outcomes)
        assert len(result.outcomes) == 12
        assert counts["error"] == 0
        assert counts["timeout"] == 0
        assert len({o.kind for o in result.outcomes}) >= 2
        assert all(o.classification in CLASSIFICATIONS
                   for o in result.outcomes)


@pytest.mark.slow
class TestAcceptance:
    def test_full_demo_campaign(self):
        spec = demo_campaign_spec("pci", seed=11, runs=60)
        result = run_campaign(spec, workers=2)
        counts = classify_counts(result.outcomes)

        assert len(result.outcomes) >= 50
        assert len({o.kind for o in result.outcomes}) >= 3
        assert counts[DETECTED] >= 1
        assert counts[BENIGN] >= 1
        assert counts["error"] == 0
        coverage = detection_coverage(result.outcomes)
        assert coverage is not None and 0.0 < coverage < 1.0

    def test_identical_seeds_identical_classifications(self):
        spec = demo_campaign_spec("pci", seed=29, runs=60)
        first = run_campaign(spec, workers=2, max_runs=30)
        second = run_campaign(
            demo_campaign_spec("pci", seed=29, runs=60),
            workers=1, max_runs=30,
        )
        assert _fingerprint(first) == _fingerprint(second)
