"""Span tracing inside fault-campaign workers.

The SpanTracer is an ordinary probe-bus subscriber, so it follows the
same discipline as the DetectionLog: every worker process rebuilds the
platform from the picklable CampaignSpec and re-attaches its own
tracer, which must make serial and parallel campaigns report identical
span statistics — and must never change how runs classify.
"""

from repro.fault import CampaignSpec, FaultSpec, run_campaign


def _spec(trace_spans=True, seed=23):
    return CampaignSpec(
        "span-trace-test",
        [
            FaultSpec("stuck_at", "top.bus.devsel_n", repeats=2,
                      params={"value": 1}),
            FaultSpec("dropped_request", "top.interface.channel",
                      repeats=2, params={"method": "put_command"}),
        ],
        platform="pci",
        seed=seed,
        n_apps=2,
        commands_per_app=4,
        trace_spans=trace_spans,
    )


def _span_fingerprint(result):
    return [
        (o.run_id, o.classification, o.spans_assembled, o.span_mean_latency)
        for o in result.outcomes
    ]


class TestCampaignSpanTracing:
    def test_outcomes_carry_span_statistics(self):
        result = run_campaign(_spec(), workers=1)
        traced = [o for o in result.outcomes if o.spans_assembled > 0]
        assert traced, "no run assembled any spans"
        for outcome in traced:
            assert outcome.span_mean_latency > 0

    def test_serial_and_parallel_span_stats_agree(self):
        serial = run_campaign(_spec(), workers=1)
        parallel = run_campaign(_spec(), workers=2)
        assert _span_fingerprint(serial) == _span_fingerprint(parallel)

    def test_tracing_does_not_change_classifications(self):
        traced = run_campaign(_spec(trace_spans=True), workers=1)
        untraced = run_campaign(_spec(trace_spans=False), workers=1)
        assert (
            [o.classification for o in traced.outcomes]
            == [o.classification for o in untraced.outcomes]
        )
        assert all(o.spans_assembled == 0 for o in untraced.outcomes)
        assert all(o.span_mean_latency == 0 for o in untraced.outcomes)

    def test_outcome_dict_includes_span_fields(self):
        result = run_campaign(_spec(), workers=1, max_runs=1)
        record = result.outcomes[0].to_dict()
        assert "spans_assembled" in record
        assert "span_mean_latency" in record
