"""Tests for the parallel campaign runner and the report renderers."""

import json

from repro.fault import (
    CampaignSpec,
    FaultSpec,
    default_workers,
    demo_campaign_spec,
    per_kind_breakdown,
    render_report,
    report_as_dict,
    report_as_json,
    run_campaign,
)


def _small_spec(seed=19):
    return CampaignSpec(
        "runner-test",
        [
            FaultSpec("stuck_at", "top.bus.devsel_n", repeats=3,
                      params={"value": 1}),
            FaultSpec("dropped_request", "top.interface.channel",
                      repeats=3, params={"method": "put_command"}),
        ],
        platform="pci",
        seed=seed,
        n_apps=2,
        commands_per_app=4,
    )


def _fingerprint(result):
    """Everything that must be invariant across runner modes/reruns."""
    return [
        (o.run_id, o.kind, o.target_path, o.window, o.classification,
         o.detail, o.activations)
        for o in result.outcomes
    ]


class TestRunner:
    def test_serial_and_parallel_agree(self):
        serial = run_campaign(_small_spec(), workers=1)
        parallel = run_campaign(_small_spec(), workers=2)
        assert serial.workers == 1
        assert parallel.workers == 2
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_same_seed_reproduces_classifications(self):
        first = run_campaign(_small_spec(seed=5), workers=1)
        second = run_campaign(_small_spec(seed=5), workers=1)
        assert _fingerprint(first) == _fingerprint(second)

    def test_outcomes_sorted_by_run_id(self):
        result = run_campaign(_small_spec(), workers=2)
        assert [o.run_id for o in result.outcomes] == list(range(6))

    def test_max_runs_truncates(self):
        result = run_campaign(_small_spec(), workers=1, max_runs=2)
        assert len(result.outcomes) == 2

    def test_progress_callback_sees_every_run(self):
        seen = []
        run_campaign(_small_spec(), workers=1,
                     progress=lambda o: seen.append(o.run_id))
        assert sorted(seen) == list(range(6))

    def test_throughput_accounting(self):
        result = run_campaign(_small_spec(), workers=1, max_runs=2)
        assert result.wall_seconds > 0
        assert result.runs_per_second > 0

    def test_default_workers_at_least_one(self):
        assert default_workers() >= 1


class TestReport:
    def _result(self):
        return run_campaign(demo_campaign_spec("pci", seed=11, runs=12),
                            workers=1, max_runs=12)

    def test_render_mentions_kinds_and_coverage(self):
        result = self._result()
        text = render_report(result)
        assert "demo-pci" in text
        assert "detection coverage" in text
        assert "stuck_at" in text
        assert "runs/s" in text

    def test_verbose_render_has_per_run_rows(self):
        result = self._result()
        text = render_report(result, verbose=True)
        assert "\n000  " in text
        assert "detail" in text

    def test_dict_report_shape(self):
        result = self._result()
        data = report_as_dict(result)
        assert data["campaign"] == "demo-pci"
        assert data["runs"] == 12
        assert sum(data["classifications"].values()) == 12
        assert len(data["outcomes"]) == 12
        assert data["golden"]["horizon"] > 0
        assert set(per_kind_breakdown(result)) == \
            {o.kind for o in result.outcomes}

    def test_json_report_parses(self):
        result = self._result()
        assert json.loads(report_as_json(result))["campaign"] == "demo-pci"
