"""Campaign telemetry: scorecards, flight records and live progress.

These run real campaigns (small ones), so each test costs a golden
reference plus a handful of bounded simulations.
"""

import collections
import json
import os

import pytest

from repro.fault import run_campaign
from repro.fault.campaign import WORKER_ERROR, flight_record_path
from repro.fault.report import merged_telemetry, render_report, report_as_dict
from repro.fault.spec import demo_campaign_spec
from repro.telemetry.progress import CampaignProgress


def _spec(runs=6, **overrides):
    spec = demo_campaign_spec(platform="pci", seed=11, runs=runs)
    for name, value in overrides.items():
        setattr(spec, name, value)
    return spec


class TestCampaignScorecards:
    def test_outcomes_carry_scores(self):
        result = run_campaign(_spec(telemetry=True), max_runs=4)
        scored = [o for o in result.outcomes if o.score]
        assert len(scored) == 4
        for outcome in scored:
            assert outcome.score["bus"] == "pci"
            assert outcome.score["level"] == "functional"
            assert outcome.to_dict()["telemetry"] == outcome.score

    def test_telemetry_off_by_default(self):
        result = run_campaign(_spec(), max_runs=2)
        assert all(o.score is None for o in result.outcomes)
        assert merged_telemetry(result) is None
        assert report_as_dict(result)["telemetry"] is None
        assert "telemetry:" not in render_report(result)

    def test_serial_and_pool_merge_to_identical_digests(self):
        serial = run_campaign(_spec(telemetry=True), workers=1, max_runs=6)
        pooled = run_campaign(_spec(telemetry=True), workers=2, max_runs=6)
        merged_serial = merged_telemetry(serial).to_dict()
        merged_pooled = merged_telemetry(pooled).to_dict()
        assert merged_serial == merged_pooled
        assert merged_serial["transactions"] > 0
        assert merged_serial["latency"]["count"] > 0

    def test_report_renders_telemetry_line(self):
        result = run_campaign(_spec(telemetry=True), max_runs=3)
        text = render_report(result)
        assert "telemetry:" in text
        assert "p50/p95/p99" in text


class TestFlightRecords:
    def test_every_run_dumps_a_record(self, tmp_path):
        spec = _spec(flight_record_dir=str(tmp_path))
        result = run_campaign(spec, max_runs=3)
        for outcome in result.outcomes:
            path = flight_record_path(str(tmp_path), outcome.run_id)
            assert os.path.exists(path)
            with open(path) as stream:
                header = json.loads(stream.readline())
            assert header["type"] == "header"
            assert header["run_id"] == outcome.run_id
            assert header["classification"] == outcome.classification
            assert header["retained"] > 0

    def test_records_replay_through_loader(self, tmp_path):
        from repro.telemetry.recorder import (
            load_flight_record,
            render_flight_record,
        )

        spec = _spec(flight_record_dir=str(tmp_path))
        run_campaign(spec, max_runs=1)
        header, events = load_flight_record(
            flight_record_path(str(tmp_path), 0)
        )
        kinds = {event["kind"] for event in events}
        assert "run.start" in kinds and "run.end" in kinds
        assert any(k.startswith("method.") for k in kinds)
        text = render_flight_record(header, events)
        assert "run.end" in text

    @pytest.mark.parametrize("workers", [1, 2])
    def test_worker_error_leaves_post_mortem_stub(self, tmp_path, workers):
        spec = _spec(
            flight_record_dir=str(tmp_path / f"w{workers}"),
            crash_run_ids=(1,),
        )
        result = run_campaign(spec, workers=workers, max_runs=3)
        assert result.outcomes[1].classification == WORKER_ERROR
        with open(flight_record_path(spec.flight_record_dir, 1)) as stream:
            stub = json.loads(stream.readline())
        assert stub["post_mortem_stub"] is True
        assert stub["classification"] == WORKER_ERROR
        assert stub["retained"] == 0
        # The healthy siblings still dumped real records.
        with open(flight_record_path(spec.flight_record_dir, 0)) as stream:
            assert json.loads(stream.readline())["retained"] > 0


class TestLiveProgress:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_monitor_sees_every_run(self, workers):
        monitor = CampaignProgress()
        result = run_campaign(
            _spec(), workers=workers, max_runs=4, monitor=monitor
        )
        assert monitor.total == 4
        assert monitor.completed == 4
        assert monitor.done
        assert monitor.heartbeats >= 4
        assert sum(monitor.classifications.values()) == 4
        assert monitor.classifications == dict(
            collections.Counter(o.classification for o in result.outcomes)
        )

    def test_snapshot_is_json_ready(self):
        monitor = CampaignProgress()
        run_campaign(_spec(), max_runs=2, monitor=monitor)
        snapshot = monitor.snapshot()
        json.dumps(snapshot)
        assert snapshot["done"] is True
        assert snapshot["completed"] == 2
