"""Tests for golden planning and single-run classification.

These run real (small) platforms, so each test costs a platform build
plus one or two bounded simulations.
"""

import pytest

from repro.fault import (
    BENIGN,
    DETECTED,
    SILENT,
    CampaignSpec,
    FaultSpec,
    RunOutcome,
    RunSpec,
    classify_counts,
    detection_coverage,
    execute_run,
    injectable_targets,
    build_campaign_platform,
    plan_campaign,
    run_golden,
)


def _spec(faults, **kwargs):
    kwargs.setdefault("platform", "pci")
    kwargs.setdefault("n_apps", 2)
    kwargs.setdefault("commands_per_app", 4)
    return CampaignSpec("campaign-test", faults, **kwargs)


@pytest.fixture(scope="module")
def golden_and_horizon():
    spec = _spec([FaultSpec("stuck_at", "top.bus.devsel_n")])
    golden = run_golden(spec)
    return spec, golden


class TestPlanning:
    def test_golden_reference_is_populated(self, golden_and_horizon):
        __, golden = golden_and_horizon
        assert golden.horizon > 0
        assert sum(len(t) for t in golden.traces.values()) == 8
        assert len(golden.image) > 0

    def test_injectable_targets_cover_bus_and_channel(self):
        spec = _spec([FaultSpec("stuck_at", "top.bus.devsel_n")])
        bundle = build_campaign_platform(spec)
        signal_paths, channel_paths = injectable_targets(bundle)
        assert "top.bus.ad" in signal_paths
        assert "top.interface.channel" in channel_paths

    def test_plan_expands_against_probe_build(self):
        spec = _spec([
            FaultSpec("stuck_at", "top.bus.devsel_n", repeats=2,
                      params={"value": 1}),
            FaultSpec("delayed_grant", "top.interface.channel"),
        ])
        golden, runs = plan_campaign(spec)
        assert len(runs) == 3
        assert {r.kind for r in runs} == {"stuck_at", "delayed_grant"}


class TestClassification:
    def _run(self, spec, kind, target, window, params):
        golden = run_golden(spec)
        run = RunSpec(0, kind, target, window, params)
        return execute_run(spec, run, golden)

    def test_post_horizon_fault_is_benign(self, golden_and_horizon):
        spec, golden = golden_and_horizon
        run = RunSpec(
            0, "stuck_at", "top.bus.devsel_n",
            (golden.horizon * 2, golden.horizon * 2 + 1000),
            {"value": 1},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification == BENIGN
        assert outcome.detail == "fault never activated"

    def test_stuck_devsel_mid_transaction_is_detected(
        self, golden_and_horizon
    ):
        # DEVSEL# dies while the target is already transferring: the
        # monitor sees TRDY# asserted without DEVSEL#.
        spec, golden = golden_and_horizon
        run = RunSpec(
            0, "stuck_at", "top.bus.devsel_n",
            (golden.horizon // 10, golden.horizon), {"value": 1},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification == DETECTED
        assert "DEVSEL" in outcome.detail

    def test_stuck_devsel_from_reset_is_silent(self, golden_and_horizon):
        # Stuck before any transaction starts, the target is never
        # selected: masters abort quietly and no monitor rule fires —
        # a genuine coverage gap the campaign is meant to expose.
        spec, golden = golden_and_horizon
        run = RunSpec(
            0, "stuck_at", "top.bus.devsel_n", (0, golden.horizon),
            {"value": 1},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification == SILENT
        assert outcome.detections == 0

    def test_corrupted_write_data_is_silent(self):
        # All-write workload: the first put_command carries data, the
        # corruption lands in memory, and nothing on the platform
        # checks payload integrity end to end.
        spec = _spec(
            [FaultSpec("command_corruption", "top.interface.channel")],
            write_fraction=1.0,
        )
        golden = run_golden(spec)
        run = RunSpec(
            0, "command_corruption", "top.interface.channel",
            (0, golden.horizon), {"field": "data", "mask": 0xFF00},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification == SILENT
        assert "diverge" in outcome.detail
        assert outcome.activations == 1

    def test_dropped_command_trips_the_watchdog(self, golden_and_horizon):
        spec, golden = golden_and_horizon
        run = RunSpec(
            0, "dropped_request", "top.interface.channel",
            (0, golden.horizon), {"method": "put_command"},
        )
        outcome = execute_run(spec, run, golden)
        assert outcome.classification == DETECTED
        assert "deadlock watchdog" in outcome.detail

    def test_outcome_to_dict_roundtrips_window(self, golden_and_horizon):
        spec, golden = golden_and_horizon
        run = RunSpec(
            7, "stuck_at", "top.bus.devsel_n",
            (golden.horizon * 2, golden.horizon * 2 + 1000),
            {"value": 1},
        )
        data = execute_run(spec, run, golden).to_dict()
        assert data["run_id"] == 7
        assert data["window"] == [golden.horizon * 2,
                                  golden.horizon * 2 + 1000]
        assert data["classification"] == BENIGN


class TestCounting:
    def _outcomes(self, classifications):
        return [
            RunOutcome(i, "stuck_at", "x", None, c)
            for i, c in enumerate(classifications)
        ]

    def test_classify_counts(self):
        counts = classify_counts(
            self._outcomes([DETECTED, DETECTED, SILENT, BENIGN])
        )
        assert counts[DETECTED] == 2
        assert counts[SILENT] == 1
        assert counts[BENIGN] == 1
        assert counts["error"] == 0

    def test_coverage_ignores_benign(self):
        coverage = detection_coverage(
            self._outcomes([DETECTED, SILENT, SILENT, BENIGN, BENIGN])
        )
        assert coverage == pytest.approx(1 / 3)

    def test_coverage_none_without_effective_faults(self):
        assert detection_coverage(self._outcomes([BENIGN, BENIGN])) is None
