"""Tests for the durable campaign layer: journal, resume, cache.

The contract under test is byte-identity: serial, parallel and
interrupted-then-resumed executions of the same spec must produce the
same canonical report and the same merged telemetry digests, and an
identical re-invocation against a warm cache must touch no simulator
at all.
"""

import json
import os
import signal
import subprocess
import sys
import time
import zlib

import pytest

from repro.errors import JournalError
from repro.fault import (
    CampaignJournal,
    CampaignSpec,
    FaultSpec,
    ResultCache,
    RunOutcome,
    campaign_content_hash,
    campaign_fingerprint,
    demo_campaign_spec,
    report_as_json,
    resolve_workers,
    run_campaign,
)
from repro.fault.durable import decode_line, encode_line, journal_path


def _spec(seed=19, **overrides):
    spec = CampaignSpec(
        "durable-test",
        [
            FaultSpec("stuck_at", "top.bus.devsel_n", repeats=3,
                      params={"value": 1}),
            FaultSpec("dropped_request", "top.interface.channel",
                      repeats=3, params={"method": "put_command"}),
        ],
        platform="pci",
        seed=seed,
        n_apps=2,
        commands_per_app=4,
    )
    for name, value in overrides.items():
        setattr(spec, name, value)
    return spec


def _canonical(result):
    return report_as_json(result, canonical=True)


class TestContentHash:
    def test_identical_specs_hash_identically(self):
        assert campaign_content_hash(_spec()) == campaign_content_hash(_spec())

    def test_behaviour_fields_change_the_hash(self):
        base = campaign_content_hash(_spec())
        assert campaign_content_hash(_spec(seed=20)) != base
        assert campaign_content_hash(_spec(resilience=True)) != base
        assert campaign_content_hash(_spec(), max_runs=3) != base
        assert campaign_content_hash(
            _spec(crash_run_ids=(1,))
        ) != base

    def test_fault_lines_fold_into_the_hash(self):
        changed = _spec()
        changed.faults[0] = FaultSpec(
            "stuck_at", "top.bus.devsel_n", repeats=3, params={"value": 0}
        )
        assert campaign_content_hash(changed) != campaign_content_hash(_spec())

    def test_observability_knobs_do_not(self, tmp_path):
        noisy = _spec(flight_record_dir=str(tmp_path), flight_record_capacity=7)
        assert campaign_content_hash(noisy) == campaign_content_hash(_spec())

    def test_fingerprint_names_builder_and_version(self):
        document = campaign_fingerprint(_spec())
        assert "build_platform(bus='pci')" in document["builder"]
        assert document["repro_version"]


class TestEnvelope:
    def test_round_trip(self):
        payload = {"type": "event", "event": "quarantine", "run_id": 3}
        assert decode_line(encode_line(payload)) == payload

    def test_checksum_mismatch_raises(self):
        line = encode_line({"type": "outcome", "x": 1})
        corrupted = line.replace('"x":1', '"x":2')
        with pytest.raises(ValueError):
            decode_line(corrupted)


class TestJournal:
    def test_create_then_resume_replays_outcomes(self, tmp_path):
        spec = _spec()
        first = run_campaign(spec, workers=1, journal_dir=str(tmp_path))
        journal, outcomes, truncated = CampaignJournal.open_resume(
            str(tmp_path), spec
        )
        journal.close()
        assert not truncated
        assert sorted(outcomes) == [o.run_id for o in first.outcomes]
        assert all(
            outcomes[o.run_id].classification == o.classification
            for o in first.outcomes
        )

    def test_header_binds_spec_hash(self, tmp_path):
        spec = _spec()
        run_campaign(spec, workers=1, journal_dir=str(tmp_path))
        with open(journal_path(str(tmp_path)), encoding="utf-8") as stream:
            header = decode_line(stream.readline())
        assert header["type"] == "header"
        assert header["spec_hash"] == campaign_content_hash(spec)
        assert header["campaign"] == spec.name

    def test_resume_refuses_a_different_campaign(self, tmp_path):
        run_campaign(_spec(), workers=1, journal_dir=str(tmp_path))
        with pytest.raises(JournalError, match="different campaign"):
            CampaignJournal.open_resume(str(tmp_path), _spec(seed=20))

    def test_resume_refuses_mismatched_max_runs(self, tmp_path):
        run_campaign(_spec(), workers=1, journal_dir=str(tmp_path))
        with pytest.raises(JournalError, match="different campaign"):
            CampaignJournal.open_resume(str(tmp_path), _spec(), max_runs=3)

    def test_torn_tail_is_truncated(self, tmp_path):
        spec = _spec()
        run_campaign(spec, workers=1, journal_dir=str(tmp_path))
        path = journal_path(str(tmp_path))
        with open(path, "r", encoding="utf-8") as stream:
            whole = stream.read()
        # Tear the last line mid-write, the signature of a SIGKILL.
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(whole[:-20])
        journal, outcomes, truncated = CampaignJournal.open_resume(
            str(tmp_path), spec
        )
        journal.close()
        assert truncated
        assert len(outcomes) == 5  # the torn sixth outcome is gone
        # The tail was physically truncated: a second open is clean.
        journal, outcomes2, truncated2 = CampaignJournal.open_resume(
            str(tmp_path), spec
        )
        journal.close()
        assert not truncated2
        assert sorted(outcomes2) == sorted(outcomes)

    def test_midfile_corruption_refuses(self, tmp_path):
        spec = _spec()
        run_campaign(spec, workers=1, journal_dir=str(tmp_path))
        path = journal_path(str(tmp_path))
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        document = json.loads(lines[2])
        document["payload"]["outcome"]["classification"] = "benign"
        lines[2] = json.dumps(document)  # payload edited, crc now stale
        with open(path, "w", encoding="utf-8") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 3"):
            CampaignJournal.open_resume(str(tmp_path), spec)

    def test_empty_journal_refuses(self, tmp_path):
        open(journal_path(str(tmp_path)), "w").close()
        with pytest.raises(JournalError, match="empty"):
            CampaignJournal.open_resume(str(tmp_path), _spec())

    def test_missing_journal_refuses(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            CampaignJournal.open_resume(str(tmp_path), _spec())

    def test_header_only_journal_reruns_everything(self, tmp_path):
        spec = _spec()
        journal = CampaignJournal.create(str(tmp_path), spec, total_runs=6)
        journal.close()
        result = run_campaign(spec, workers=1, resume_from=str(tmp_path))
        assert result.resumed == 0
        assert len(result.outcomes) == 6


class TestResume:
    def test_resume_is_byte_identical_serial_and_parallel(self, tmp_path):
        spec = _spec(crash_run_ids=(1, 3))
        baseline = _canonical(run_campaign(spec, workers=1))
        # Serial journaled run, then resume (worker_error runs re-run).
        serial_dir = tmp_path / "serial"
        run_campaign(spec, workers=1, journal_dir=str(serial_dir))
        resumed_serial = run_campaign(
            spec, workers=1, resume_from=str(serial_dir)
        )
        assert _canonical(resumed_serial) == baseline
        # Parallel journaled run, then parallel resume.
        pool_dir = tmp_path / "pool"
        run_campaign(spec, workers=2, journal_dir=str(pool_dir))
        resumed_pool = run_campaign(
            spec, workers=2, resume_from=str(pool_dir)
        )
        assert _canonical(resumed_pool) == baseline
        assert resumed_pool.resumed == 4

    def test_resume_after_partial_journal(self, tmp_path):
        spec = _spec()
        full = run_campaign(spec, workers=1, journal_dir=str(tmp_path))
        path = journal_path(str(tmp_path))
        # Keep the header and the first three outcome lines: the state
        # a killed campaign leaves behind.
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        with open(path, "w", encoding="utf-8") as stream:
            stream.write("\n".join(lines[:4]) + "\n")
        resumed = run_campaign(spec, workers=1, resume_from=str(tmp_path))
        assert resumed.resumed == 3
        assert _canonical(resumed) == _canonical(full)
        # The journal now holds all six outcomes again.
        __, outcomes, __ = CampaignJournal.open_resume(str(tmp_path), spec)
        assert len(outcomes) == 6

    def test_resume_merges_telemetry_identically(self, tmp_path):
        from repro.fault.report import merged_telemetry

        spec = _spec(telemetry=True)
        full = run_campaign(spec, workers=1)
        jdir = str(tmp_path)
        run_campaign(spec, workers=1, journal_dir=jdir, max_runs=6)
        path = journal_path(jdir)
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        with open(path, "w", encoding="utf-8") as stream:
            stream.write("\n".join(lines[:3]) + "\n")
        resumed = run_campaign(spec, workers=2, resume_from=jdir, max_runs=6)
        want = merged_telemetry(full)
        got = merged_telemetry(resumed)
        assert want is not None and got is not None
        assert got.to_dict() == {**want.to_dict(), "label": got.label}


class TestResultCache:
    def test_identical_rerun_is_all_hits_and_builds_nothing(
        self, tmp_path, monkeypatch
    ):
        spec = _spec()
        cold = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(cold.outcomes)

        # A warm re-invocation may touch no simulator: planning and
        # execution both come from the cache.
        import repro.fault.campaign as campaign_mod
        import repro.fault.runner as runner_mod

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit was supposed to skip this")

        monkeypatch.setattr(campaign_mod, "execute_run", explode)
        monkeypatch.setattr(runner_mod, "execute_run", explode)
        monkeypatch.setattr(runner_mod, "plan_campaign", explode)
        warm = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        assert warm.cache_hits == len(cold.outcomes)
        assert warm.cache_misses == 0
        assert _canonical(warm) == _canonical(cold)

    def test_different_seed_misses(self, tmp_path):
        run_campaign(_spec(), workers=1, cache_dir=str(tmp_path))
        other = run_campaign(_spec(seed=20), workers=1, cache_dir=str(tmp_path))
        assert other.cache_hits == 0

    def test_corrupt_cache_entry_is_a_miss_not_an_error(self, tmp_path):
        spec = _spec()
        cold = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        entry = ResultCache(str(tmp_path)).entry(cold.content_hash)
        victim = entry.outcome_path(cold.outcomes[0].run_id)
        with open(victim, "w", encoding="utf-8") as stream:
            stream.write("garbage\n")
        warm = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        assert warm.cache_misses == 1
        assert warm.cache_hits == len(cold.outcomes) - 1
        assert _canonical(warm) == _canonical(cold)

    def test_worker_errors_are_never_cached(self, tmp_path):
        spec = _spec(crash_run_ids=(0,))
        cold = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        assert cold.outcomes[0].classification == "worker_error"
        warm = run_campaign(spec, workers=1, cache_dir=str(tmp_path))
        # The crashed run re-executes; the content runs hit.
        assert warm.cache_misses == 1
        assert warm.cache_hits == len(cold.outcomes) - 1
        assert _canonical(warm) == _canonical(cold)

    def test_outcome_round_trips_through_cache_dict_form(self):
        outcome = RunOutcome(
            3, "stuck_at", "top.bus.devsel_n", (10, 20), "detected",
            detail="checker fired", activations=2, detections=1,
            wall_seconds=0.25, sim_time=1000,
        )
        clone = RunOutcome.from_dict(outcome.to_dict())
        assert clone.to_dict() == outcome.to_dict()
        assert clone.to_dict(canonical=True)["wall_seconds"] == 0.0


class TestWorkersConvention:
    def test_zero_means_serial(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1

    def test_env_ceiling_clamps_explicit_requests(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert resolve_workers(16) == 2
        assert resolve_workers(1) == 1
        # The ceiling also clamps the derived default.
        assert resolve_workers(None) <= 2

    def test_env_unset_and_garbage_are_ignored(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert resolve_workers(6) == 6
        monkeypatch.setenv("REPRO_MAX_WORKERS", "many")
        assert resolve_workers(6) == 6

    def test_zero_beats_the_ceiling(self, monkeypatch):
        # Precedence: an explicit 0 (serial) is not "clamped up" to the
        # ceiling — it stays serial.
        monkeypatch.setenv("REPRO_MAX_WORKERS", "4")
        assert resolve_workers(0) == 1


class TestInterrupt:
    def test_serial_interrupt_keeps_completed_prefix(self, tmp_path):
        spec = _spec()
        seen = []

        def boom(outcome):
            seen.append(outcome)
            if len(seen) == 3:
                raise KeyboardInterrupt

        result = run_campaign(
            spec, workers=1, progress=boom, journal_dir=str(tmp_path)
        )
        assert result.interrupted
        assert len(result.outcomes) == 3
        # The journal kept them too, so a resume completes the campaign.
        resumed = run_campaign(spec, workers=1, resume_from=str(tmp_path))
        assert resumed.resumed == 3
        assert not resumed.interrupted
        full = run_campaign(spec, workers=1)
        assert _canonical(resumed) == _canonical(full)


@pytest.mark.slow
class TestParentKill:
    """The real thing: SIGKILL the campaign process, then resume."""

    _SCRIPT = r"""
import sys
from repro.fault import demo_campaign_spec, run_campaign
spec = demo_campaign_spec(platform="pci", seed=55, runs=12)
spec.wall_timeout = 30.0
run_campaign(spec, workers=2, max_runs=12, journal_dir=sys.argv[1])
print("COMPLETE")
"""

    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        jdir = str(tmp_path / "journal")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        child = subprocess.Popen(
            [sys.executable, "-c", self._SCRIPT, jdir],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Wait for at least two fsync'd outcome lines, then kill -9.
        path = os.path.join(jdir, "journal.jsonl")
        deadline = time.time() + 60
        while time.time() < deadline:
            if child.poll() is not None:
                break  # finished before we got to kill it — still fine
            try:
                with open(path, "rb") as stream:
                    lines = stream.read().count(b"\n")
            except OSError:
                lines = 0
            if lines >= 3:  # header + >= 2 outcomes
                child.kill()
                break
            time.sleep(0.02)
        child.wait(timeout=60)

        spec = demo_campaign_spec(platform="pci", seed=55, runs=12)
        spec.wall_timeout = 30.0
        resumed = run_campaign(
            spec, workers=2, max_runs=12, resume_from=jdir
        )
        uninterrupted = run_campaign(spec, workers=2, max_runs=12)
        assert _canonical(resumed) == _canonical(uninterrupted)
        assert len(resumed.outcomes) == 12


class TestDurableCli:
    """End-to-end ``python -m repro fault`` durability flags."""

    def _fault(self, capsys, *extra):
        from repro.__main__ import main

        code = main([
            "--seed", "55", "fault", "--runs", "6", "--workers", "0",
            "--json", "--canonical", *extra,
        ])
        return code, capsys.readouterr().out

    def test_journal_then_resume_byte_identical(self, tmp_path, capsys):
        jdir = str(tmp_path / "journal")
        code, first = self._fault(capsys, "--journal", jdir)
        assert code == 0
        code, resumed = self._fault(capsys, "--journal", jdir, "--resume")
        assert code == 0
        assert resumed == first

    def test_cache_rerun_is_identical(self, tmp_path, capsys):
        cdir = str(tmp_path / "cache")
        code, cold = self._fault(capsys, "--cache", cdir)
        assert code == 0
        code, warm = self._fault(capsys, "--cache", cdir)
        assert code == 0
        assert warm == cold

    def test_resume_without_journal_is_usage_error(self, capsys):
        from repro.__main__ import main

        assert main(["fault", "--resume"]) == 2

    def test_resume_wrong_seed_refuses(self, tmp_path, capsys):
        from repro.__main__ import main

        jdir = str(tmp_path / "journal")
        code, __ = self._fault(capsys, "--journal", jdir)
        assert code == 0
        code = main([
            "--seed", "56", "fault", "--runs", "6", "--workers", "0",
            "--journal", jdir, "--resume",
        ])
        assert code == 2
        assert "different campaign" in capsys.readouterr().err

    def test_inject_crash_reports_worker_error(self, capsys):
        code, out = self._fault(capsys, "--inject-crash", "1")
        assert code == 1
        document = json.loads(out)
        assert document["classifications"]["worker_error"] == 1


class TestCrc32Stability:
    def test_crc_matches_zlib_over_canonical_json(self):
        payload = {"b": 2, "a": 1}
        line = json.loads(encode_line(payload))
        expected = zlib.crc32(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            .encode("utf-8")
        ) & 0xFFFFFFFF
        assert line["crc"] == expected
