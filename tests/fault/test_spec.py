"""Unit tests for campaign declaration and deterministic expansion."""

import pytest

from repro.fault import (
    CampaignSpec,
    FaultInjectionError,
    FaultSpec,
    demo_campaign_spec,
    expand_campaign,
    match_targets,
)
from repro.kernel import NS

SIGNALS = ["top.bus.ad", "top.bus.frame_n", "top.bus.irdy_n", "top.clk"]
CHANNELS = ["top.interface.channel"]
HORIZON = 100_000 * NS


def _spec(faults, **kwargs):
    return CampaignSpec("unit", faults, **kwargs)


class TestDeclarations:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultSpec("cosmic", "top.*")

    def test_zero_repeats_rejected(self):
        with pytest.raises(FaultInjectionError, match="repeats"):
            FaultSpec("stuck_at", "top.*", repeats=0)

    def test_target_kind_derived_from_model(self):
        assert FaultSpec("stuck_at", "x").target_kind == "signal"
        assert FaultSpec("dropped_request", "x").target_kind == "channel"

    def test_unknown_platform_rejected(self):
        with pytest.raises(FaultInjectionError, match="platform"):
            _spec([FaultSpec("stuck_at", "top.*")], platform="vmebus")

    def test_empty_fault_list_rejected(self):
        with pytest.raises(FaultInjectionError, match="at least one"):
            _spec([])

    def test_workload_seeds_one_per_app(self):
        spec = _spec([FaultSpec("stuck_at", "x")], seed=7, n_apps=3)
        assert spec.workload_seeds() == [7, 8, 9]

    def test_match_targets_sorted_glob(self):
        assert match_targets("top.bus.*", SIGNALS) == [
            "top.bus.ad", "top.bus.frame_n", "top.bus.irdy_n",
        ]
        assert match_targets("*.clk", SIGNALS) == ["top.clk"]


class TestExpansion:
    def test_glob_times_repeats(self):
        spec = _spec([FaultSpec("bit_flip", "top.bus.*", repeats=3)])
        runs = expand_campaign(spec, SIGNALS, CHANNELS, HORIZON)
        assert len(runs) == 3 * 3
        assert [r.run_id for r in runs] == list(range(9))
        assert {r.target_path for r in runs} == set(SIGNALS) - {"top.clk"}

    def test_channel_faults_match_channel_paths(self):
        spec = _spec([FaultSpec("delayed_grant", "top.interface.*")])
        runs = expand_campaign(spec, SIGNALS, CHANNELS, HORIZON)
        assert [r.target_path for r in runs] == CHANNELS

    def test_empty_match_is_loud(self):
        spec = _spec([FaultSpec("stuck_at", "nothing.*")])
        with pytest.raises(FaultInjectionError, match="matches no"):
            expand_campaign(spec, SIGNALS, CHANNELS, HORIZON)

    def test_expansion_is_deterministic(self):
        def expand():
            spec = _spec(
                [
                    FaultSpec("bit_flip", "top.bus.ad", repeats=4,
                              params={"bit": None}),
                    FaultSpec("glitch", "top.bus.frame_n", repeats=4,
                              params={"value": 0}),
                ],
                seed=23,
            )
            return expand_campaign(spec, SIGNALS, CHANNELS, HORIZON)

        first, second = expand(), expand()
        assert [(r.kind, r.target_path, r.window, r.params) for r in first] \
            == [(r.kind, r.target_path, r.window, r.params) for r in second]

    def test_appending_a_line_never_perturbs_earlier_draws(self):
        line = FaultSpec("bit_flip", "top.bus.ad", repeats=4,
                         params={"bit": None})
        alone = expand_campaign(_spec([line]), SIGNALS, CHANNELS, HORIZON)
        extended = expand_campaign(
            _spec([line, FaultSpec("delayed_grant", "*.channel")]),
            SIGNALS, CHANNELS, HORIZON,
        )
        assert [(r.window, r.params) for r in alone] \
            == [(r.window, r.params) for r in extended[:4]]

    def test_drawn_windows_cover_past_horizon(self):
        spec = _spec(
            [FaultSpec("stuck_at", "top.bus.ad", repeats=64,
                       params={"value": 0})],
            seed=5,
        )
        runs = expand_campaign(spec, SIGNALS, CHANNELS, HORIZON)
        starts = [r.window[0] for r in runs]
        assert all(0 <= s < (3 * HORIZON) // 2 for s in starts)
        # Some runs must deliberately land after traffic has drained.
        assert any(s >= HORIZON for s in starts)
        assert all(r.window[1] > r.window[0] for r in runs)

    def test_fixed_window_honoured(self):
        window = (5 * NS, 25 * NS)
        spec = _spec([FaultSpec("stuck_at", "top.clk", window=window)])
        runs = expand_campaign(spec, SIGNALS, CHANNELS, HORIZON)
        assert runs[0].window == window

    def test_unset_bit_drawn_set_bit_kept(self):
        spec = _spec([
            FaultSpec("bit_flip", "top.bus.ad", params={"bit": None}),
            FaultSpec("bit_flip", "top.clk", params={"bit": 9}),
        ])
        drawn, fixed = expand_campaign(spec, SIGNALS, CHANNELS, HORIZON)
        assert 0 <= drawn.params["bit"] < 32
        assert fixed.params["bit"] == 9


class TestDemoSpec:
    def test_pci_demo_shape(self):
        spec = demo_campaign_spec("pci", seed=3, runs=60)
        assert spec.platform == "pci"
        assert spec.seed == 3
        assert len(spec.faults) == 6
        assert all(f.repeats == 10 for f in spec.faults)
        kinds = {f.kind for f in spec.faults}
        assert {"bit_flip", "glitch", "stuck_at", "command_corruption",
                "dropped_request", "delayed_grant"} == kinds

    def test_functional_demo_has_no_pin_lines(self):
        spec = demo_campaign_spec("functional")
        assert {f.target_kind for f in spec.faults} == {"channel"}
        assert spec.think_time == 0
