"""Unit tests for the kernel-level fault models.

Each model is exercised on a purpose-built micro design (one signal and
a writer process, or one mailbox global object) so the perturbation is
visible in isolation, away from the platform machinery.
"""

import pytest

from repro.fault import (
    FAULT_KINDS,
    BitFlipFault,
    CommandCorruptionFault,
    DelayedGrantFault,
    DroppedRequestFault,
    FaultInjectionError,
    StuckAtFault,
    TransientGlitchFault,
    make_fault,
)
from repro.hdl import Module
from repro.kernel import NS, Simulator, Timeout
from repro.osss import GlobalObject, guarded_method


class _Recorder:
    def __init__(self):
        self.changes = []

    def record_change(self, time, signal, value):
        self.changes.append((time, signal.name, value.to_int()
                             if hasattr(value, "to_int") else value))


def _signal_rig():
    """A byte-wide signal written with 1..8 every 10 ns."""
    sim = Simulator()
    top = Module(sim, "top")
    data = top.signal("data", width=8, init=0)

    def writer():
        for i in range(1, 9):
            yield Timeout(10 * NS)
            data.write(i)

    sim.spawn(writer, "w")
    recorder = _Recorder()
    sim.add_tracer(recorder)
    sim.elaborate()
    return sim, data, recorder


def _values(recorder):
    return [(t, v) for t, __, v in recorder.changes]


class TestStuckAt:
    def test_holds_level_inside_window(self):
        sim, data, recorder = _signal_rig()
        fault = StuckAtFault("top.data", window=(15 * NS, 45 * NS),
                             value=0xFF)
        fault.arm(sim)
        sim.run(100 * NS)
        values = _values(recorder)
        # Clamped at window start, writes during the window suppressed.
        assert (15 * NS, 0xFF) in values
        for time, value in values:
            if 15 * NS <= time < 45 * NS:
                assert value == 0xFF
        # Writes after the window show through again.
        assert (50 * NS, 5) in values
        assert fault.activations >= 1
        assert data.read().to_int() == 8

    def test_windowless_fault_is_always_on(self):
        sim, data, recorder = _signal_rig()
        StuckAtFault("top.data", value=0x42).arm(sim)
        sim.run(100 * NS)
        # No write ever shows through; the line reads the stuck level.
        committed = {v for __, v in _values(recorder)}
        assert committed <= {0x42}
        assert data.read().to_int() == 0x42

    def test_bad_window_rejected(self):
        with pytest.raises(FaultInjectionError, match="end before start"):
            StuckAtFault("top.data", window=(50, 10))

    def test_wrong_target_type_rejected(self):
        sim, __, __unused = _signal_rig()
        fault = StuckAtFault("top", value=1)
        with pytest.raises(FaultInjectionError, match="cannot target"):
            fault.arm(sim)


class TestBitFlip:
    def test_first_commit_in_window_flipped_once(self):
        sim, data, recorder = _signal_rig()
        fault = BitFlipFault("top.data", window=(15 * NS, 100 * NS), bit=7)
        fault.arm(sim)
        sim.run(100 * NS)
        values = _values(recorder)
        # The 20 ns write of 2 commits, then is overridden to 2|0x80.
        assert (20 * NS, 2 | 0x80) in values
        # One-shot: the 30 ns write commits clean.
        assert (30 * NS, 3) in values
        assert fault.activations == 1

    def test_bit_wraps_to_width(self):
        sim, data, recorder = _signal_rig()
        fault = BitFlipFault("top.data", window=(15 * NS, 100 * NS), bit=8)
        fault.arm(sim)
        sim.run(100 * NS)
        assert (20 * NS, 2 ^ 1) in _values(recorder)


class TestGlitch:
    def test_strike_and_restore(self):
        sim, data, recorder = _signal_rig()
        fault = TransientGlitchFault(
            "top.data", window=(22 * NS, 28 * NS), value=0x55
        )
        fault.arm(sim)
        sim.run(100 * NS)
        values = _values(recorder)
        assert (22 * NS, 0x55) in values
        # Restored to the pre-glitch level at window end.
        assert (28 * NS, 2) in values
        assert fault.activations == 1
        assert data.read().to_int() == 8

    def test_duration_defaults_to_window_span(self):
        fault = TransientGlitchFault("x", window=(100, 700))
        assert fault.duration == 600

    def test_window_required(self):
        with pytest.raises(FaultInjectionError, match="window"):
            TransientGlitchFault("top.data")


class Mailbox:
    def __init__(self):
        self.slot = None

    @guarded_method(lambda self: self.slot is None)
    def put(self, item):
        self.slot = item

    @guarded_method(lambda self: self.slot is not None)
    def get(self):
        item, self.slot = self.slot, None
        return item


def _mailbox_rig(n_items=2):
    sim = Simulator()
    top = Module(sim, "top")
    box = GlobalObject(top, "box", Mailbox)
    received = []

    def producer():
        for item in range(1, n_items + 1):
            yield Timeout(10 * NS)
            yield from box.put(item)

    def consumer():
        for __ in range(n_items):
            value = yield from box.get()
            received.append((sim.time, value))

    sim.spawn(producer, "producer")
    sim.spawn(consumer, "consumer")
    sim.elaborate()
    return sim, received


class TestDroppedRequest:
    def test_dropped_put_never_executes(self):
        sim, received = _mailbox_rig(n_items=2)
        fault = DroppedRequestFault("top.box", method="put", max_drops=1)
        fault.arm(sim)
        result = sim.run_until_idle(500 * NS)
        # First put vanished: the consumer only ever sees item 2, and
        # its second get is stuck on the guard when the run starves.
        assert [v for __, v in received] == [2]
        assert fault.activations == 1
        assert not result.quiescent
        assert any(b.method == "get" for b in result.blocked_processes)

    def test_method_filter(self):
        sim, received = _mailbox_rig(n_items=2)
        fault = DroppedRequestFault("top.box", method="no_such", max_drops=5)
        fault.arm(sim)
        sim.run_until_idle(500 * NS)
        assert [v for __, v in received] == [1, 2]
        assert fault.activations == 0


class TestDelayedGrant:
    def test_backlog_drains_at_window_end(self):
        sim, received = _mailbox_rig(n_items=1)
        fault = DelayedGrantFault("top.box", window=(0, 200 * NS))
        fault.arm(sim)
        result = sim.run_until_idle(500 * NS)
        assert [v for __, v in received] == [1]
        # Nothing completed before the grant window closed.
        assert received[0][0] >= 200 * NS
        assert fault.activations >= 1
        assert result.quiescent

    def test_unbounded_window_deadlocks(self):
        sim, received = _mailbox_rig(n_items=1)
        DelayedGrantFault("top.box").arm(sim)
        result = sim.run_until_idle(500 * NS)
        assert received == []
        assert not result.quiescent


class TestCommandCorruption:
    def _rig(self, fault, command):
        from repro.core import CommandType  # noqa: F401 - rig sanity

        sim = Simulator()
        top = Module(sim, "top")

        class Channel:
            def __init__(self):
                self.seen = []

            @guarded_method()
            def put_command(self, cmd):
                self.seen.append(cmd)

        channel = GlobalObject(top, "channel", Channel)

        def app():
            yield Timeout(10 * NS)
            yield from channel.put_command(command)

        sim.spawn(app, "app")
        sim.elaborate()
        fault.arm(sim)
        sim.run_until_idle(200 * NS)
        return channel.state.seen

    def test_write_data_xored(self):
        from repro.core import CommandType

        fault = CommandCorruptionFault("top.channel", field="data",
                                       mask=0x10)
        seen = self._rig(fault, CommandType.write(0x40, 0x22))
        assert len(seen) == 1
        assert seen[0].data[0] == 0x32
        assert seen[0].address == 0x40
        assert fault.activations == 1

    def test_address_xored_stays_aligned(self):
        from repro.core import CommandType

        fault = CommandCorruptionFault("top.channel", field="address",
                                       mask=0x17)
        seen = self._rig(fault, CommandType.read(0x40))
        assert seen[0].address == 0x40 ^ 0x14
        assert seen[0].address % 4 == 0

    def test_read_data_corruption_is_noop(self):
        from repro.core import CommandType

        fault = CommandCorruptionFault("top.channel", field="data",
                                       mask=0x10)
        seen = self._rig(fault, CommandType.read(0x40))
        assert seen[0].address == 0x40
        assert fault.activations == 0

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultInjectionError, match="field"):
            CommandCorruptionFault("x", field="parity")


class TestFactory:
    def test_registry_covers_all_models(self):
        assert sorted(FAULT_KINDS) == [
            "bit_flip", "command_corruption", "delayed_grant",
            "dropped_request", "glitch", "stuck_at",
        ]

    def test_make_fault_dispatch(self):
        fault = make_fault("stuck_at", "top.x", (0, 10), value=1)
        assert isinstance(fault, StuckAtFault)
        assert fault.value == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            make_fault("gamma_ray", "top.x")

    def test_describe_mentions_kind_and_window(self):
        fault = make_fault("bit_flip", "top.bus.ad", (5, 9), bit=3)
        assert "bit_flip" in fault.describe()
        assert "[5, 9)" in fault.describe()
