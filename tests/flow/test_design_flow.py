"""Tests of the Figure 2 design-flow driver."""

import pytest

from repro.core import CommandType, generate_workload
from repro.errors import ConsistencyError, RefinementError
from repro.flow import (
    DesignFlow,
    PciPlatformConfig,
    build_functional_platform,
    build_pci_platform,
    standard_flow_builders,
)
from repro.kernel import MS


WORKLOADS = [generate_workload(seed=31, n_commands=8, address_span=0x100,
                               max_burst=2)]


class TestFullFlow:
    def test_all_stages_pass(self):
        flow = DesignFlow({"name": "demo"}, *standard_flow_builders(WORKLOADS))
        report = flow.run(20 * MS)
        assert report.succeeded
        assert len(report.stages) == 8
        assert report.lint_report is not None
        assert not report.lint_report.has_errors
        assert report.analysis_report is not None
        assert not report.analysis_report.has_errors
        assert report.refinement_check.consistent
        assert report.synthesis_check.consistent
        assert report.synthesis_result is not None
        assert report.post_synthesis_result.transactions == 8

    def test_summary_lists_stages(self):
        flow = DesignFlow({"name": "demo"}, *standard_flow_builders(WORKLOADS))
        report = flow.run(20 * MS)
        text = report.summary()
        assert "communication synthesis" in text
        assert "static design-rule lint" in text
        assert "post-synthesis netlist analysis" in text
        assert "[  ok]" in text

    def test_missing_name_fails_first_stage(self):
        flow = DesignFlow({}, *standard_flow_builders(WORKLOADS))
        with pytest.raises(RefinementError):
            flow.run(20 * MS)

    def test_divergent_functional_model_caught(self):
        """Inject a functional model that disagrees -> stage 4 fails."""
        different = [generate_workload(seed=99, n_commands=8,
                                       address_span=0x100)]

        def bad_functional():
            return build_functional_platform(different).handle

        __, implementation = standard_flow_builders(WORKLOADS)
        flow = DesignFlow({"name": "broken"}, bad_functional, implementation)
        with pytest.raises(ConsistencyError):
            flow.run(20 * MS)


class TestBuilders:
    def test_multiple_workloads_multiple_apps(self):
        workloads = [
            [CommandType.write(0x00, [1])],
            [CommandType.write(0x40, [2])],
        ]
        bundle = build_pci_platform(workloads)
        assert len(bundle.handle.applications) == 2
        bundle.run(5 * MS)
        assert bundle.memory.read_word(0x00) == 1
        assert bundle.memory.read_word(0x40) == 2

    def test_empty_workloads_rejected(self):
        with pytest.raises(RefinementError):
            standard_flow_builders([])

    def test_config_reaches_target(self):
        config = PciPlatformConfig(wait_states=3, decode_latency=2)
        bundle = build_pci_platform(WORKLOADS, config)
        assert bundle.top.mem_target.wait_states == 3
        assert bundle.top.mem_target.decode_latency == 2

    def test_synthesized_platform_reports(self):
        bundle = build_pci_platform(WORKLOADS, synthesize=True)
        assert bundle.synthesis is not None
        bundle.run(20 * MS)
        channel = bundle.synthesis.groups[0].channel
        assert channel.calls_serviced > 0
