"""X-propagation from unreset registers to primary outputs."""

from repro.analyze.xprop import find_x_propagation, x_sources
from repro.synthesis.ir import Const, RtlModule


class TestXSources:
    def test_only_unreset_registers(self):
        module = RtlModule("m")
        module.add_register("with_reset", 4, 0)
        floating = module.add_register("floating", 4, None)
        assert x_sources(module) == [floating]


class TestXPropagation:
    def test_taint_reaches_output(self):
        module = RtlModule("m")
        out = module.add_port("out", "out", 4)
        floating = module.add_register("floating", 4, None)
        mid = module.add_net("mid", 4)
        module.add_assign(mid, floating.ref())
        module.add_assign(out, mid.ref())
        (finding,) = find_x_propagation(module)
        assert finding.port is out
        assert finding.source is floating
        assert finding.describe_path() == "floating -> mid -> out"

    def test_reset_register_is_clean(self):
        module = RtlModule("m")
        out = module.add_port("out", "out", 4)
        reg = module.add_register("reg", 4, 0)
        module.add_assign(out, reg.ref())
        assert find_x_propagation(module) == []

    def test_reset_register_absorbs_taint(self):
        """A clocked assign into a reset register stops the X."""
        module = RtlModule("m")
        out = module.add_port("out", "out", 4)
        floating = module.add_register("floating", 4, None)
        holder = module.add_register("holder", 4, 0)
        module.add_clocked_assign(holder, floating.ref(),
                                  enable=Const(1, 1))
        module.add_assign(out, holder.ref())
        assert find_x_propagation(module) == []

    def test_untainted_output_not_reported(self):
        module = RtlModule("m")
        a = module.add_port("a", "in", 4)
        out = module.add_port("out", "out", 4)
        module.add_register("floating", 4, None)  # reaches nothing
        module.add_assign(out, a.ref())
        assert find_x_propagation(module) == []
