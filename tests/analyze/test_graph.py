"""Driver/reader graph construction over hand-built netlists."""

from repro.analyze import NetGraph
from repro.synthesis.ir import Const, Fsm, RtlModule


def build_module():
    module = RtlModule("m")
    a = module.add_port("a", "in", 4)
    out = module.add_port("out", "out", 4)
    wire = module.add_net("wire", 4)
    reg = module.add_register("reg", 4, 0)
    module.add_assign(wire, a.ref())
    module.add_assign(out, wire.ref())
    module.add_clocked_assign(reg, wire.ref(), enable=Const(1, 1))
    return module, a, out, wire, reg


class TestDrivers:
    def test_assign_driver(self):
        module, a, out, wire, reg = build_module()
        graph = NetGraph(module)
        (driver,) = graph.drivers_of(wire)
        assert driver.kind == "assign"
        assert driver.is_combinational
        assert driver.sources == [a]
        assert driver.expr_width == 4

    def test_clocked_driver(self):
        module, a, out, wire, reg = build_module()
        graph = NetGraph(module)
        (driver,) = graph.drivers_of(reg)
        assert driver.kind == "clocked"
        assert not driver.is_combinational
        assert driver.sources == [wire]

    def test_undriven_input_port(self):
        module, a, *_ = build_module()
        graph = NetGraph(module)
        assert graph.drivers_of(a) == []
        assert not graph.is_comb_driven(a)

    def test_fsm_drivers(self):
        module = RtlModule("f")
        go = module.add_port("go", "in", 1)
        busy = module.add_net("busy", 1)
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        fsm.set_output("RUN", busy, 1)
        module.add_fsm(fsm)
        graph = NetGraph(module)
        (state_driver,) = graph.drivers_of(fsm.state_register)
        assert state_driver.kind == "fsm-state"
        assert state_driver.sources == [go]
        assert not state_driver.is_combinational
        (output_driver,) = graph.drivers_of(busy)
        assert output_driver.kind == "fsm-output"
        assert output_driver.is_combinational
        assert output_driver.sources == [fsm.state_register]


class TestReaders:
    def test_reader_sites(self):
        module, a, out, wire, reg = build_module()
        graph = NetGraph(module)
        labels = {site.label for site in graph.readers_of(wire)}
        assert len(graph.readers_of(wire)) == 2  # out assign + clocked
        assert any("out" in label for label in labels)
        assert graph.readers_of(out) == []


class TestCombDependencies:
    def test_registers_are_boundary(self):
        """Only comb-driven sources become edges; regs/ports are level 0."""
        module, a, out, wire, reg = build_module()
        graph = NetGraph(module)
        edges = graph.comb_dependencies()
        assert edges[id(wire)] == set()          # reads only a port
        assert edges[id(out)] == {id(wire)}      # reads a comb net
        assert id(reg) not in edges              # clocked: not comb
