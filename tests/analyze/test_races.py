"""Shared-state race analysis (RACE001) over live designs.

``build_race_design`` is also imported by the dynamic sanitizer tests
(:mod:`tests.instrument.test_sanitizer`): the same fixture must be
flagged statically here and then confirmed at sim time there.
"""

from repro.analyze.races import analyze_races
from repro.hdl.module import Module
from repro.kernel.process import Timeout
from repro.kernel.simulator import Simulator
from repro.lint import Severity, lint_design
from repro.lint.context import DesignContext
from repro.osss.global_object import GlobalObject, connect
from repro.osss.guarded_method import guarded_method


class SharedStrobe:
    """Shared state holding a live signal the arbiter should own."""

    def __init__(self):
        self.sig = None
        self.count = 0

    @guarded_method()
    def pulse(self, value):
        self.count += 1
        if self.sig is not None:
            self.sig.write(value)
        return self.count


class RaceHost(Module):
    """One serialized client plus one process writing behind the arbiter."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.strobe = self.signal("strobe", width=1, init=0)
        self.shared = GlobalObject(self, "shared", SharedStrobe)
        self.state = None  # bound to the shared instance after connect()
        self.thread(self._client, "client")
        self.thread(self._rogue, "rogue")

    def _client(self):
        yield Timeout(10)
        yield from self.shared.pulse(1)

    def _rogue(self):
        yield Timeout(5)
        self.state.sig.write(1)
        yield Timeout(0)
        self.state.sig.write(0)


def build_race_design():
    """Simulator + module where ``state.sig`` has two writing parties."""
    sim = Simulator()
    top = RaceHost(sim, "top")
    connect(top.shared)
    state = top.shared.space.state
    state.sig = top.strobe
    top.state = state
    return sim, top


class TestAnalyzeRaces:
    def test_out_of_band_write_is_found(self):
        sim, top = build_race_design()
        findings = analyze_races(DesignContext(sim))
        sigs = [f for f in findings if f.attr == "sig"]
        (finding,) = sigs
        assert finding.signal_name == top.strobe.name
        assert "pulse" in finding.serialized_methods
        assert any(w.process_name == "top.rogue" for w in finding.out_of_band)
        assert len(finding.parties()) == 2

    def test_single_party_is_quiet(self):
        """A lone out-of-band writer with no serialized rival is no race."""
        sim = Simulator()

        class LonelyHost(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.strobe = self.signal("strobe", width=1, init=0)
                self.shared = GlobalObject(self, "shared", SharedStrobe)
                self.state = None
                self.thread(self._rogue, "rogue")

            def _rogue(self):
                yield Timeout(5)
                self.state.sig.write(1)

        top = LonelyHost(sim, "top")
        connect(top.shared)
        state = top.shared.space.state
        state.sig = top.strobe
        top.state = state
        assert [f.attr for f in analyze_races(DesignContext(sim))] == []

    def test_serialized_only_is_quiet(self):
        """All mutation through the channel: the arbiter owns the state."""
        sim = Simulator()

        class PoliteHost(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.strobe = self.signal("strobe", width=1, init=0)
                self.shared = GlobalObject(self, "shared", SharedStrobe)
                self.thread(self._a, "a")
                self.thread(self._b, "b")

            def _a(self):
                yield from self.shared.pulse(1)

            def _b(self):
                yield Timeout(3)
                yield from self.shared.pulse(0)

        top = PoliteHost(sim, "top")
        connect(top.shared)
        top.shared.space.state.sig = top.strobe
        assert analyze_races(DesignContext(sim)) == []


class TestRace001Rule:
    def test_diagnostic_carries_signal_name(self):
        sim, top = build_race_design()
        report = lint_design(sim)
        (diag,) = report.by_rule("RACE001")
        assert diag.severity is Severity.ERROR
        assert diag.path.endswith(".sig")
        assert diag.extra["attr"] == "sig"
        assert diag.extra["signal"] == top.strobe.name
        assert "rogue" in diag.message

    def test_suppressible(self):
        from repro.lint import LintConfig

        sim, _top = build_race_design()
        report = lint_design(sim, LintConfig(suppress=["RACE001"]))
        assert report.by_rule("RACE001") == []
        assert report.suppressed >= 1
