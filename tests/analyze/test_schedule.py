"""Expression evaluation, levelization and the EvalSchedule artifact."""

import pytest

from repro.analyze import EvaluationError, evaluate_expr, levelize
from repro.synthesis.ir import (
    BinOp,
    BitSelect,
    Concat,
    Const,
    Fsm,
    Mux,
    RtlModule,
    UnOp,
)


def _net(width=4, name="n"):
    module = RtlModule("scratch")
    return module.add_net(name, width)


class TestEvaluateExpr:
    def test_const_and_ref(self):
        net = _net()
        assert evaluate_expr(Const(9, 4), {}) == 9
        assert evaluate_expr(net.ref(), {"n": 5}) == 5

    def test_missing_net_raises(self):
        net = _net()
        with pytest.raises(EvaluationError):
            evaluate_expr(net.ref(), {})

    def test_unops(self):
        net = _net(4)
        env = {"n": 0b1010}
        assert evaluate_expr(UnOp("~", net.ref()), env) == 0b0101
        assert evaluate_expr(UnOp("|", net.ref()), env) == 1
        assert evaluate_expr(UnOp("&", net.ref()), env) == 0
        assert evaluate_expr(UnOp("&", net.ref()), {"n": 0b1111}) == 1

    def test_binops(self):
        left, right = Const(6, 4), Const(3, 4)
        cases = {"&": 2, "|": 7, "^": 5, "+": 9, "-": 3,
                 "==": 0, "!=": 1, "<": 0}
        for op, expected in cases.items():
            assert evaluate_expr(BinOp(op, left, right), {}) == expected

    def test_arithmetic_wraps_to_width(self):
        assert evaluate_expr(BinOp("+", Const(15, 4), Const(1, 4)), {}) == 0
        assert evaluate_expr(BinOp("-", Const(0, 4), Const(1, 4)), {}) == 15

    def test_mux_bitselect_concat(self):
        sel = Const(1, 1)
        assert evaluate_expr(Mux(sel, Const(3, 4), Const(7, 4)), {}) == 3
        assert evaluate_expr(BitSelect(Const(0b100, 3), 2), {}) == 1
        # First Concat part is most significant.
        assert evaluate_expr(Concat(Const(1, 1), Const(0, 2)), {}) == 0b100

    def test_bitselect_ignores_stale_high_env_bits(self):
        net = _net(4)
        # The top in-range bit reads from the masked wire value, not
        # from stale bits the environment carries above the net width.
        assert evaluate_expr(BitSelect(net.ref(), 3), {"n": 0b10111}) == 0
        assert evaluate_expr(BitSelect(net.ref(), 0), {"n": 0b10111}) == 1

    def test_concat_masks_over_wide_parts(self):
        net = _net(2)
        # A 2-bit ref fed an over-wide environment value must not smear
        # its extra bits into the neighbouring concat lanes.
        expr = Concat(Const(1, 1), net.ref())
        assert evaluate_expr(expr, {"n": 0b1111}) == 0b111


class TestLevelize:
    def test_linear_chain(self):
        module = RtlModule("m")
        a = module.add_port("a", "in", 1)
        w1 = module.add_net("w1", 1)
        w2 = module.add_net("w2", 1)
        module.add_assign(w1, a.ref())
        module.add_assign(w2, w1.ref())
        result = levelize(module)
        assert result.ok and not result.loops
        schedule = result.schedule
        assert schedule.depth == 2
        assert [s.target.name for s in schedule.levels[0]] == ["w1"]
        assert [s.target.name for s in schedule.levels[1]] == ["w2"]
        assert {n.name for n in schedule.boundary_nets()} == {"a"}
        env = schedule.evaluate({"a": 1})
        assert env["w1"] == 1 and env["w2"] == 1

    def test_comb_loop_detected(self):
        module = RtlModule("m")
        a = module.add_net("a", 1)
        b = module.add_net("b", 1)
        module.add_assign(a, b.ref())
        module.add_assign(b, a.ref())
        result = levelize(module)
        assert not result.ok and result.schedule is None
        (loop,) = result.loops
        assert {n.name for n in loop.nets} == {"a", "b"}
        assert loop.describe().count("->") == 2  # closed path

    def test_loop_plus_clean_logic(self):
        """Nets outside the cycle still matter; only the cycle reports."""
        module = RtlModule("m")
        p = module.add_port("p", "in", 1)
        ok = module.add_net("ok", 1)
        a = module.add_net("a", 1)
        b = module.add_net("b", 1)
        tail = module.add_net("tail", 1)
        module.add_assign(ok, p.ref())
        module.add_assign(a, b.ref())
        module.add_assign(b, a.ref())
        module.add_assign(tail, a.ref())  # stuck only through the loop
        result = levelize(module)
        assert len(result.loops) == 1

    def test_fsm_output_step(self):
        module = RtlModule("m")
        go = module.add_port("go", "in", 1)
        busy = module.add_net("busy", 1)
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        fsm.set_output("RUN", busy, 1)
        module.add_fsm(fsm)
        result = levelize(module)
        assert result.ok
        env = result.schedule.evaluate(
            {fsm.state_register.name: fsm.encode("RUN")}
        )
        assert env["busy"] == 1
        env = result.schedule.evaluate(
            {fsm.state_register.name: fsm.encode("IDLE")}
        )
        assert env["busy"] == 0  # Moore default

    def test_width1_boundary_masked_on_entry(self):
        """A truthy-but-not-1 value on a width-1 boundary net behaves
        like the wire it names: only bit 0 is visible downstream."""
        module = RtlModule("m")
        a = module.add_port("a", "in", 1)
        w = module.add_net("w", 1)
        inv = module.add_net("inv", 1)
        module.add_assign(w, a.ref())
        module.add_assign(inv, UnOp("~", a.ref()))
        schedule = levelize(module).schedule
        env = schedule.evaluate({"a": 2})  # truthy, but bit 0 is clear
        assert env["a"] == 0
        assert env["w"] == 0
        assert env["inv"] == 1

    def test_over_wide_state_register_decodes_truncated(self):
        """Stale high bits on the state value must not silently turn
        every Moore output into the default 0."""
        module = RtlModule("m")
        go = module.add_port("go", "in", 1)
        busy = module.add_net("busy", 1)
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", go.ref(), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        fsm.set_output("RUN", busy, 1)
        module.add_fsm(fsm)
        schedule = levelize(module).schedule
        width = fsm.state_register.width
        value = fsm.encode("RUN") | (1 << width)  # one stale bit up top
        env = schedule.evaluate({fsm.state_register.name: value})
        assert env["busy"] == 1
        assert env[fsm.state_register.name] == fsm.encode("RUN")

    def test_constant_folded_boundary_net(self):
        """A boundary net tied to a constant upstream still evaluates
        masked, and comparisons against folded constants hold."""
        module = RtlModule("m")
        a = module.add_port("a", "in", 4)
        eq = module.add_net("eq", 1)
        module.add_assign(eq, BinOp("==", a.ref(), Const(5, 4)))
        schedule = levelize(module).schedule
        # 0x15 & 0xF == 5: the over-wide constant must still compare equal.
        assert schedule.evaluate({"a": 0x15})["eq"] == 1
        assert schedule.evaluate({"a": 0x25})["eq"] == 1
        assert schedule.evaluate({"a": 6})["eq"] == 0

    def test_describe_lists_levels(self):
        module = RtlModule("m")
        a = module.add_port("a", "in", 1)
        w = module.add_net("w", 1)
        module.add_assign(w, a.ref())
        text = levelize(module).schedule.describe()
        assert "schedule m" in text and "level 0: w" in text
