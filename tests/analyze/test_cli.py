"""``python -m repro analyze`` CLI behaviour against tiny scripts."""

import json

import pytest

from repro.analyze import cli

CLEAN_SCRIPT = """\
from repro.hdl import Clock, Module
from repro.kernel import NS, Simulator
from repro.osss import GlobalObject, connect, guarded_method
from repro.synthesis import SynthesisConfig, synthesize_communication


class Latch:
    def __init__(self):
        self.value = 0

    @guarded_method()
    def store(self, v):
        self.value = v


sim = Simulator()
clock = Clock(sim, "clock", period=10 * NS)
hosts = [GlobalObject(Module(sim, f"h{i}"), "obj", Latch) for i in range(2)]
connect(*hosts)
synthesize_communication(sim, clock.clk, SynthesisConfig(emit_hdl=False))
print("script ran")
"""

NO_SYNTH_SCRIPT = """\
from repro.kernel import Simulator

sim = Simulator()
"""


@pytest.fixture
def clean_script(tmp_path):
    path = tmp_path / "design.py"
    path.write_text(CLEAN_SCRIPT)
    return str(path)


class TestAnalyzeCli:
    def test_clean_script_table(self, clean_script, capsys):
        assert cli.main([clean_script]) == 0
        out = capsys.readouterr().out
        assert "script ran" in out  # script stdout passes through
        assert "analyze run0: 2 module(s), clean" in out

    def test_quiet_script_swallows_stdout(self, clean_script, capsys):
        assert cli.main(["--quiet-script", clean_script]) == 0
        out = capsys.readouterr().out
        assert "script ran" not in out
        assert "analyze run0" in out

    def test_schedule_dump(self, clean_script, capsys):
        assert cli.main(["--quiet-script", "--schedule", clean_script]) == 0
        out = capsys.readouterr().out
        assert "schedule " in out and "level 0:" in out

    def test_json_format(self, clean_script, capsys):
        assert cli.main(["--quiet-script", "--format", "json",
                         clean_script]) == 0
        payload = json.loads(capsys.readouterr().out)
        (report,) = payload
        assert report["label"] == "run0"
        assert len(report["modules"]) == 2
        assert report["diagnostics"] == []

    def test_sarif_to_file(self, clean_script, tmp_path, capsys):
        out_file = tmp_path / "report.sarif"
        assert cli.main(["--quiet-script", "--format", "sarif",
                         "--output", str(out_file), clean_script]) == 0
        sarif = json.loads(out_file.read_text())
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        assert run["results"] == []
        # Summary still lands on stdout when the report goes to a file.
        assert "analyze run0" in capsys.readouterr().out

    def test_unknown_suppression_rejected(self, clean_script, capsys):
        assert cli.main(["--suppress", "BOGUS999", clean_script]) == 2
        assert "unknown rule in --suppress" in capsys.readouterr().out

    def test_comma_separated_suppressions_accepted(self, clean_script,
                                                   capsys):
        assert cli.main(["--quiet-script", "--suppress", "NET002,FSM003",
                         clean_script]) == 0
        assert "analyze run0" in capsys.readouterr().out

    def test_script_without_synthesis_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.py"
        path.write_text(NO_SYNTH_SCRIPT)
        assert cli.main([str(path)]) == 2
        assert "performed no communication synthesis" in (
            capsys.readouterr().out
        )

    def test_script_argv_passthrough(self, tmp_path, capsys):
        path = tmp_path / "argv.py"
        path.write_text(
            "import sys\n"
            + CLEAN_SCRIPT
            + "print('argv:', sys.argv[1:])\n"
        )
        assert cli.main([str(path), "--depth", "3"]) == 0
        assert "argv: ['--depth', '3']" in capsys.readouterr().out
