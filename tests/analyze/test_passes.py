"""Whole-design analysis passes over real synthesized netlists.

The headline check here is the EvalSchedule equivalence test: one delta
cycle of the synthesized channel netlist, evaluated through the
levelized schedule, must reproduce the committed handshake values of
the interpreted RTL channel at every delta boundary of a live run.
"""

from repro.analyze import analyze_design, analyze_module
from repro.hdl import Clock, Module
from repro.instrument.probes import DELTA_END
from repro.kernel import NS, Simulator
from repro.osss import GlobalObject, connect, guarded_method
from repro.synthesis import SynthesisConfig, synthesize_communication
from repro.synthesis.ir import RtlModule


class Latch:
    def __init__(self):
        self.value = 0

    @guarded_method()
    def store(self, v):
        self.value = v

    @guarded_method()
    def load(self):
        return self.value


class Client(Module):
    def __init__(self, parent, name, delay):
        super().__init__(parent, name)
        self.obj = GlobalObject(self, "obj", Latch)
        self._delay = delay
        self.thread(self._work, "work")

    def _work(self):
        from repro.kernel.process import Timeout

        yield Timeout(self._delay)
        for n in range(4):
            yield from self.obj.store(n)
            yield from self.obj.load()


def build_synthesized_design():
    sim = Simulator()
    clock = Clock(sim, "clock", period=10 * NS)
    clients = [Client(sim, f"c{i}", delay=7 * i) for i in range(2)]
    connect(*(c.obj for c in clients))
    result = synthesize_communication(
        sim, clock.clk, SynthesisConfig(emit_hdl=False)
    )
    return sim, result


class TestAnalyzeModule:
    def test_stats(self):
        module = RtlModule("m")
        a = module.add_port("a", "in", 1)
        out = module.add_port("out", "out", 1)
        module.add_register("r", 4, 0)
        module.add_assign(out, a.ref())
        analysis = analyze_module(module)
        stats = analysis.stats()
        assert stats["ports"] == 2
        assert stats["registers"] == 1
        assert stats["comb_steps"] == 1
        assert stats["comb_depth"] == 1
        assert stats["comb_loops"] == 0
        assert analysis.to_dict()["module"] == "m"


class TestAnalyzeDesign:
    def test_synthesized_design_is_clean(self):
        sim, result = build_synthesized_design()
        report = analyze_design(result, sim, label="unit")
        assert not report.has_errors
        assert len(report.modules) == 2  # channel + object netlists
        assert report.summary_line().startswith("analyze unit: 2 module(s)")

    def test_schedules_cover_every_netlist(self):
        sim, result = build_synthesized_design()
        report = analyze_design(result, sim)
        schedules = report.schedules()
        group = result.groups[0]
        assert set(schedules) == {group.channel_ir.name,
                                  group.object_ir.name}
        assert schedules[group.channel_ir.name].depth >= 2

    def test_module_named(self):
        import pytest

        sim, result = build_synthesized_design()
        report = analyze_design(result)
        name = result.groups[0].channel_ir.name
        assert report.module_named(name).module is result.groups[0].channel_ir
        with pytest.raises(KeyError):
            report.module_named("nope")


class TestScheduleEquivalence:
    def test_one_delta_matches_interpreted_channel(self):
        """Schedule-evaluated gnt/done match the live channel's commits.

        At every delta boundary the interpreted channel's committed
        state (server FSM state, latched grant, client requests) is fed
        into the levelized schedule of the *synthesized* netlist; the
        schedule's combinational handshake outputs must agree with the
        signals the interpreted kernel actually committed.
        """
        sim, result = build_synthesized_design()
        group = result.groups[0]
        channel = group.channel
        schedule = analyze_design(result).schedules()[group.channel_ir.name]

        state_net = f"{group.name}_server_state"
        boundary = {net.name: 0 for net in schedule.boundary_nets()}
        assert state_net in boundary and "grant_reg" in boundary

        checked = [0]
        mismatches = []

        def on_delta_end(sim_time, delta_index):
            env = dict(boundary)
            env["rst_n"] = 1
            env[state_net] = channel.state_sig.to_int()
            env["grant_reg"] = channel.grant_sig.to_int()
            for i, req in enumerate(channel.req):
                env[f"req_{i}"] = req.to_int()
            out = schedule.evaluate(env)
            for i in range(len(channel.clients)):
                expected = (channel.gnt[i].to_int(), channel.done[i].to_int())
                got = (out[f"gnt_{i}"], out[f"done_{i}"])
                if got != expected:
                    mismatches.append((sim_time, delta_index, i,
                                       expected, got))
            checked[0] += 1

        sim.probes.subscribe(DELTA_END, on_delta_end)
        sim.run(1000 * NS)

        assert mismatches == []
        assert checked[0] > 20  # the run really exercised the channel
        # The workload must have produced actual grants, otherwise the
        # equivalence above is vacuous.
        assert len(channel.call_log) >= 4
