"""FSM reachability, false guards and livelock detection."""

from repro.analyze.fsm import (
    analyze_fsms,
    const_fold,
    find_false_guards,
    find_livelock_cycles,
    find_terminal_states,
    reachable_states,
)
from repro.synthesis.ir import BinOp, Const, Fsm, Mux, RtlModule


def _ref(module, name="x", width=1):
    return module.add_port(name, "in", width).ref()


class TestConstFold:
    def test_basics(self):
        module = RtlModule("m")
        assert const_fold(Const(3, 4)) == 3
        assert const_fold(_ref(module)) is None
        assert const_fold(BinOp("+", Const(3, 4), Const(2, 4))) == 5

    def test_annihilators(self):
        """0 & x and 1-bit 1 | x fold despite the unknown side."""
        module = RtlModule("m")
        x = _ref(module)
        assert const_fold(BinOp("&", Const(0, 1), x)) == 0
        assert const_fold(BinOp("|", Const(1, 1), x)) == 1
        assert const_fold(BinOp("&", Const(1, 1), x)) is None

    def test_mux_arms_agree(self):
        module = RtlModule("m")
        x = _ref(module)
        assert const_fold(Mux(x, Const(2, 4), Const(2, 4))) == 2
        assert const_fold(Mux(x, Const(2, 4), Const(3, 4))) is None


def _module_with(fsm):
    module = RtlModule("m")
    module.add_fsm(fsm)
    return module


class TestTerminalStates:
    def test_reachable_dead_end(self):
        module = RtlModule("m")
        go = _ref(module, "go")
        fsm = Fsm("ctrl", ["IDLE", "STUCK"], "IDLE")
        fsm.add_transition("IDLE", go, "STUCK")
        module.add_fsm(fsm)
        (finding,) = find_terminal_states(fsm)
        assert finding.kind == "terminal"
        assert finding.subject == "STUCK"

    def test_false_guard_exit_still_terminal(self):
        module = RtlModule("m")
        go = _ref(module, "go")
        fsm = Fsm("ctrl", ["IDLE", "STUCK"], "IDLE")
        fsm.add_transition("IDLE", go, "STUCK")
        fsm.add_transition("STUCK", Const(0, 1), "IDLE")
        module.add_fsm(fsm)
        (finding,) = find_terminal_states(fsm)
        assert "statically-false" in finding.message

    def test_unreachable_dead_end_not_reported(self):
        """IR001's concern, not FSM001's."""
        fsm = Fsm("ctrl", ["IDLE", "ORPHAN"], "IDLE")
        fsm.add_transition("IDLE", None, "IDLE")
        _module_with(fsm)
        assert list(find_terminal_states(fsm)) == []


class TestFalseGuards:
    def test_const_zero_guard(self):
        module = RtlModule("m")
        go = _ref(module, "go")
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", go, "RUN")
        fsm.add_transition("IDLE", Const(0, 1), "RUN")
        fsm.add_transition("RUN", None, "IDLE")
        module.add_fsm(fsm)
        (finding,) = find_false_guards(fsm)
        assert finding.kind == "false-guard"
        assert finding.subject == "IDLE->RUN"

    def test_reachability_ignores_false_arcs(self):
        fsm = Fsm("ctrl", ["IDLE", "RUN"], "IDLE")
        fsm.add_transition("IDLE", Const(0, 1), "RUN")
        _module_with(fsm)
        assert reachable_states(fsm) == {"IDLE"}


class TestLivelock:
    def test_unconditional_two_state_spin(self):
        fsm = Fsm("ctrl", ["A", "B"], "A")
        fsm.add_transition("A", None, "B")
        fsm.add_transition("B", None, "A")
        _module_with(fsm)
        (finding,) = find_livelock_cycles(fsm)
        assert finding.kind == "livelock"
        assert "A -> B" in finding.message

    def test_conditional_arc_is_not_livelock(self):
        module = RtlModule("m")
        go = _ref(module, "go")
        fsm = Fsm("ctrl", ["A", "B"], "A")
        fsm.add_transition("A", go, "B")
        fsm.add_transition("B", None, "A")
        module.add_fsm(fsm)
        assert list(find_livelock_cycles(fsm)) == []

    def test_exit_arc_is_not_livelock(self):
        module = RtlModule("m")
        go = _ref(module, "go")
        fsm = Fsm("ctrl", ["A", "B", "OUT"], "A")
        fsm.add_transition("A", None, "B")
        fsm.add_transition("B", None, "A")
        fsm.add_transition("B", go, "OUT")
        fsm.add_transition("OUT", None, "A")
        module.add_fsm(fsm)
        assert list(find_livelock_cycles(fsm)) == []

    def test_moore_output_cycle_does_work(self):
        module = RtlModule("m")
        strobe = module.add_net("strobe", 1)
        fsm = Fsm("ctrl", ["A", "B"], "A")
        fsm.add_transition("A", None, "B")
        fsm.add_transition("B", None, "A")
        fsm.set_output("B", strobe, 1)
        module.add_fsm(fsm)
        assert list(find_livelock_cycles(fsm)) == []

    def test_one_state_placeholder_is_exempt(self):
        fsm = Fsm("ctrl", ["IDLE"], "IDLE")
        fsm.add_transition("IDLE", None, "IDLE")
        _module_with(fsm)
        assert list(find_livelock_cycles(fsm)) == []


class TestAnalyzeFsms:
    def test_collects_across_fsms(self):
        module = RtlModule("m")
        go = _ref(module, "go")
        dead = Fsm("dead", ["IDLE", "STUCK"], "IDLE")
        dead.add_transition("IDLE", go, "STUCK")
        module.add_fsm(dead)
        spin = Fsm("spin", ["A", "B"], "A")
        spin.add_transition("A", None, "B")
        spin.add_transition("B", None, "A")
        module.add_fsm(spin)
        kinds = {f.kind for f in analyze_fsms(module)}
        assert kinds == {"terminal", "livelock"}
