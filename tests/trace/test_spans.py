"""Unit and integration tests for the causal span tracer."""

from repro.flow import build_pci_platform
from repro.instrument import ProbeBus
from repro.instrument.probes import (
    METHOD_CALL,
    METHOD_COMPLETE,
    METHOD_GRANT,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
)
from repro.kernel import MS
from repro.core import CommandType
from repro.trace import (
    Span,
    SpanTracer,
    attribute,
    critical_path,
)
from repro.trace.spans import BUS, METHOD, PHASE, TRANSACTION, WIRE


class _Payload:
    """Minimal correlated object (stands in for CommandType etc.)."""

    def __init__(self, corr_id=None, txn_id=None, **extra):
        self.corr_id = corr_id
        self.txn_id = txn_id
        for key, value in extra.items():
            setattr(self, key, value)


class _Request:
    """Minimal MethodRequest stand-in."""

    _seq = 0

    def __init__(self, method, args=(), result=None):
        _Request._seq += 1
        self.seq = _Request._seq
        self.method = method
        self.client = "client"
        self.args = args
        self.result = result


class TestSpan:
    def test_duration_and_walk(self):
        root = Span("t", TRANSACTION, 10)
        child = root.add_child(Span("m", METHOD, 10))
        child.end_time = 30
        root.end_time = 40
        assert root.duration == 30
        assert child.duration == 20
        assert [s.name for s in root.walk()] == ["t", "m"]

    def test_find_prefers_earliest(self):
        root = Span("t", TRANSACTION, 0)
        late = root.add_child(Span("b2", BUS, 20))
        early = root.add_child(Span("b1", BUS, 5))
        assert root.find(BUS) is early
        assert root.find(BUS, "b2") is late
        assert root.find(WIRE) is None

    def test_to_dict_shape(self):
        span = Span("x", METHOD, 1, source="top.ch", corr_id="a#0", txn_id=7)
        span.end_time = 9
        span.meta["grant_time"] = 4
        record = span.to_dict()
        assert record["duration"] == 8
        assert record["corr_id"] == "a#0"
        assert record["txn_id"] == 7
        assert record["meta"]["grant_time"] == 4


class TestSpanAssembly:
    def test_method_spans_group_under_correlation_root(self):
        bus = ProbeBus()
        tracer = SpanTracer(causal=False).attach(bus)
        command = _Payload(corr_id="top.app#0")
        request = _Request("put_command", args=(command,))
        bus.emit(METHOD_CALL, 10, "top.channel", request)
        bus.emit(METHOD_GRANT, 20, "top.channel", request)
        bus.emit(METHOD_COMPLETE, 30, "top.channel", request)
        tracer.finalize()
        roots = tracer.transactions()
        assert len(roots) == 1
        root = roots[0]
        assert root.corr_id == "top.app#0"
        assert root.start_time == 10 and root.end_time == 30
        method = root.children[0]
        assert method.name == "put_command"
        assert method.meta["grant_time"] == 20

    def test_corr_id_resolved_at_complete(self):
        # get_command carries no id at call time; the id rides on the
        # (epoch, command) tuple the call returns.
        bus = ProbeBus()
        tracer = SpanTracer(causal=False).attach(bus)
        request = _Request("get_command")
        bus.emit(METHOD_CALL, 5, "top.channel", request)
        request.result = (0, _Payload(corr_id="top.app#1"))
        bus.emit(METHOD_COMPLETE, 15, "top.channel", request)
        assert list(tracer.roots) == ["top.app#1"]

    def test_uncorrelated_method_span_is_orphaned(self):
        bus = ProbeBus()
        tracer = SpanTracer(causal=False).attach(bus)
        request = _Request("try_lock")
        bus.emit(METHOD_CALL, 5, "top.channel", request)
        bus.emit(METHOD_COMPLETE, 6, "top.channel", request)
        assert not tracer.roots
        assert len(tracer.orphans) == 1

    def test_wire_span_matched_by_time_and_address(self):
        bus = ProbeBus()
        tracer = SpanTracer(causal=False).attach(bus)
        operation = _Payload(
            corr_id="top.app#2", txn_id=1, address=0x100, count=2
        )
        bus.emit(TRANSACTION_BEGIN, 100, "top.master", operation)
        wire = _Payload(
            txn_id=2, address=0x104, terminated_by="completion",
            devsel_time=130,
        )
        bus.emit(TRANSACTION_BEGIN, 120, "top.monitor", wire)
        bus.emit(TRANSACTION_END, 180, "top.monitor", wire)
        bus.emit(TRANSACTION_END, 200, "top.master", operation)
        tracer.finalize()
        root = tracer.roots["top.app#2"]
        bus_span = root.find(BUS)
        wire_span = root.find(WIRE)
        assert wire_span is not None
        assert wire_span.corr_id == "top.app#2"
        assert wire_span in bus_span.children
        phases = [c for c in wire_span.children if c.category == PHASE]
        assert [p.name for p in phases] == ["devsel_wait"]

    def test_unmatched_wire_span_is_orphaned(self):
        bus = ProbeBus()
        tracer = SpanTracer(causal=False).attach(bus)
        wire = _Payload(address=0x900, terminated_by="completion")
        bus.emit(TRANSACTION_BEGIN, 10, "top.monitor", wire)
        bus.emit(TRANSACTION_END, 20, "top.monitor", wire)
        tracer.finalize()
        assert len(tracer.orphans) == 1

    def test_detach_stops_recording(self):
        bus = ProbeBus()
        tracer = SpanTracer(causal=False).attach(bus)
        tracer.detach()
        request = _Request("put_command", args=(_Payload(corr_id="x#0"),))
        bus.emit(METHOD_CALL, 1, "ch", request)
        bus.emit(METHOD_COMPLETE, 2, "ch", request)
        assert not tracer.roots and not tracer.orphans


def _traced_platform(n_commands=4, synthesize=True):
    commands = [
        CommandType.write(0x100, [0xAA, 0xBB]),
        CommandType.read(0x100, count=2),
        CommandType.write(0x200, 0x11223344),
        CommandType.read(0x200),
    ][:n_commands]
    bundle = build_pci_platform([commands], synthesize=synthesize)
    tracer = SpanTracer().attach(bundle.handle.sim.probes)
    bundle.run(100 * MS)
    return tracer.finalize()


class TestPlatformIntegration:
    def test_every_command_assembles_one_root(self):
        tracer = _traced_platform()
        roots = tracer.transactions()
        assert [r.corr_id for r in roots] == [
            f"top.app0#{i}" for i in range(4)
        ]
        for root in roots:
            assert root.complete
            assert root.find(METHOD, "put_command") is not None
            assert root.find(BUS) is not None
            assert root.find(WIRE) is not None

    def test_attribution_covers_all_categories(self):
        report = attribute(_traced_platform())
        assert len(report) == 4
        for name in ("queue_wait", "arbitration", "bus_transfer", "completion"):
            assert report.aggregate[name] > 0, name
        for txn in report.transactions:
            assert txn.total == sum(txn.categories.values())
        rendered = report.render()
        assert "queue_wait" in rendered and "TOTAL" in rendered

    def test_reads_pay_completion_writes_do_not(self):
        report = attribute(_traced_platform())
        by_corr = {t.corr_id: t for t in report.transactions}
        assert by_corr["top.app0#1"].categories["completion"] > 0
        assert by_corr["top.app0#0"].categories["completion"] == 0

    def test_critical_path_walks_causal_edges(self):
        tracer = _traced_platform()
        path = critical_path(tracer)
        assert len(path) >= 1
        assert path.hops[0].time >= path.hops[-1].time
        assert "critical path" in path.render()

    def test_chrome_events_cover_all_roots(self):
        tracer = _traced_platform()
        events = tracer.chrome_events()
        assert len({e["tid"] for e in events}) == 4
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_pin_accurate_platform_also_assembles(self):
        tracer = _traced_platform(synthesize=False)
        assert len(tracer.complete_transactions()) == 4

    def test_to_dict_is_json_ready(self):
        import json

        doc = tracer_doc = _traced_platform().to_dict()
        assert json.loads(json.dumps(doc)) == tracer_doc
        assert len(doc["transactions"]) == 4
