"""Round-trip tests: VcdTracer output parsed back by parse_vcd."""

import io

import pytest

from repro.errors import SimulationError
from repro.hdl import Clock, Module
from repro.kernel import NS, Simulator, Timeout
from repro.trace import VcdTracer, diff_dumps, parse_vcd


def _dump_session(drive, signals_of):
    sim = Simulator()
    top = Module(sim, "top")
    signals = signals_of(top)
    stream = io.StringIO()
    tracer = VcdTracer(stream)
    tracer.add_signals(signals)
    sim.add_tracer(tracer)
    sim.spawn(lambda: drive(sim, signals), "drive")
    sim.run(1000 * NS)
    tracer.close(sim.time)
    return stream.getvalue()


class TestRoundTrip:
    def test_scalar_roundtrip(self):
        def drive(sim, signals):
            signal = signals[0]
            for value in (1, 0, "Z", 1):
                yield Timeout(10 * NS)
                signal.write(value)

        text = _dump_session(drive, lambda top: [top.signal("bit", width=1,
                                                            init=0)])
        dump = parse_vcd(text)
        signal = dump.signal("top.bit")
        values = [v for __, v in signal.changes]
        assert values == ["0", "1", "0", "Z", "1"]
        assert signal.width == 1

    def test_vector_roundtrip(self):
        def drive(sim, signals):
            signal = signals[0]
            for value in (0xAB, 0xCD):
                yield Timeout(10 * NS)
                signal.write(value)

        text = _dump_session(drive, lambda top: [top.signal("data", width=8)])
        dump = parse_vcd(text)
        changes = dump.signal("top.data").changes
        assert changes[-1][1] == "11001101"
        assert changes[-1][0] == 20 * NS

    def test_value_at(self):
        def drive(sim, signals):
            signals[0].write(5)
            yield Timeout(10 * NS)
            signals[0].write(9)

        text = _dump_session(drive, lambda top: [top.signal("d", width=4,
                                                            init=0)])
        dump = parse_vcd(text)
        signal = dump.signal("top.d")
        assert signal.value_at(5 * NS) == "0101"
        assert signal.value_at(50 * NS) == "1001"

    def test_timescale_and_end_time(self):
        def drive(sim, signals):
            yield Timeout(100 * NS)
            signals[0].write(1)

        text = _dump_session(drive, lambda top: [top.signal("b", width=1,
                                                            init=0)])
        dump = parse_vcd(text)
        assert dump.timescale == "1 fs"
        assert dump.end_time >= 100 * NS

    def test_scopes_reconstructed(self):
        def drive(sim, signals):
            return
            yield

        def build(top):
            child = Module(top, "inner")
            return [child.signal("s", width=1, init=0)]

        text = _dump_session(drive, build)
        dump = parse_vcd(text)
        assert "top.inner.s" in dump.signals

    def test_clock_dump_roundtrip(self):
        sim = Simulator()
        clock = Clock(sim, "clk", period=10 * NS)
        stream = io.StringIO()
        tracer = VcdTracer(stream)
        tracer.add_signal(clock.clk)
        sim.add_tracer(tracer)
        sim.run(100 * NS)
        tracer.close(sim.time)
        dump = parse_vcd(stream.getvalue())
        values = [v for __, v in dump.signal("clk.clk").changes]
        # Initial 0 then alternating edges.
        assert values[0] == "0"
        assert values[1:5] == ["1", "0", "1", "0"]


class TestDiff:
    def _text(self, payload):
        def drive(sim, signals):
            for value in payload:
                yield Timeout(10 * NS)
                signals[0].write(value)

        return _dump_session(drive, lambda top: [top.signal("d", width=8,
                                                            init=0)])

    def test_identical_dumps(self):
        a = parse_vcd(self._text([1, 2, 3]))
        b = parse_vcd(self._text([1, 2, 3]))
        assert diff_dumps(a, b) == []

    def test_diverging_dumps(self):
        a = parse_vcd(self._text([1, 2, 3]))
        b = parse_vcd(self._text([1, 9, 3]))
        problems = diff_dumps(a, b)
        assert problems and "top.d" in problems[0]


class TestGoldenVsFaulty:
    """The fault classifier's use of the reader: dump a clean and an
    infected session, parse both, and let ``diff_dumps`` name the
    corrupted wire."""

    def _session(self, with_fault=False):
        from repro.fault import make_fault

        sim = Simulator()
        top = Module(sim, "top")
        data = top.signal("data", width=8, init=0)
        stream = io.StringIO()
        tracer = VcdTracer(stream)
        tracer.add_signal(data)
        sim.add_tracer(tracer)

        def drive():
            for value in (0x11, 0x22, 0x44):
                yield Timeout(10 * NS)
                data.write(value)

        sim.spawn(drive, "drive")
        sim.elaborate()
        if with_fault:
            fault = make_fault(
                "bit_flip", "top.data", (15 * NS, 35 * NS), bit=7
            )
            fault.arm(sim)
        sim.run(100 * NS)
        tracer.close(sim.time)
        return stream.getvalue()

    def test_faulty_dump_diverges_from_golden(self):
        golden = parse_vcd(self._session())
        faulty = parse_vcd(self._session(with_fault=True))
        problems = diff_dumps(golden, faulty)
        assert problems and "top.data" in problems[0]

    def test_same_fault_reproduces_identical_dump(self):
        assert self._session(with_fault=True) == \
            self._session(with_fault=True)

    def test_corrupted_value_visible_in_parsed_dump(self):
        faulty = parse_vcd(self._session(with_fault=True))
        values = [v for __, v in faulty.signal("top.data").changes]
        # 0x22 committed at 20 ns gets bit 7 flipped -> 0xA2.
        assert "10100010" in values


class TestErrors:
    def test_unterminated_directive(self):
        with pytest.raises(SimulationError):
            parse_vcd("$timescale 1 fs")

    def test_undeclared_identifier(self):
        text = "$timescale 1 fs $end $enddefinitions $end #0 1!"
        with pytest.raises(SimulationError):
            parse_vcd(text)

    def test_unknown_signal_lookup(self):
        dump = parse_vcd("$timescale 1 fs $end $enddefinitions $end")
        with pytest.raises(SimulationError):
            dump.signal("nope")
