"""Unit tests for the ASCII waveform renderer."""

from repro.hdl import Clock, Module
from repro.kernel import NS, Simulator, Timeout
from repro.trace import WaveformCapture, render


def _platform():
    sim = Simulator()
    clock = Clock(sim, "clk", period=10 * NS)
    top = Module(sim, "top")
    data = top.signal("data", width=8, init=0)
    enable = top.signal("enable", width=1, init=0)

    def proc():
        yield Timeout(20 * NS)
        enable.write(1)
        data.write(0xAB)
        yield Timeout(20 * NS)
        enable.write(0)

    sim.spawn(proc, "p")
    capture = WaveformCapture()
    capture.add_signals([clock.clk, data, enable])
    sim.add_tracer(capture)
    sim.run(60 * NS)
    return capture


class TestRender:
    def test_scalar_level_art(self):
        capture = _platform()
        text = render(capture, ["top.enable"], 0, 60 * NS, 5 * NS)
        line = [l for l in text.splitlines() if l.startswith("enable")][0]
        art = line.split()[-1]
        assert set(art) <= {"#", "_"}
        assert "_" in art and "#" in art
        # Low for the first 4 columns (0..15 ns), high afterwards.
        assert art.startswith("____")

    def test_clock_alternates(self):
        capture = _platform()
        text = render(capture, ["clk.clk"], 0, 40 * NS, 5 * NS)
        line = [l for l in text.splitlines() if "clk" in l][0]
        art = line.split()[-1]
        assert "_#" in art and "#_" in art

    def test_vector_shows_hex_at_change(self):
        capture = _platform()
        text = render(capture, ["top.data"], 0, 60 * NS, 5 * NS)
        assert "ab" in text
        assert "00" in text

    def test_labels_override(self):
        capture = _platform()
        text = render(
            capture, ["top.enable"], 0, 30 * NS, 5 * NS,
            labels={"top.enable": "EN"},
        )
        assert "EN" in text

    def test_time_ruler_present(self):
        capture = _platform()
        text = render(capture, ["top.enable"], 0, 60 * NS, 10 * NS,
                      time_unit=10 * NS)
        ruler = text.splitlines()[0]
        assert "0" in ruler and "5" in ruler

    def test_tristate_rendering(self):
        sim = Simulator()
        top = Module(sim, "top")
        bus = top.resolved_signal("wire", 1)
        driver = bus.get_driver("d")

        def proc():
            yield Timeout(10 * NS)
            driver.write(1)
            yield Timeout(10 * NS)
            driver.release()
            yield Timeout(10 * NS)

        sim.spawn(proc, "p")
        capture = WaveformCapture()
        capture.add_signal(bus)
        sim.add_tracer(capture)
        sim.run(40 * NS)
        text = render(capture, ["top.wire"], 0, 30 * NS, 5 * NS)
        art = text.splitlines()[1].split()[-1]
        assert "~" in art  # tri-state portions
        assert "#" in art  # driven-high portion
