"""Unit tests for in-memory waveform capture and comparison."""

import pytest

from repro.errors import SimulationError
from repro.hdl import Module
from repro.kernel import NS, Simulator, Timeout
from repro.trace import WaveformCapture


def _build(sim, values, period=10 * NS):
    """A module whose signal steps through *values* every *period*."""
    top = Module(sim, "top")
    signal = top.signal("data", width=8, init=values[0])

    def proc():
        for value in values[1:]:
            yield Timeout(period)
            signal.write(value)
        yield Timeout(period)

    sim.spawn(proc, "driver")
    return signal


class TestCapture:
    def test_history_records_changes(self):
        sim = Simulator()
        signal = _build(sim, [0, 1, 2])
        capture = WaveformCapture()
        capture.add_signal(signal)
        sim.add_tracer(capture)
        sim.run(100 * NS)
        changes = capture.changes("top.data")
        assert [v.to_int() for __, v in changes] == [0, 1, 2]
        assert capture.change_count("top.data") == 2

    def test_value_at_interpolates(self):
        sim = Simulator()
        signal = _build(sim, [7, 8])
        capture = WaveformCapture()
        capture.add_signal(signal)
        sim.add_tracer(capture)
        sim.run(100 * NS)
        assert capture.value_at("top.data", 0).to_int() == 7
        assert capture.value_at("top.data", 9 * NS).to_int() == 7
        assert capture.value_at("top.data", 10 * NS).to_int() == 8
        assert capture.value_at("top.data", 99 * NS).to_int() == 8

    def test_sample_grid(self):
        sim = Simulator()
        signal = _build(sim, [0, 1])
        capture = WaveformCapture()
        capture.add_signal(signal)
        sim.add_tracer(capture)
        sim.run(100 * NS)
        samples = capture.sample("top.data", 0, 30 * NS, 10 * NS)
        assert [v.to_int() for __, v in samples] == [0, 1, 1]

    def test_sample_bad_step(self):
        capture = WaveformCapture()
        sim = Simulator()
        signal = _build(sim, [0])
        capture.add_signal(signal)
        sim.add_tracer(capture)
        sim.run(20 * NS)
        with pytest.raises(SimulationError):
            capture.sample("top.data", 0, 10, 0)

    def test_unknown_signal_raises(self):
        capture = WaveformCapture()
        with pytest.raises(SimulationError):
            capture.value_at("nope", 0)


class TestDiff:
    def _capture_for(self, values):
        sim = Simulator()
        signal = _build(sim, values)
        capture = WaveformCapture()
        capture.add_signal(signal)
        sim.add_tracer(capture)
        sim.run(200 * NS)
        return capture

    def test_identical_runs_match(self):
        a = self._capture_for([0, 1, 2])
        b = self._capture_for([0, 1, 2])
        assert a.diff(b) == []

    def test_differing_runs_flagged(self):
        a = self._capture_for([0, 1, 2])
        b = self._capture_for([0, 1, 3])
        problems = a.diff(b)
        assert len(problems) == 1
        assert "top.data" in problems[0]

    def test_rename_mapping(self):
        a = self._capture_for([0, 5])
        b = self._capture_for([0, 5])
        b.history["renamed.data"] = b.history.pop("top.data")
        assert a.diff(b, rename=lambda n: n.replace("top", "renamed")) == []
