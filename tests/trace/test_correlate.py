"""Cross-refinement correlation and the ``spans`` CLI."""

import json

from repro.__main__ import main
from repro.core import generate_workload
from repro.trace import SpanTracer, correlate
from repro.trace.cli import diff_levels, trace_level
from repro.trace.spans import TRANSACTION, Span


def _tracer_with(roots):
    tracer = SpanTracer(causal=False)
    for corr_id, (start, end, sig) in roots.items():
        root = Span(corr_id, TRANSACTION, start, corr_id=corr_id)
        root.end_time = end
        root.meta["command_sig"] = sig
        child = root.add_child(Span("put_command", "method", start))
        child.end_time = end
        tracer.roots[corr_id] = root
    tracer._finalized = True
    return tracer


class TestCorrelate:
    def test_matching_roots_are_consistent(self):
        diff = correlate(
            _tracer_with({"a#0": (0, 100, ("w",)), "a#1": (100, 250, ("r",))}),
            _tracer_with({"a#0": (0, 160, ("w",)), "a#1": (100, 400, ("r",))}),
            "spec", "rtl",
        )
        assert diff.consistent
        assert len(diff.matched_entries) == 2
        assert [e.delta for e in diff.entries] == [60, 150]
        assert diff.mean_delta == 105
        assert "spec" in diff.render() and "rtl" in diff.render()

    def test_signature_divergence_is_a_mismatch(self):
        diff = correlate(
            _tracer_with({"a#0": (0, 100, ("w", 1))}),
            _tracer_with({"a#0": (0, 100, ("w", 2))}),
        )
        assert not diff.consistent
        assert diff.entries[0].signature_match is False
        assert "command_sig" in diff.report.mismatches[0]

    def test_missing_transaction_is_a_mismatch(self):
        diff = correlate(
            _tracer_with({"a#0": (0, 100, ("w",)), "a#1": (0, 50, ("r",))}),
            _tracer_with({"a#0": (0, 100, ("w",))}),
        )
        assert not diff.consistent
        assert any("missing" in m for m in diff.report.mismatches)
        assert len(diff.matched_entries) == 1

    def test_to_dict_round_trips_through_json(self):
        diff = correlate(
            _tracer_with({"a#0": (0, 100, ("w",))}),
            _tracer_with({"a#0": (0, 130, ("w",))}),
        )
        doc = json.loads(json.dumps(diff.to_dict()))
        assert doc["entries"][0]["delta"] == 30
        assert doc["consistency"]["consistent"] is True


class TestRefinementDiff:
    def test_spec_vs_rtl_over_same_workload(self):
        workload = generate_workload(
            seed=55, n_commands=6, address_span=0x400, max_burst=4,
            partial_byte_enable_fraction=0.2,
        )
        diff, tracer_a, tracer_b = diff_levels(
            "pin_accurate", "post_synthesis", workload
        )
        assert diff.consistent
        assert len(diff.matched_entries) == len(workload)
        # Synthesis adds handshake latency to every transaction.
        assert all(e.delta > 0 for e in diff.matched_entries)
        assert all(e.signature_match for e in diff.matched_entries)

    def test_functional_level_traces_too(self):
        workload = generate_workload(seed=7, n_commands=4)
        tracer, result = trace_level("functional", workload)
        assert len(tracer.complete_transactions()) == len(workload)


class TestSpansCli:
    def test_diff_subcommand_exits_zero_when_consistent(self, capsys):
        code = main([
            "spans", "--diff", "pin_accurate", "post_synthesis",
            "--n-commands", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "CONSISTENT" in out
        assert "4/4 matched" in out

    def test_diff_json_output(self, capsys, tmp_path):
        path = tmp_path / "diff.json"
        code = main([
            "spans", "--diff", "pin_accurate", "post_synthesis",
            "--n-commands", "3", "--json", str(path),
        ])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["diff"]["consistency"]["consistent"] is True
        assert len(doc["diff"]["entries"]) == 3
        assert doc["attribution_b"]["total"] > doc["attribution_a"]["total"]

    def test_script_mode_requires_script(self, capsys):
        assert main(["spans"]) == 2
