"""Unit tests for the VCD writer."""

import io

import pytest

from repro.errors import SimulationError
from repro.hdl import Clock, Module
from repro.kernel import NS, Simulator, Timeout
from repro.trace import VcdTracer


@pytest.fixture
def sim():
    return Simulator()


def _run_with_vcd(sim, build):
    stream = io.StringIO()
    tracer = VcdTracer(stream)
    build(tracer)
    sim.add_tracer(tracer)
    sim.run(100 * NS)
    tracer.close(sim.time)
    return stream.getvalue()


class TestHeader:
    def test_header_structure(self, sim):
        top = Module(sim, "top")
        signal = top.signal("data", width=8, init=0)

        def build(tracer):
            tracer.add_signal(signal)

        text = _run_with_vcd(sim, build)
        assert "$timescale 1 fs $end" in text
        assert "$scope module top $end" in text
        assert "$var wire 8" in text
        assert "data" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_nested_scopes(self, sim):
        top = Module(sim, "top")
        child = Module(top, "inner")
        signal = child.signal("s", width=1)

        def build(tracer):
            tracer.add_signal(signal)

        text = _run_with_vcd(sim, build)
        assert text.index("$scope module top $end") < text.index(
            "$scope module inner $end"
        )
        assert text.count("$upscope $end") == 2


class TestChanges:
    def test_vector_changes_recorded(self, sim):
        top = Module(sim, "top")
        signal = top.signal("data", width=8, init=0)

        def proc():
            yield Timeout(10 * NS)
            signal.write(0xA5)

        sim.spawn(proc, "p")

        def build(tracer):
            tracer.add_signal(signal)

        text = _run_with_vcd(sim, build)
        assert f"#{10 * NS}" in text
        assert "b10100101" in text

    def test_scalar_and_xz_formatting(self, sim):
        top = Module(sim, "top")
        signal = top.signal("bit", width=1, init=0)

        def proc():
            yield Timeout(10 * NS)
            signal.write("Z")
            yield Timeout(10 * NS)
            signal.write(1)

        sim.spawn(proc, "p")

        def build(tracer):
            tracer.add_signal(signal)

        text = _run_with_vcd(sim, build)
        lines = text.splitlines()
        assert any(line.startswith("z") for line in lines)
        assert any(line.startswith("1") for line in lines)

    def test_unwatched_signal_ignored(self, sim):
        top = Module(sim, "top")
        watched = top.signal("w", width=1, init=0)
        unwatched = top.signal("u", width=1, init=0)

        def proc():
            yield Timeout(5 * NS)
            unwatched.write(1)

        sim.spawn(proc, "p")

        def build(tracer):
            tracer.add_signal(watched)

        text = _run_with_vcd(sim, build)
        assert f"#{5 * NS}" not in text

    def test_add_module_watches_subtree(self, sim):
        top = Module(sim, "top")
        child = Module(top, "c")
        s1 = child.signal("s1", width=1)
        s2 = child.signal("s2", width=2)
        other = Module(sim, "other")
        s3 = other.signal("s3", width=1)

        stream = io.StringIO()
        tracer = VcdTracer(stream)
        tracer.add_module(top)
        sim.add_tracer(tracer)
        sim.run(1)
        tracer.close()
        text = stream.getvalue()
        assert "s1" in text and "s2" in text
        assert "s3" not in text

    def test_clock_toggles_in_dump(self, sim):
        clock = Clock(sim, "clk", period=10 * NS)
        stream = io.StringIO()
        tracer = VcdTracer(stream)
        tracer.add_signal(clock.clk)
        sim.add_tracer(tracer)
        sim.run(40 * NS)
        tracer.close(sim.time)
        text = stream.getvalue()
        # 4 edges in 40 ns with period 10 ns.
        assert text.count("#") >= 4

    def test_cannot_add_after_header(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=1, init=0)
        stream = io.StringIO()
        tracer = VcdTracer(stream)
        tracer.add_signal(signal)
        sim.add_tracer(tracer)

        def proc():
            signal.write(1)
            yield Timeout(0)

        sim.spawn(proc, "p")
        sim.run(10)
        with pytest.raises(SimulationError):
            tracer.add_signal(top.signal("late", width=1))

    def test_file_output(self, sim, tmp_path):
        top = Module(sim, "top")
        signal = top.signal("s", width=1, init=0)
        path = str(tmp_path / "dump.vcd")
        tracer = VcdTracer(path)
        tracer.add_signal(signal)
        sim.add_tracer(tracer)
        sim.run(1)
        tracer.close()
        with open(path) as handle:
            assert "$enddefinitions" in handle.read()
