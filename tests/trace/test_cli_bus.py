"""``spans --diff`` must honor the global ``--bus`` family flag."""

import json

from repro.__main__ import main
from repro.core import generate_workload
from repro.trace.cli import diff_levels


class TestDiffBusSelection:
    def test_diff_levels_accepts_other_families(self):
        workload = generate_workload(seed=55, n_commands=3)
        diff, __, __ = diff_levels(
            "pin_accurate", "post_synthesis", workload, bus="wishbone"
        )
        assert diff.consistent
        assert len(diff.matched_entries) == 3

    def test_cli_bus_flag_reaches_the_diff(self, capsys):
        code = main([
            "--bus", "wishbone",
            "spans", "--diff", "pin_accurate", "post_synthesis",
            "--n-commands", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bus wishbone" in out
        assert "CONSISTENT" in out

    def test_cli_defaults_to_pci(self, capsys):
        code = main([
            "spans", "--diff", "pin_accurate", "post_synthesis",
            "--n-commands", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bus pci" in out

    def test_functional_bus_is_rejected(self, capsys):
        code = main([
            "--bus", "functional",
            "spans", "--diff", "pin_accurate", "post_synthesis",
            "--n-commands", "3",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "functional" in err

    def test_bus_choice_changes_measured_latency(self, tmp_path):
        """Different families genuinely produce different span forests."""
        totals = {}
        for bus in ("pci", "axi4lite"):
            path = tmp_path / f"{bus}.json"
            code = main([
                "--bus", bus,
                "spans", "--diff", "pin_accurate", "post_synthesis",
                "--n-commands", "3", "--json", str(path),
            ])
            assert code == 0
            totals[bus] = json.loads(path.read_text())["attribution_b"][
                "total"
            ]
        assert totals["pci"] != totals["axi4lite"]
