"""Unit tests for module hierarchy, ports and binding."""

import pytest

from repro.errors import ElaborationError
from repro.hdl import IN, INOUT, Module, OUT
from repro.kernel import NS, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestHierarchy:
    def test_paths(self, sim):
        top = Module(sim, "top")
        mid = Module(top, "mid")
        leaf = Module(mid, "leaf")
        assert leaf.path == "top.mid.leaf"
        assert leaf.sim is sim
        assert top.children == (mid,)

    def test_iter_modules_depth_first(self, sim):
        top = Module(sim, "top")
        a = Module(top, "a")
        b = Module(top, "b")
        a1 = Module(a, "a1")
        assert list(top.iter_modules()) == [top, a, a1, b]

    def test_bad_parent_rejected(self):
        with pytest.raises(ElaborationError):
            Module("not a parent", "x")


class TestPorts:
    def test_port_binding_and_io(self, sim):
        top = Module(sim, "top")
        wire = top.signal("wire", width=8, init=0)

        class Producer(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.out = self.out_port("out", width=8)
                self.thread(self._run)

            def _run(self):
                self.out.write(0x42)
                yield Timeout(0)

        class Consumer(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.inp = self.in_port("inp", width=8)
                self.seen = None
                self.thread(self._run)

            def _run(self):
                yield self.inp.changed
                self.seen = self.inp.read().to_int()

        producer = Producer(top, "producer")
        consumer = Consumer(top, "consumer")
        producer.out.bind(wire)
        consumer.inp.bind(wire)
        sim.run(10 * NS)
        assert consumer.seen == 0x42

    def test_write_to_input_rejected(self, sim):
        top = Module(sim, "top")
        port = top.in_port("p", width=1)
        port.bind(top.signal("s", width=1))
        with pytest.raises(ElaborationError):
            port.write(1)

    def test_width_mismatch_rejected(self, sim):
        top = Module(sim, "top")
        port = top.in_port("p", width=8)
        with pytest.raises(ElaborationError):
            port.bind(top.signal("s", width=4))

    def test_port_to_port_binding(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=4)
        outer = top.out_port("outer", width=4)
        outer.bind(signal)
        inner = top.out_port("inner", width=4)
        inner.bind(outer)
        assert inner.signal is signal

    def test_binding_to_unbound_port_rejected(self, sim):
        top = Module(sim, "top")
        a = top.in_port("a", width=1)
        b = top.in_port("b", width=1)
        with pytest.raises(ElaborationError):
            a.bind(b)

    def test_inout_needs_resolved(self, sim):
        top = Module(sim, "top")
        bus = top.resolved_signal("bus", 8)
        port = top.in_port("p", width=8)
        with pytest.raises(ElaborationError, match="INOUT"):
            port.bind(bus)

    def test_inout_drives_and_releases(self, sim):
        top = Module(sim, "top")
        bus = top.resolved_signal("bus", 8)
        port = top.inout_port("p", width=8)
        port.bind(bus)

        def proc():
            port.write(0x33)
            yield Timeout(10 * NS)
            port.release()
            yield Timeout(0)

        sim.spawn(proc, "p")
        sim.run(5 * NS)
        assert bus.read().to_int() == 0x33
        sim.run(20 * NS)
        assert bus.read().is_all_z

    def test_unbound_read_raises(self, sim):
        top = Module(sim, "top")
        port = top.in_port("p", width=1)
        with pytest.raises(ElaborationError):
            port.read()

    def test_bad_direction_rejected(self, sim):
        from repro.hdl.port import Port
        with pytest.raises(ElaborationError):
            Port("top", "p", "sideways")


class TestSensitivity:
    def test_method_sensitive_to_signal(self, sim):
        top = Module(sim, "top")
        a = top.signal("a", width=1, init=0)
        b = top.signal("b", width=1, init=0)
        # Combinational: b = ~a, evaluated on every change of a.
        top.method(lambda: b.write((~a.read())), sensitivity=[a])

        def driver():
            yield Timeout(10 * NS)
            a.write(1)
            yield Timeout(10 * NS)

        sim.spawn(driver, "d")
        sim.run(30 * NS)
        assert b.read().to_int() == 0

    def test_bad_sensitivity_item_rejected(self, sim):
        top = Module(sim, "top")
        with pytest.raises(ElaborationError):
            top.method(lambda: None, sensitivity=["nope"])
