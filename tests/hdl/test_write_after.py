"""Tests for delayed signal writes and event callbacks."""

import pytest

from repro.errors import SimulationError
from repro.hdl import Module
from repro.kernel import NS, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestWriteAfter:
    def test_value_appears_after_delay(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=8, init=0)
        observed = []

        def driver():
            signal.write_after(0x55, 30 * NS)
            yield Timeout(20 * NS)
            observed.append(signal.read().to_int())
            yield Timeout(20 * NS)
            observed.append(signal.read().to_int())

        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert observed == [0, 0x55]

    def test_zero_delay_is_plain_write(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=8, init=0)

        def driver():
            signal.write_after(9, 0)
            yield Timeout(0)

        sim.spawn(driver, "d")
        sim.run(10)
        assert signal.read().to_int() == 9

    def test_negative_delay_rejected(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=8)
        with pytest.raises(SimulationError):
            signal.write_after(1, -5)

    def test_multiple_scheduled_writes_ordered(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=8, init=0)
        trail = []

        def driver():
            signal.write_after(1, 10 * NS)
            signal.write_after(2, 20 * NS)
            signal.write_after(3, 30 * NS)
            for __ in range(3):
                yield signal.changed
                trail.append(signal.read().to_int())

        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert trail == [1, 2, 3]

    def test_edge_events_fire(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=1, init=0)
        stamps = []

        def watcher():
            yield signal.posedge
            stamps.append(sim.time)

        def driver():
            signal.write_after(1, 25 * NS)
            yield Timeout(0)

        sim.spawn(watcher, "w")
        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert stamps == [25 * NS]


class TestEventCallbacks:
    def test_callback_runs_once_on_trigger(self, sim):
        event = sim.event("e")
        calls = []
        event.add_callback(lambda: calls.append(sim.time))

        def driver():
            yield Timeout(10 * NS)
            event.notify()
            yield Timeout(10 * NS)
            event.notify()  # callback already consumed

        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert calls == [10 * NS]

    def test_callbacks_and_waiters_both_fire(self, sim):
        event = sim.event("e")
        log = []
        event.add_callback(lambda: log.append("callback"))

        def waiter():
            yield event
            log.append("waiter")

        def driver():
            yield Timeout(5 * NS)
            event.notify()

        sim.spawn(waiter, "w")
        sim.spawn(driver, "d")
        sim.run(50 * NS)
        assert "callback" in log and "waiter" in log
