"""Unit tests for resolved (tri-state, multi-driver) signals."""

import pytest

from repro.errors import WidthError
from repro.hdl import LogicVector, ResolvedSignal
from repro.kernel import NS, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestDrivers:
    def test_driver_handles_are_per_name(self, sim):
        bus = ResolvedSignal(sim, "bus", 8)
        a1 = bus.get_driver("a")
        a2 = bus.get_driver("a")
        b = bus.get_driver("b")
        assert a1 is a2
        assert a1 is not b
        assert set(bus.driver_names) == {"a", "b"}

    def test_initial_value_floats(self, sim):
        bus = ResolvedSignal(sim, "bus", 8)
        assert bus.read().is_all_z

    def test_driver_width_checked(self, sim):
        bus = ResolvedSignal(sim, "bus", 8)
        driver = bus.get_driver("a")
        with pytest.raises(WidthError):
            driver.write(LogicVector(4, 0))


class TestResolutionOverTime:
    def test_single_driver(self, sim):
        bus = ResolvedSignal(sim, "bus", 4)
        driver = bus.get_driver("a")

        def proc():
            driver.write(0b1010)
            yield Timeout(0)

        sim.spawn(proc, "p")
        sim.run(10)
        assert bus.read().to_int() == 0b1010

    def test_release_returns_to_z(self, sim):
        bus = ResolvedSignal(sim, "bus", 4)
        driver = bus.get_driver("a")

        def proc():
            driver.write(0xF)
            yield Timeout(10 * NS)
            driver.release()
            yield Timeout(0)

        sim.spawn(proc, "p")
        sim.run(20 * NS)
        assert bus.read().is_all_z

    def test_bus_handover(self, sim):
        """Classic turnaround: driver A releases, driver B takes over."""
        bus = ResolvedSignal(sim, "bus", 8)
        a = bus.get_driver("a")
        b = bus.get_driver("b")
        trace = []

        def proc_a():
            a.write(0x11)
            yield Timeout(10 * NS)
            a.release()

        def proc_b():
            yield Timeout(20 * NS)
            b.write(0x22)
            yield Timeout(0)

        def probe():
            yield Timeout(5 * NS)
            trace.append(str(bus.read()))
            yield Timeout(10 * NS)
            trace.append(str(bus.read()))
            yield Timeout(10 * NS)
            trace.append(str(bus.read()))

        sim.spawn(proc_a, "a")
        sim.spawn(proc_b, "b")
        sim.spawn(probe, "probe")
        sim.run(50 * NS)
        assert trace == ["00010001", "ZZZZZZZZ", "00100010"]

    def test_contention_produces_x(self, sim):
        bus = ResolvedSignal(sim, "bus", 4)
        a = bus.get_driver("a")
        b = bus.get_driver("b")

        def proc():
            a.write(0b1111)
            b.write(0b0000)
            yield Timeout(0)

        sim.spawn(proc, "p")
        sim.run(10)
        assert str(bus.read()) == "XXXX"

    def test_changed_event(self, sim):
        bus = ResolvedSignal(sim, "bus", 4)
        driver = bus.get_driver("a")
        wakes = []

        def watcher():
            while True:
                yield bus.changed
                wakes.append(str(bus.read()))

        def proc():
            yield Timeout(10 * NS)
            driver.write(5)
            yield Timeout(10 * NS)
            driver.write(5)  # no change: no event
            yield Timeout(10 * NS)
            driver.release()

        sim.spawn(watcher, "w")
        sim.spawn(proc, "p")
        sim.run(100 * NS)
        assert wakes == ["0101", "ZZZZ"]
