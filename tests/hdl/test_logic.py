"""Unit tests for four-valued scalar logic."""

import pytest

from repro.errors import LogicValueError
from repro.hdl import L0, L1, LX, LZ, Logic, resolve


class TestConstruction:
    def test_interning(self):
        assert Logic("1") is L1
        assert Logic(0) is L0
        assert Logic("x") is LX
        assert Logic("z") is LZ
        assert Logic(True) is L1
        assert Logic(L0) is L0

    def test_invalid_literals(self):
        with pytest.raises(LogicValueError):
            Logic("q")
        with pytest.raises(LogicValueError):
            Logic(2)
        with pytest.raises(LogicValueError):
            Logic(3.5)

    def test_char_property(self):
        assert L1.char == "1"
        assert LZ.char == "Z"


class TestConversion:
    def test_bool_defined(self):
        assert bool(L1) is True
        assert bool(L0) is False

    def test_bool_undefined_raises(self):
        with pytest.raises(LogicValueError):
            bool(LX)
        with pytest.raises(LogicValueError):
            bool(LZ)

    def test_to_int(self):
        assert L1.to_int() == 1
        assert L0.to_int() == 0

    def test_equality_with_primitives(self):
        assert L1 == 1
        assert L0 == False  # noqa: E712 - deliberate primitive comparison
        assert L1 == "1"
        assert LX != 1


class TestOperators:
    def test_invert(self):
        assert ~L0 is L1
        assert ~L1 is L0
        assert ~LX is LX
        assert ~LZ is LX

    def test_and_dominant_zero(self):
        assert (L0 & LX) is L0
        assert (LX & L0) is L0
        assert (L1 & L1) is L1
        assert (L1 & LX) is LX
        assert (LZ & L1) is LX

    def test_or_dominant_one(self):
        assert (L1 | LX) is L1
        assert (LX | L1) is L1
        assert (L0 | L0) is L0
        assert (L0 | LX) is LX

    def test_xor(self):
        assert (L1 ^ L0) is L1
        assert (L1 ^ L1) is L0
        assert (L1 ^ LX) is LX

    def test_is_defined(self):
        assert L0.is_defined and L1.is_defined
        assert not LX.is_defined and not LZ.is_defined


class TestResolution:
    def test_all_z_is_z(self):
        assert resolve(LZ, LZ, LZ) is LZ

    def test_single_driver_wins(self):
        assert resolve(LZ, L1, LZ) is L1
        assert resolve(L0, LZ) is L0

    def test_agreeing_drivers(self):
        assert resolve(L1, L1) is L1

    def test_conflict_is_x(self):
        assert resolve(L1, L0) is LX

    def test_x_driver_poisons(self):
        assert resolve(LX, L1) is LX

    def test_empty_resolution_is_z(self):
        assert resolve() is LZ
