"""Unit tests for signal update semantics."""

import pytest

from repro.errors import MultipleDriverError
from repro.hdl import LogicVector, Module, Signal
from repro.kernel import NS, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestWriteSemantics:
    def test_read_old_value_in_same_delta(self, sim):
        signal = Signal(sim, "s", width=8, init=1)
        observed = []

        def writer():
            signal.write(2)
            observed.append(signal.read().to_int())  # still old value
            yield Timeout(0)
            observed.append(signal.read().to_int())  # committed now

        sim.spawn(writer, "w")
        sim.run(10)
        assert observed == [1, 2]

    def test_last_write_in_delta_wins(self, sim):
        signal = Signal(sim, "s", width=8, init=0)

        def writer():
            signal.write(1)
            signal.write(2)
            yield Timeout(0)

        sim.spawn(writer, "w")
        sim.run(10)
        assert signal.read().to_int() == 2

    def test_write_coerces_to_vector(self, sim):
        signal = Signal(sim, "s", width=4)
        signal.force(3)
        assert isinstance(signal.read(), LogicVector)

    def test_object_signal_carries_python_values(self, sim):
        signal = Signal(sim, "s", init="hello")
        payload = {"a": 1}

        def writer():
            signal.write(payload)
            yield Timeout(0)

        sim.spawn(writer, "w")
        sim.run(10)
        assert signal.read() is payload


class TestEvents:
    def test_changed_fires_only_on_real_change(self, sim):
        signal = Signal(sim, "s", width=4, init=5)
        wakes = []

        def watcher():
            while True:
                yield signal.changed
                wakes.append(sim.time)

        def writer():
            yield Timeout(10 * NS)
            signal.write(5)  # same value: no event
            yield Timeout(10 * NS)
            signal.write(6)
            yield Timeout(10 * NS)

        sim.spawn(watcher, "watch")
        sim.spawn(writer, "write")
        sim.run(100 * NS)
        assert wakes == [20 * NS]

    def test_posedge_negedge(self, sim):
        signal = Signal(sim, "s", width=1, init=0)
        edges = []

        def pos():
            while True:
                yield signal.posedge
                edges.append(("pos", sim.time))

        def neg():
            while True:
                yield signal.negedge
                edges.append(("neg", sim.time))

        def driver():
            yield Timeout(10 * NS)
            signal.write(1)
            yield Timeout(10 * NS)
            signal.write(0)

        sim.spawn(pos, "p")
        sim.spawn(neg, "n")
        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert ("pos", 10 * NS) in edges
        assert ("neg", 20 * NS) in edges

    def test_bool_signal_edges(self, sim):
        signal = Signal(sim, "s", init=False)
        edges = []

        def watcher():
            yield signal.posedge
            edges.append(sim.time)

        def driver():
            yield Timeout(5 * NS)
            signal.write(True)

        sim.spawn(watcher, "w")
        sim.spawn(driver, "d")
        sim.run(50 * NS)
        assert edges == [5 * NS]


class TestSingleWriter:
    def test_two_processes_same_delta_rejected(self, sim):
        signal = Signal(sim, "s", width=4, single_writer=True)

        def writer_a():
            signal.write(1)
            yield Timeout(0)

        def writer_b():
            signal.write(2)
            yield Timeout(0)

        sim.spawn(writer_a, "a")
        sim.spawn(writer_b, "b")
        with pytest.raises(MultipleDriverError):
            sim.run(10)

    def test_same_process_may_rewrite(self, sim):
        signal = Signal(sim, "s", width=4, single_writer=True)

        def writer():
            signal.write(1)
            signal.write(2)
            yield Timeout(0)

        sim.spawn(writer, "w")
        sim.run(10)
        assert signal.read().to_int() == 2

    def test_different_deltas_allowed(self, sim):
        signal = Signal(sim, "s", width=4, single_writer=True)

        def writer_a():
            signal.write(1)
            yield Timeout(0)

        def writer_b():
            yield Timeout(5 * NS)
            signal.write(2)

        sim.spawn(writer_a, "a")
        sim.spawn(writer_b, "b")
        sim.run(10 * NS)
        assert signal.read().to_int() == 2


class TestModuleIntegration:
    def test_module_signal_registered(self, sim):
        module = Module(sim, "top")
        signal = module.signal("data", width=16, init=0xBEEF)
        assert sim.lookup("top.data") is signal
        assert signal.read().to_int() == 0xBEEF

    def test_to_int_helper(self, sim):
        module = Module(sim, "top")
        assert module.signal("a", width=4, init=3).to_int() == 3
        assert module.signal("b", init=True).to_int() == 1
