"""Unit tests for clock and reset generators."""

import pytest

from repro.errors import SimulationError
from repro.hdl import Clock, ResetGenerator
from repro.kernel import NS, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_period_and_edges(self, sim):
        clock = Clock(sim, "clk", period=10 * NS)
        edges = []

        def watcher():
            while True:
                yield clock.posedge
                edges.append(sim.time)

        sim.spawn(watcher, "w")
        sim.run(32 * NS)
        assert edges == [5 * NS, 15 * NS, 25 * NS]
        assert clock.cycle_count == 3

    def test_start_high(self, sim):
        clock = Clock(sim, "clk", period=10 * NS, start_high=True)
        assert clock.clk.read().to_int() == 1
        negedges = []

        def watcher():
            yield clock.negedge
            negedges.append(sim.time)

        sim.spawn(watcher, "w")
        sim.run(20 * NS)
        assert negedges == [5 * NS]

    def test_duty_cycle(self, sim):
        clock = Clock(sim, "clk", period=10 * NS, duty=0.3)
        assert clock.high_time == 3 * NS
        assert clock.low_time == 7 * NS

    def test_invalid_parameters(self, sim):
        with pytest.raises(SimulationError):
            Clock(sim, "c1", period=1)
        with pytest.raises(SimulationError):
            Clock(sim, "c2", period=10 * NS, duty=0.0)
        with pytest.raises(SimulationError):
            Clock(sim, "c3", period=10 * NS, duty=1.5)


class TestReset:
    def test_active_low_deasserts_after_duration(self, sim):
        reset = ResetGenerator(sim, "rst", duration=25 * NS)
        assert reset.rst.read().to_int() == 0
        sim.run(30 * NS)
        assert reset.rst.read().to_int() == 1

    def test_active_high(self, sim):
        reset = ResetGenerator(sim, "rst", duration=10 * NS, active_low=False)
        assert reset.rst.read().to_int() == 1
        sim.run(20 * NS)
        assert reset.rst.read().to_int() == 0

    def test_done_event(self, sim):
        reset = ResetGenerator(sim, "rst", duration=10 * NS)
        stamps = []

        def watcher():
            yield reset.done
            stamps.append(sim.time)

        sim.spawn(watcher, "w")
        sim.run(50 * NS)
        assert stamps == [10 * NS]

    def test_zero_duration_rejected(self, sim):
        with pytest.raises(SimulationError):
            ResetGenerator(sim, "rst", duration=0)
