"""Unit and property tests for LogicVector."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LogicValueError, WidthError
from repro.hdl import L0, L1, LX, LZ, LogicVector, resolve_vectors


class TestConstruction:
    def test_from_int(self):
        vec = LogicVector(8, 0xA5)
        assert vec.to_int() == 0xA5
        assert str(vec) == "10100101"

    def test_int_wraps_to_width(self):
        assert LogicVector(4, 0x1F).to_int() == 0xF

    def test_from_string_msb_first(self):
        vec = LogicVector(4, "10XZ")
        assert vec.bit(3) is L1
        assert vec.bit(2) is L0
        assert vec.bit(1) is LX
        assert vec.bit(0) is LZ

    def test_from_string_wrong_length(self):
        with pytest.raises(WidthError):
            LogicVector(4, "101")

    def test_from_string_bad_char(self):
        with pytest.raises(LogicValueError):
            LogicVector(3, "1q0")

    def test_none_means_all_x(self):
        vec = LogicVector(4, None)
        assert str(vec) == "XXXX"

    def test_scalar_fill(self):
        assert str(LogicVector(3, LZ)) == "ZZZ"
        assert str(LogicVector(3, L1)) == "111"

    def test_factories(self):
        assert LogicVector.ones(4).to_int() == 0xF
        assert LogicVector.zeros(4).to_int() == 0
        assert LogicVector.unknown(2).has_x
        assert LogicVector.high_z(2).is_all_z
        assert LogicVector.from_string("0b1010").to_int() == 10
        assert LogicVector.from_string("1_0_1").to_int() == 5

    def test_zero_width_rejected(self):
        with pytest.raises(WidthError):
            LogicVector(0, 0)


class TestConversion:
    def test_to_int_rejects_xz(self):
        with pytest.raises(LogicValueError):
            LogicVector(4, "1X00").to_int()
        with pytest.raises(LogicValueError):
            LogicVector(4, "1Z00").to_int()

    def test_to_int_default(self):
        assert LogicVector(4, "1X00").to_int_default(-1) == -1
        assert LogicVector(4, "1100").to_int_default(-1) == 0xC

    def test_to_signed(self):
        assert LogicVector(4, 0b1111).to_signed() == -1
        assert LogicVector(4, 0b0111).to_signed() == 7

    def test_to_hex(self):
        assert LogicVector(8, 0xA5).to_hex() == "a5"
        assert LogicVector(8, "XXXX0101").to_hex() == "x5"
        assert LogicVector(8, "ZZZZ0101").to_hex() == "z5"

    def test_index_protocol(self):
        assert hex(LogicVector(8, 0x42)) == "0x42"


class TestBitAccess:
    def test_getitem_int(self):
        vec = LogicVector(4, 0b1010)
        assert vec[1] is L1
        assert vec[0] is L0

    def test_getitem_slice(self):
        vec = LogicVector(8, 0xAB)
        assert vec[0:4].to_int() == 0xB
        assert vec[4:8].to_int() == 0xA

    def test_slice_method(self):
        vec = LogicVector(8, 0xAB)
        assert vec.slice(7, 4).to_int() == 0xA

    def test_slice_out_of_range(self):
        with pytest.raises(WidthError):
            LogicVector(4, 0).slice(4, 0)

    def test_with_bit(self):
        vec = LogicVector(4, 0).with_bit(2, L1)
        assert vec.to_int() == 4
        vec = vec.with_bit(2, "Z")
        assert vec.bit(2) is LZ

    def test_with_slice(self):
        vec = LogicVector(8, 0).with_slice(7, 4, 0xF)
        assert vec.to_int() == 0xF0

    def test_with_slice_width_mismatch(self):
        with pytest.raises(WidthError):
            LogicVector(8, 0).with_slice(7, 4, LogicVector(3, 0))

    def test_concat(self):
        high = LogicVector(4, 0xA)
        low = LogicVector(4, 0x5)
        assert high.concat(low).to_int() == 0xA5

    def test_resized(self):
        assert LogicVector(4, 0xF).resized(8).to_int() == 0x0F
        assert LogicVector(8, 0xFF).resized(4).to_int() == 0xF


class TestOperators:
    def test_invert(self):
        assert (~LogicVector(4, 0b1010)).to_int() == 0b0101

    def test_invert_propagates_unknown(self):
        assert str(~LogicVector(4, "10XZ")) == "01XX"

    def test_and_or_xor(self):
        a, b = LogicVector(4, 0b1100), LogicVector(4, 0b1010)
        assert (a & b).to_int() == 0b1000
        assert (a | b).to_int() == 0b1110
        assert (a ^ b).to_int() == 0b0110

    def test_and_zero_dominates_x(self):
        a = LogicVector(4, "0X0X")
        b = LogicVector(4, "00XX")
        assert str(a & b) == "000X"

    def test_or_one_dominates_x(self):
        a = LogicVector(4, "1X1X")
        b = LogicVector(4, "11XX")
        assert str(a | b) == "111X"

    def test_int_coercion_in_ops(self):
        assert (LogicVector(4, 0b1100) & 0b1010).to_int() == 0b1000

    def test_width_mismatch(self):
        with pytest.raises(WidthError):
            LogicVector(4, 0) & LogicVector(5, 0)

    def test_shifts(self):
        assert (LogicVector(8, 1) << 3).to_int() == 8
        assert (LogicVector(8, 8) >> 3).to_int() == 1

    def test_add_sub_wrap(self):
        assert (LogicVector(4, 15) + 1).to_int() == 0
        assert (LogicVector(4, 0) - 1).to_int() == 15

    def test_reductions(self):
        assert LogicVector(4, 0).reduce_or() is L0
        assert LogicVector(4, 2).reduce_or() is L1
        assert LogicVector(4, "00X0").reduce_or() is LX
        assert LogicVector(4, 0xF).reduce_and() is L1
        assert LogicVector(4, 0xE).reduce_and() is L0
        assert LogicVector(4, "111X").reduce_and() is LX

    def test_popcount(self):
        assert LogicVector(8, 0b1011).popcount() == 3
        assert LogicVector(4, "1X1Z").popcount() == 2

    def test_same_defined_value(self):
        assert LogicVector(4, 5).same_defined_value(5)
        assert not LogicVector(4, "01X1").same_defined_value(5)


class TestResolution:
    def test_no_drivers_high_z(self):
        assert resolve_vectors(4, []).is_all_z

    def test_complementary_drivers(self):
        a = LogicVector(4, "10ZZ")
        b = LogicVector(4, "ZZ01")
        assert str(resolve_vectors(4, [a, b])) == "1001"

    def test_conflicting_bits_become_x(self):
        a = LogicVector(4, "11ZZ")
        b = LogicVector(4, "10ZZ")
        assert str(resolve_vectors(4, [a, b])) == "1XZZ"

    def test_x_driver_poisons_bit(self):
        a = LogicVector(2, "X1")
        b = LogicVector(2, "Z1")
        assert str(resolve_vectors(2, [a, b])) == "X1"

    def test_width_mismatch_rejected(self):
        with pytest.raises(WidthError):
            resolve_vectors(4, [LogicVector(3, 0)])


# -- property-based tests ------------------------------------------------------

widths = st.integers(min_value=1, max_value=64)


@st.composite
def vector_and_value(draw):
    width = draw(widths)
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return width, value


@given(vector_and_value())
def test_roundtrip_int(pair):
    width, value = pair
    assert LogicVector(width, value).to_int() == value


@given(vector_and_value())
def test_roundtrip_string(pair):
    width, value = pair
    vec = LogicVector(width, value)
    assert LogicVector(width, str(vec)) == vec


@given(vector_and_value())
def test_double_invert_is_identity(pair):
    width, value = pair
    vec = LogicVector(width, value)
    assert ~~vec == vec


@given(vector_and_value(), vector_and_value())
def test_and_or_de_morgan(pair_a, pair_b):
    width = max(pair_a[0], pair_b[0])
    a = LogicVector(width, pair_a[1] & ((1 << width) - 1))
    b = LogicVector(width, pair_b[1] & ((1 << width) - 1))
    assert ~(a & b) == (~a | ~b)


@given(vector_and_value())
def test_concat_slice_roundtrip(pair):
    width, value = pair
    vec = LogicVector(width, value)
    doubled = vec.concat(vec)
    assert doubled.slice(width - 1, 0) == vec
    assert doubled.slice(2 * width - 1, width) == vec


@given(vector_and_value(), st.integers(min_value=0, max_value=63))
def test_with_bit_then_read(pair, index):
    width, value = pair
    index %= width
    vec = LogicVector(width, value).with_bit(index, L1)
    assert vec.bit(index) is L1
    vec = vec.with_bit(index, L0)
    assert vec.bit(index) is L0


@given(st.lists(vector_and_value(), min_size=1, max_size=5))
def test_resolution_defined_drivers(pairs):
    """With all drivers fully defined, any conflict bit must be X."""
    width = max(p[0] for p in pairs)
    drivers = [LogicVector(width, p[1] & ((1 << width) - 1)) for p in pairs]
    resolved = resolve_vectors(width, drivers)
    for i in range(width):
        bits = {driver.bit(i) for driver in drivers}
        if len(bits) == 1:
            assert resolved.bit(i) is bits.pop()
        else:
            assert resolved.bit(i) is LX


@given(vector_and_value())
def test_resolution_with_z_is_transparent(pair):
    width, value = pair
    vec = LogicVector(width, value)
    floating = LogicVector.high_z(width)
    assert resolve_vectors(width, [vec, floating]) == vec
