"""Unit tests for consistency reporting."""

import pytest

from repro.errors import ConsistencyError
from repro.verify import (
    ConsistencyReport,
    check_bus_transactions,
    check_traces,
    compare_streams,
)


class TestCompareStreams:
    def test_equal_streams(self):
        report = ConsistencyReport("a", "b")
        compare_streams(report, "s", [1, 2, 3], [1, 2, 3])
        assert report.consistent
        assert report.compared_items == 3

    def test_length_mismatch(self):
        report = ConsistencyReport("a", "b")
        compare_streams(report, "s", [1, 2], [1])
        assert not report.consistent
        assert "2 items vs 1" in report.mismatches[0]

    def test_value_mismatch_reports_index(self):
        report = ConsistencyReport("a", "b")
        compare_streams(report, "s", [1, 2, 3], [1, 9, 3])
        assert "s[1]" in report.mismatches[0]


class TestCheckTraces:
    def test_consistent(self):
        report = check_traces({"app": [1, 2]}, {"app": [1, 2]})
        assert report.consistent
        report.require_consistent()  # does not raise

    def test_missing_stream(self):
        report = check_traces({"app": [1]}, {})
        assert not report.consistent
        with pytest.raises(ConsistencyError):
            report.require_consistent()

    def test_summary_text(self):
        report = check_traces({"app": [1]}, {"app": [2]}, "pre", "post")
        text = report.summary()
        assert "INCONSISTENT" in text
        assert "pre vs post" in text

    def test_consistent_summary(self):
        report = check_traces({"app": [1]}, {"app": [1]})
        assert "CONSISTENT" in report.summary()

    def test_error_message_truncates(self):
        traces_a = {f"s{i}": [1] for i in range(10)}
        traces_b = {f"s{i}": [2] for i in range(10)}
        report = check_traces(traces_a, traces_b)
        with pytest.raises(ConsistencyError, match="more"):
            report.require_consistent()


class TestBusTransactions:
    def test_ordered_equal(self):
        sigs = [(6, 0x100, (1,), (0xF,))]
        assert check_bus_transactions(sigs, list(sigs)).consistent

    def test_ordered_mismatch(self):
        a = [(6, 0x100, (1,), (0xF,))]
        b = [(6, 0x104, (1,), (0xF,))]
        assert not check_bus_transactions(a, b).consistent

    def test_order_insensitive(self):
        a = [(6, 0x100, (1,), (0xF,)), (7, 0x200, (2,), (0xF,))]
        b = list(reversed(a))
        assert not check_bus_transactions(a, b).consistent
        assert check_bus_transactions(a, b, order_insensitive=True).consistent

    def test_multiset_mismatch_detected(self):
        a = [(6, 0x100, (1,), (0xF,))] * 2
        b = [(6, 0x100, (1,), (0xF,))]
        report = check_bus_transactions(a, b, order_insensitive=True)
        assert not report.consistent
