"""Unit tests for runtime invariant checkers."""

import pytest

from repro.errors import ProtocolError
from repro.hdl import Module
from repro.kernel import NS, Simulator, Timeout
from repro.verify import InvariantChecker, OneHotChecker


@pytest.fixture
def sim():
    return Simulator()


class TestInvariantChecker:
    def test_passing_invariant(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=8, init=0)
        checker = InvariantChecker(
            top, "chk", signal, lambda v: v.to_int() < 100, "value too large"
        )

        def driver():
            for value in (10, 20, 99):
                signal.write(value)
                yield Timeout(10 * NS)

        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert checker.checks == 3
        assert not checker.violations

    def test_strict_violation_raises(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=8, init=0)
        InvariantChecker(top, "chk", signal, lambda v: v.to_int() < 100,
                         "value too large")

        def driver():
            signal.write(200)
            yield Timeout(0)

        sim.spawn(driver, "d")
        with pytest.raises(ProtocolError, match="value too large"):
            sim.run(10 * NS)

    def test_lenient_collects(self, sim):
        top = Module(sim, "top")
        signal = top.signal("s", width=8, init=0)
        checker = InvariantChecker(top, "chk", signal,
                                   lambda v: v.to_int() % 2 == 0,
                                   "odd value", strict=False)

        def driver():
            for value in (1, 2, 3):
                signal.write(value)
                yield Timeout(10 * NS)

        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert len(checker.violations) == 2


class TestOneHotChecker:
    def test_single_assertion_ok(self, sim):
        top = Module(sim, "top")
        grants = [top.signal(f"g{i}", width=1, init=0) for i in range(3)]
        checker = OneHotChecker(top, "chk", grants)

        def driver():
            grants[1].write(1)
            yield Timeout(10 * NS)
            grants[1].write(0)
            grants[2].write(1)
            yield Timeout(10 * NS)

        sim.spawn(driver, "d")
        sim.run(100 * NS)
        assert not checker.violations
        assert checker.checks > 0

    def test_double_assertion_raises(self, sim):
        top = Module(sim, "top")
        grants = [top.signal(f"g{i}", width=1, init=0) for i in range(2)]
        OneHotChecker(top, "chk", grants)

        def driver():
            grants[0].write(1)
            grants[1].write(1)
            yield Timeout(0)

        sim.spawn(driver, "d")
        with pytest.raises(ProtocolError, match="multiple asserted"):
            sim.run(10 * NS)

    def test_active_low_mode(self, sim):
        top = Module(sim, "top")
        gnt_n = [top.signal(f"g{i}", width=1, init=1) for i in range(2)]
        checker = OneHotChecker(top, "chk", gnt_n, active_low=True,
                                strict=False)

        def driver():
            gnt_n[0].write(0)
            gnt_n[1].write(0)
            yield Timeout(0)

        sim.spawn(driver, "d")
        sim.run(10 * NS)
        assert checker.violations
