"""Tests for the platform statistics report."""

import pytest

from repro.core import generate_workload
from repro.flow import build_pci_platform
from repro.kernel import MS
from repro.verify import LatencySummary, PlatformStats, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7], 0.5) == 7.0
        assert percentile([7], 0.99) == 7.0

    def test_ordering_independent(self):
        values = [5, 1, 9, 3, 7]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.99) == 9.0
        assert percentile(values, 0.5) == 5.0


class TestLatencySummary:
    def test_basic_stats(self):
        summary = LatencySummary([10, 20, 30, 40])
        assert summary.count == 4
        assert summary.mean == 25.0
        assert summary.minimum == 10
        assert summary.maximum == 40

    def test_empty_samples(self):
        summary = LatencySummary([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_row_scaling(self):
        summary = LatencySummary([1000, 3000])
        row = summary.row(unit=1000)
        assert row[0] == 2
        assert row[2] == 1  # min scaled


class TestPlatformStats:
    @pytest.fixture(scope="class")
    def bundle(self):
        workload = generate_workload(seed=71, n_commands=12,
                                     address_span=0x200, max_burst=3)
        bundle = build_pci_platform([workload], synthesize=True)
        bundle.run(100 * MS)
        return bundle

    def test_bus_utilization_in_range(self, bundle):
        stats = PlatformStats(bundle)
        assert 0.0 < stats.bus_utilization < 1.0
        assert stats.bus_cycles > 0

    def test_channel_utilization_present_post_synthesis(self, bundle):
        stats = PlatformStats(bundle)
        assert stats.channel_utilization is not None
        assert 0.0 < stats.channel_utilization <= 1.0
        assert stats.channel_calls > 0

    def test_app_latency_summaries(self, bundle):
        stats = PlatformStats(bundle)
        assert "app0" in stats.app_latencies
        assert stats.app_latencies["app0"].count == 12

    def test_render_text(self, bundle):
        text = PlatformStats(bundle).render()
        assert "bus utilization" in text
        assert "app0" in text
        assert "p95" in text
