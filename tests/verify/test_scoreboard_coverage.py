"""Unit tests for scoreboards, memory checking and coverage."""

import pytest

from repro.errors import ConsistencyError, CoverageError
from repro.tlm import Memory
from repro.verify import CoverageCollector, Scoreboard, check_memory_image


class TestScoreboard:
    def test_in_order_matching(self):
        board = Scoreboard()
        board.expect_all([1, 2, 3])
        board.observe(1)
        board.observe(2)
        board.observe(3)
        assert board.matched == 3
        assert board.clean
        board.require_clean()

    def test_mismatch_strict_raises(self):
        board = Scoreboard()
        board.expect(1)
        with pytest.raises(ConsistencyError):
            board.observe(2)

    def test_unexpected_item(self):
        board = Scoreboard(strict=False)
        board.observe(1)
        assert board.mismatches
        assert not board.clean

    def test_lenient_collects(self):
        board = Scoreboard(strict=False)
        board.expect_all([1, 2])
        board.observe(9)
        board.observe(2)
        assert len(board.mismatches) == 1
        assert board.matched == 1

    def test_outstanding_expectations(self):
        board = Scoreboard()
        board.expect(1)
        assert board.outstanding == 1
        with pytest.raises(ConsistencyError, match="never observed"):
            board.require_clean()


class TestMemoryImage:
    def test_matching_window(self):
        memory = Memory(64)
        memory.load(0, [1, 2, 3])
        check_memory_image(memory, [1, 2, 3])

    def test_mismatch_reports_address(self):
        memory = Memory(64)
        memory.load(0, [1, 2, 3])
        with pytest.raises(ConsistencyError, match="0x4"):
            check_memory_image(memory, [1, 9, 3])

    def test_offset_base(self):
        memory = Memory(64)
        memory.load(0x10, [7])
        check_memory_image(memory, [7], base=0x10)


class TestCoverage:
    def test_basic_sampling(self):
        collector = CoverageCollector("test")
        collector.add_point("burst", [1, 2, 4])
        collector.sample("burst", 1)
        collector.sample("burst", 4)
        point = collector.point("burst")
        assert point.covered_bins == 2
        assert point.holes() == [2]
        assert point.coverage == pytest.approx(2 / 3)

    def test_other_values_counted_separately(self):
        collector = CoverageCollector()
        collector.add_point("p", ["a"])
        collector.sample("p", "not a bin")
        assert collector.point("p").others == 1
        assert collector.point("p").covered_bins == 0

    def test_at_least_threshold(self):
        collector = CoverageCollector()
        collector.add_point("p", ["x"], at_least=3)
        collector.sample("p", "x")
        assert collector.point("p").holes() == ["x"]
        collector.sample("p", "x")
        collector.sample("p", "x")
        assert collector.point("p").holes() == []

    def test_aggregate_goal(self):
        collector = CoverageCollector()
        collector.add_point("a", [1])
        collector.add_point("b", [1])
        collector.sample("a", 1)
        assert collector.coverage == pytest.approx(0.5)
        with pytest.raises(CoverageError):
            collector.require(goal=0.9)
        collector.sample("b", 1)
        collector.require(goal=1.0)

    def test_report_text(self):
        collector = CoverageCollector("pci")
        collector.add_point("term", ["completion", "retry"])
        collector.sample("term", "completion")
        text = collector.report()
        assert "pci" in text
        assert "holes: ['retry']" in text

    def test_validation(self):
        collector = CoverageCollector()
        with pytest.raises(CoverageError):
            collector.add_point("p", [])
        collector.add_point("p", [1])
        with pytest.raises(CoverageError):
            collector.add_point("p", [1])
        with pytest.raises(CoverageError):
            collector.sample("unknown", 1)
        with pytest.raises(CoverageError):
            collector.point("unknown")


class TestProbeCoverage:
    def _bound(self):
        from repro.instrument import TRANSACTION_END, ProbeBus
        from repro.verify import ProbeCoverage

        bus = ProbeBus()
        collector = CoverageCollector("bus")
        collector.add_point("burst", [1, 2, 4])
        sampler = ProbeCoverage(collector).cover(
            TRANSACTION_END, "burst", lambda time, source, words: words
        )
        return bus, collector, sampler, TRANSACTION_END

    def test_samples_from_probe_emissions(self):
        bus, collector, sampler, kind = self._bound()
        sampler.attach(bus)
        bus.emit(kind, 100, "top.monitor", 1)
        bus.emit(kind, 200, "top.monitor", 4)
        point = collector.point("burst")
        assert point.covered_bins == 2
        assert point.holes() == [2]

    def test_none_extraction_skips_sample(self):
        bus, collector, sampler, kind = self._bound()
        sampler.attach(bus)
        bus.emit(kind, 100, "top.monitor", None)
        assert collector.point("burst").covered_bins == 0
        assert collector.point("burst").others == 0

    def test_detach_stops_sampling(self):
        bus, collector, sampler, kind = self._bound()
        sampler.attach(bus)
        sampler.detach()
        sampler.detach()  # idempotent
        bus.emit(kind, 100, "top.monitor", 1)
        assert collector.point("burst").covered_bins == 0

    def test_unknown_point_rejected_at_bind_time(self):
        from repro.instrument import TRANSACTION_END, ProbeBus
        from repro.verify import ProbeCoverage

        collector = CoverageCollector()
        with pytest.raises(CoverageError):
            ProbeCoverage(collector).cover(
                TRANSACTION_END, "nope", lambda *a: 1
            )
        collector.add_point("p", [1])
        sampler = ProbeCoverage(collector)
        sampler.attach(ProbeBus())
        with pytest.raises(CoverageError):
            sampler.cover(TRANSACTION_END, "p", lambda *a: 1)
