"""``python -m repro profile`` end-to-end over a small scripted design."""

import json
import textwrap

import pytest

from repro.__main__ import main
from repro.instrument import default_bus

_SCRIPT = textwrap.dedent(
    """
    from repro.hdl.module import Module
    from repro.kernel import NS, Simulator, Timeout
    from repro.osss import GlobalObject, guarded_method


    class Mailbox:
        def __init__(self):
            self.items = []

        @guarded_method(lambda self: len(self.items) < 2)
        def put(self, item):
            self.items.append(item)

        @guarded_method(lambda self: bool(self.items))
        def get(self):
            return self.items.pop(0)


    class Producer(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.box = GlobalObject(self, "box", Mailbox)
            self.thread(self._run, "producer")

        def _run(self):
            for i in range(4):
                yield Timeout(5 * NS)
                yield from self.box.call("put", i)


    class Consumer(Module):
        def __init__(self, parent, name, peer):
            super().__init__(parent, name)
            self.box = GlobalObject(self, "box", Mailbox)
            self.box.connect(peer.box)
            self.got = []
            self.thread(self._run, "consumer")

        def _run(self):
            for _ in range(4):
                item = yield from self.box.call("get")
                self.got.append(item)


    sim = Simulator()
    producer = Producer(sim, "prod")
    consumer = Consumer(sim, "cons", producer)
    sim.run(1000 * NS)
    assert consumer.got == [0, 1, 2, 3]
    print("script finished")
    """
)


@pytest.fixture
def tiny_script(tmp_path):
    path = tmp_path / "tiny_design.py"
    path.write_text(_SCRIPT)
    return str(path)


class TestProfileCli:
    def test_profile_prints_tables_and_writes_outputs(
        self, tiny_script, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        assert main([
            "profile",
            "--top", "5",
            "--chrome-trace", str(trace),
            "--json", str(report),
            tiny_script,
        ]) == 0
        out = capsys.readouterr().out
        assert "script finished" in out  # script stdout passes through
        assert "hot processes" in out
        assert "prod.producer" in out and "cons.consumer" in out
        assert "guarded-method traffic" in out
        assert ".put" in out and ".get" in out

        trace_payload = json.loads(trace.read_text())
        assert trace_payload["traceEvents"], "chrome trace is empty"
        assert trace_payload["traceEvents"][0]["ph"] == "X"

        report_payload = json.loads(report.read_text())
        assert report_payload["script"] == tiny_script
        assert report_payload["profile"]["total_deltas"] > 0
        methods = {m["method"] for m in report_payload["metrics"]["methods"]}
        assert methods == {"put", "get"}

    def test_quiet_script_suppresses_script_stdout(
        self, tiny_script, capsys
    ):
        assert main([
            "profile", "--quiet-script", "--chrome-trace", "none",
            tiny_script,
        ]) == 0
        out = capsys.readouterr().out
        assert "script finished" not in out
        assert "hot processes" in out

    def test_chrome_trace_none_writes_nothing(
        self, tiny_script, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main([
            "profile", "--chrome-trace", "none", tiny_script,
        ]) == 0
        assert not (tmp_path / "repro_profile_trace.json").exists()

    def test_default_bus_restored_after_run(self, tiny_script, capsys):
        before = default_bus()
        assert main([
            "profile", "--chrome-trace", "none", tiny_script,
        ]) == 0
        assert default_bus() is before

    def test_max_trace_events_flag_truncates_with_metadata(
        self, tiny_script, tmp_path, capsys
    ):
        trace = tmp_path / "trace.json"
        assert main([
            "profile", "--quiet-script",
            "--max-trace-events", "2",
            "--chrome-trace", str(trace),
            tiny_script,
        ]) == 0
        out = capsys.readouterr().out
        assert "truncated" in out
        payload = json.loads(trace.read_text())
        assert len(payload["traceEvents"]) == 2
        assert payload["otherData"]["max_trace_events"] == 2
        assert payload["otherData"]["truncated"] is True
        assert payload["otherData"]["dropped_events"] > 0

    def test_method_table_reports_latency_quantiles(
        self, tiny_script, capsys
    ):
        assert main([
            "profile", "--quiet-script", "--chrome-trace", "none",
            tiny_script,
        ]) == 0
        out = capsys.readouterr().out
        assert "p50 ns" in out and "p95 ns" in out and "p99 ns" in out

    def test_json_to_stdout(self, tiny_script, capsys):
        assert main([
            "profile", "--quiet-script", "--chrome-trace", "none",
            "--json", "-", tiny_script,
        ]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        payload = json.loads(out[start:out.rindex("}") + 1])
        assert payload["profile"]["total_deltas"] > 0
