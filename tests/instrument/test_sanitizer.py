"""Dynamic race sanitizer: unit behaviour plus RACE001 confirmation."""

from repro.instrument.probes import SIGNAL_COMMIT, ProbeBus
from repro.instrument.sanitizer import RaceSanitizer
from repro.lint import lint_design

from tests.analyze.test_races import build_race_design


class _Sig:
    def __init__(self, name):
        self.name = name


class TestSanitizerUnit:
    def test_same_timestamp_distinct_values_conflict(self):
        bus = ProbeBus()
        sig = _Sig("top.s")
        sanitizer = RaceSanitizer().attach(bus)
        bus.signal_commit(5, sig, 1)
        bus.signal_commit(5, sig, 0)
        assert sanitizer.observed("top.s")
        assert sanitizer.conflicts["top.s"] == 1
        (obs,) = sanitizer.observations["top.s"]
        assert obs.time == 5 and obs.values == [1, 0]

    def test_same_value_recommit_is_benign(self):
        bus = ProbeBus()
        sig = _Sig("top.s")
        sanitizer = RaceSanitizer().attach(bus)
        bus.signal_commit(5, sig, 1)
        bus.signal_commit(5, sig, 1)
        assert not sanitizer.observed("top.s")

    def test_distinct_timestamps_are_benign(self):
        bus = ProbeBus()
        sig = _Sig("top.s")
        sanitizer = RaceSanitizer().attach(bus)
        bus.signal_commit(5, sig, 1)
        bus.signal_commit(6, sig, 0)
        assert sanitizer.racy_signals == set()

    def test_watch_filter(self):
        bus = ProbeBus()
        sanitizer = RaceSanitizer(watch=["top.wanted"]).attach(bus)
        other = _Sig("top.other")
        bus.signal_commit(5, other, 1)
        bus.signal_commit(5, other, 0)
        assert not sanitizer.observed("top.other")

    def test_detach_stops_recording(self):
        bus = ProbeBus()
        sig = _Sig("top.s")
        sanitizer = RaceSanitizer().attach(bus)
        sanitizer.detach()
        bus.signal_commit(5, sig, 1)
        bus.signal_commit(5, sig, 0)
        assert sanitizer.racy_signals == set()

    def test_summary_line(self):
        sanitizer = RaceSanitizer()
        assert "no same-timestamp" in sanitizer.summary_line()
        bus = ProbeBus()
        sanitizer.attach(bus)
        sig = _Sig("top.s")
        bus.signal_commit(5, sig, 1)
        bus.signal_commit(5, sig, 0)
        assert "1 same-timestamp conflict(s)" in sanitizer.summary_line()
        assert "top.s" in sanitizer.summary_line()


class TestSanitizerConfirmsRace001:
    def test_seeded_race_is_confirmed(self):
        """The static RACE001 report is confirmed by the live commit trace."""
        sim, top = build_race_design()
        report = lint_design(sim)
        (diag,) = report.by_rule("RACE001")

        sanitizer = RaceSanitizer(
            watch=[diag.extra["signal"]]
        ).attach(sim.probes)
        sim.run(50)

        assert sanitizer.observed(top.strobe.name)
        ((finding, verdict),) = sanitizer.verdicts([diag])
        assert finding is diag
        assert verdict == "confirmed"

    def test_unexercised_finding_stays_unobserved(self):
        sim, top = build_race_design()
        report = lint_design(sim)
        (diag,) = report.by_rule("RACE001")
        sanitizer = RaceSanitizer().attach(sim.probes)
        # Simulation never runs: the static claim is not dynamically
        # corroborated and must not be reported as confirmed.
        ((_, verdict),) = sanitizer.verdicts([diag])
        assert verdict == "unobserved"
