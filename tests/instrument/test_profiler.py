"""Wall-clock profiler: deterministic attribution with a fake clock."""

import json

import pytest

from repro.hdl.module import Module
from repro.instrument import ProbeBus, WallClockProfiler
from repro.kernel import NS, Simulator, Timeout


class FakeClock:
    """Manually-advanced clock so wall attribution is deterministic."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class _Process:
    def __init__(self, name):
        self.name = name


def _profiled_bus(**kwargs):
    bus = ProbeBus()
    clock = FakeClock()
    profiler = WallClockProfiler(clock=clock, **kwargs).attach(bus)
    return bus, clock, profiler


class TestAttribution:
    def test_wall_time_attributed_per_process(self):
        bus, clock, profiler = _profiled_bus()
        fast, slow = _Process("top.fast"), _Process("top.slow")

        bus.delta_begin(0, 0)
        bus.process_activate(0, fast)
        clock.advance(0.5)
        bus.process_suspend(0, fast)
        bus.process_activate(0, slow)
        clock.advance(2.0)
        bus.process_suspend(0, slow)
        bus.delta_end(0, 0)

        report = profiler.report()
        assert report.total_seconds == 2.5
        ranked = report.hot_processes()
        assert [p.name for p in ranked] == ["top.slow", "top.fast"]
        assert ranked[0].wall_seconds == 2.0
        assert ranked[0].activations == 1
        assert ranked[0].mean_seconds == 2.0

    def test_delta_hotspots_accumulate_per_sim_time(self):
        bus, clock, profiler = _profiled_bus()
        proc = _Process("top.p")
        for delta in range(3):  # three deltas at the same instant
            bus.delta_begin(100, delta)
            bus.process_activate(100, proc)
            clock.advance(0.25)
            bus.process_suspend(100, proc)
            bus.delta_end(100, delta)
        bus.delta_begin(200, 0)
        bus.delta_end(200, 0)

        report = profiler.report()
        assert report.total_deltas == 4
        top = report.delta_hotspots(1)[0]
        assert top.sim_time == 100
        assert top.deltas == 3
        assert top.wall_seconds == 0.75

    def test_stale_suspend_without_activate_ignored(self):
        bus, __, profiler = _profiled_bus()
        bus.process_suspend(0, _Process("top.orphan"))  # must not raise
        assert profiler.report().processes == []

    def test_detach_stops_collection_and_is_idempotent(self):
        bus, clock, profiler = _profiled_bus()
        profiler.detach()
        profiler.detach()  # again: no raise
        proc = _Process("top.p")
        bus.process_activate(0, proc)
        clock.advance(1.0)
        bus.process_suspend(0, proc)
        assert profiler.report().total_seconds == 0.0


class TestChromeTrace:
    def test_trace_events_are_complete_slices(self):
        bus, clock, profiler = _profiled_bus()
        proc = _Process("top.worker")
        clock.advance(1.0)  # origin offset
        bus.process_activate(40, proc)
        clock.advance(0.002)
        bus.process_suspend(40, proc)

        (event,) = profiler.report().trace_events
        assert event["name"] == "top.worker"
        assert event["ph"] == "X"
        assert event["cat"] == "process"
        assert event["ts"] == 1.0 * 1e6  # microseconds since origin
        assert event["dur"] == pytest.approx(0.002 * 1e6)
        assert event["args"] == {"sim_time_fs": 40}

    def test_trace_cap_drops_and_reports(self, monkeypatch):
        import repro.instrument.profiler as profiler_mod

        monkeypatch.setattr(profiler_mod, "MAX_TRACE_EVENTS", 2)
        bus, clock, profiler = _profiled_bus()
        proc = _Process("top.p")
        for __ in range(5):
            bus.process_activate(0, proc)
            clock.advance(0.001)
            bus.process_suspend(0, proc)
        report = profiler.report()
        assert len(report.trace_events) == 2
        assert report.dropped_events == 3
        assert "dropped" in report.render()

    def test_trace_cap_is_configurable_per_profiler(self):
        bus, clock, profiler = _profiled_bus(max_trace_events=3)
        proc = _Process("top.p")
        for __ in range(5):
            bus.process_activate(0, proc)
            clock.advance(0.001)
            bus.process_suspend(0, proc)
        report = profiler.report()
        assert len(report.trace_events) == 3
        assert report.dropped_events == 2
        assert report.max_trace_events == 3
        assert "--max-trace-events" in report.render()

    def test_trace_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            WallClockProfiler(clock=FakeClock(), max_trace_events=0)

    def test_truncation_metadata_is_explicit(self, tmp_path):
        bus, clock, profiler = _profiled_bus(max_trace_events=1)
        proc = _Process("top.p")
        for __ in range(3):
            bus.process_activate(0, proc)
            clock.advance(0.001)
            bus.process_suspend(0, proc)
        path = tmp_path / "trace.json"
        profiler.report().write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        assert payload["otherData"]["truncated"] is True
        assert payload["otherData"]["dropped_events"] == 2
        assert payload["otherData"]["max_trace_events"] == 1

    def test_write_time_cap_drops_overflow(self, tmp_path):
        from repro.instrument.profiler import write_chrome_trace

        events = [
            {"name": f"e{i}", "ph": "X", "ts": i, "dur": 1}
            for i in range(5)
        ]
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), events, max_trace_events=2)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 2
        assert payload["otherData"]["dropped_events"] == 3
        assert payload["otherData"]["truncated"] is True

    def test_write_chrome_trace(self, tmp_path):
        bus, clock, profiler = _profiled_bus()
        proc = _Process("top.p")
        bus.process_activate(0, proc)
        clock.advance(0.001)
        bus.process_suspend(0, proc)
        path = tmp_path / "trace.json"
        profiler.report().write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        assert payload["traceEvents"][0]["name"] == "top.p"
        assert payload["otherData"]["dropped_events"] == 0


class _Counter(Module):
    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.clk = self.signal("clk", width=1, init=0)
        self.thread(self._tick, "tick")

    def _tick(self):
        while True:
            yield Timeout(10 * NS)
            self.clk.write(1 - self.clk.read().to_int())


class TestAgainstKernel:
    def test_profiles_a_real_run(self):
        sim = Simulator()
        _Counter(sim, "top")
        profiler = WallClockProfiler().attach(sim.probes)
        sim.run(100 * NS)
        report = profiler.report()
        assert report.total_deltas == sim.delta_count
        names = {p.name for p in report.processes}
        assert "top.tick" in names
        tick = next(p for p in report.processes if p.name == "top.tick")
        # Initial activation at elaboration + one per clock edge.
        assert tick.activations == 11
        assert report.total_seconds >= 0.0
        rendered = report.render()
        assert "hot processes" in rendered
        assert "top.tick" in rendered

    def test_report_round_trips_through_json(self):
        sim = Simulator()
        _Counter(sim, "top")
        profiler = WallClockProfiler().attach(sim.probes)
        sim.run(50 * NS)
        payload = json.loads(json.dumps(profiler.report().to_dict()))
        assert payload["total_deltas"] == sim.delta_count
        assert payload["processes"][0]["activations"] >= 1
