"""Probe bus mechanics + kernel probe emission."""

import pytest

from repro.hdl.module import Module
from repro.instrument import (
    DELTA_BEGIN,
    DELTA_END,
    EVENT_NOTIFY,
    PROBE_KINDS,
    PROCESS_ACTIVATE,
    PROCESS_SUSPEND,
    SIGNAL_COMMIT,
    ProbeBus,
    default_bus,
    set_default_bus,
)
from repro.instrument.probes import ProbeError
from repro.kernel import NS, Simulator, Timeout


class TestBusMechanics:
    def test_subscribe_and_emit(self):
        bus = ProbeBus()
        seen = []
        bus.subscribe(SIGNAL_COMMIT, lambda *a: seen.append(a))
        bus.signal_commit(5, "sig", 1)
        assert seen == [(5, "sig", 1)]

    def test_emit_without_subscribers_is_noop(self):
        bus = ProbeBus()
        bus.signal_commit(0, "sig", 1)  # must not raise
        bus.emit(EVENT_NOTIFY, 0, None)

    def test_unknown_kind_rejected(self):
        bus = ProbeBus()
        with pytest.raises(ProbeError):
            bus.subscribe("no.such.kind", lambda: None)
        with pytest.raises(KeyError):
            bus.emit("no.such.kind")

    def test_unsubscribe_is_idempotent(self):
        bus = ProbeBus()

        def callback(*args):
            pass

        bus.unsubscribe(SIGNAL_COMMIT, callback)  # never subscribed: no raise
        bus.subscribe(SIGNAL_COMMIT, callback)
        bus.unsubscribe(SIGNAL_COMMIT, callback)
        bus.unsubscribe(SIGNAL_COMMIT, callback)  # again: still no raise
        assert not bus.wants(SIGNAL_COMMIT)

    def test_wants_and_subscribers(self):
        bus = ProbeBus()
        assert not bus.wants(DELTA_BEGIN)
        token = bus.subscribe(DELTA_BEGIN, lambda *a: None)
        assert bus.wants(DELTA_BEGIN)
        assert bus.subscribers(DELTA_BEGIN) == (token,)

    def test_clear(self):
        bus = ProbeBus()
        for kind in PROBE_KINDS:
            bus.subscribe(kind, lambda *a: None)
        bus.clear()
        assert all(not bus.wants(kind) for kind in PROBE_KINDS)

    def test_unsubscribe_self_during_emission(self):
        """A callback removing itself mid-emission must not corrupt the
        iteration: the other subscriber still fires."""
        bus = ProbeBus()
        seen = []

        def once(*args):
            seen.append("once")
            bus.unsubscribe(SIGNAL_COMMIT, once)

        bus.subscribe(SIGNAL_COMMIT, once)
        bus.subscribe(SIGNAL_COMMIT, lambda *a: seen.append("steady"))
        bus.signal_commit(0, "s", 1)
        bus.signal_commit(1, "s", 0)
        assert seen == ["once", "steady", "steady"]

    def test_default_bus_install_and_restore(self):
        bus = ProbeBus()
        previous = set_default_bus(bus)
        try:
            assert default_bus() is bus
            sim = Simulator()
            assert sim._probes is bus
        finally:
            set_default_bus(previous)
        assert default_bus() is previous


class _Counter(Module):
    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.clk = self.signal("clk", width=1, init=0)
        self.count = self.signal("count", width=8, init=0)
        self.thread(self._tick, "tick")
        self.thread(self._count, "count_proc")

    def _tick(self):
        while True:
            yield Timeout(10 * NS)
            self.clk.write(1 - self.clk.read().to_int())

    def _count(self):
        while True:
            yield self.clk.posedge
            self.count.write(self.count.read().to_int() + 1)


class TestKernelProbes:
    def test_null_bus_by_default(self):
        sim = Simulator()
        assert sim._probes is None
        assert sim.scheduler._probes is None

    def test_probes_property_attaches_lazily(self):
        sim = Simulator()
        bus = sim.probes
        assert sim._probes is bus
        assert sim.scheduler._probes is bus
        assert sim.probes is bus  # stable

    def test_process_and_delta_probes(self):
        sim = Simulator()
        top = _Counter(sim, "top")
        kinds = []
        for kind in (PROCESS_ACTIVATE, PROCESS_SUSPEND, DELTA_BEGIN,
                     DELTA_END, EVENT_NOTIFY, SIGNAL_COMMIT):
            sim.probes.subscribe(
                kind, lambda *a, kind=kind: kinds.append(kind)
            )
        sim.run(100 * NS)
        assert kinds.count(DELTA_BEGIN) == kinds.count(DELTA_END)
        assert kinds.count(PROCESS_ACTIVATE) == kinds.count(PROCESS_SUSPEND)
        assert kinds.count(DELTA_BEGIN) == sim.delta_count
        # 10 clock edges, 5 of them rising -> 5 count commits + clk commits.
        commits = kinds.count(SIGNAL_COMMIT)
        assert commits == 10 + 5
        assert top.count.read().to_int() == 5

    def test_activation_payload_is_the_process(self):
        sim = Simulator()
        _Counter(sim, "top")
        names = set()
        sim.probes.subscribe(
            PROCESS_ACTIVATE, lambda t, p, cause: names.add(p.name)
        )
        sim.run(30 * NS)
        assert "top.tick" in names and "top.count_proc" in names

    def test_signal_commit_signature_matches_tracers(self):
        """The probe payload is exactly (time, signal, value) — what
        tracer.record_change() historically received."""
        sim = Simulator()
        top = _Counter(sim, "top")
        seen = []
        sim.probes.subscribe(SIGNAL_COMMIT, lambda *a: seen.append(a))
        sim.run(10 * NS)
        time, signal, value = seen[0]
        assert time == 10 * NS
        assert signal is top.clk
        assert value == top.clk.read()


class TestMidRunAttachDetach:
    """Satellite: observers added/removed while the simulation runs."""

    def _recorder(self):
        class Recorder:
            def __init__(self):
                self.changes = []

            def record_change(self, time, signal, value):
                self.changes.append((time, signal.name, value))

        return Recorder()

    def test_tracer_added_mid_run_sees_subsequent_commits(self):
        sim = Simulator()
        _Counter(sim, "top")
        recorder = self._recorder()

        def attacher():
            yield Timeout(35 * NS)
            sim.add_tracer(recorder)

        sim.spawn(attacher, "attacher")
        sim.run(100 * NS)
        assert recorder.changes, "late tracer saw nothing"
        assert all(t >= 35 * NS for t, *_ in recorder.changes)
        # It still catches the clock edges after attach: 40..100 ns.
        clk_changes = [c for c in recorder.changes if c[1] == "top.clk"]
        assert len(clk_changes) == 7

    def test_detach_during_delta_does_not_corrupt_iteration(self):
        """A tracer that removes itself from inside its own callback —
        i.e. during the update phase of a delta — must not break the
        other subscribers or the kernel loop."""
        sim = Simulator()
        top = _Counter(sim, "top")
        steady = self._recorder()

        class SelfDetaching:
            def __init__(self):
                self.changes = 0

            def record_change(self, time, signal, value):
                self.changes += 1
                sim.remove_tracer(self)

        flighty = SelfDetaching()
        sim.add_tracer(flighty)
        sim.add_tracer(steady)
        sim.run(100 * NS)
        assert flighty.changes == 1
        assert len(steady.changes) == 15
        assert top.count.read().to_int() == 5

    def test_remove_tracer_is_idempotent(self):
        sim = Simulator()
        recorder = self._recorder()
        sim.remove_tracer(recorder)  # never attached: no raise
        sim.add_tracer(recorder)
        sim.remove_tracer(recorder)
        sim.remove_tracer(recorder)  # again: no raise
        assert recorder not in sim._tracers

    def test_add_tracer_twice_is_single_subscription(self):
        sim = Simulator()
        _Counter(sim, "top")
        recorder = self._recorder()
        sim.add_tracer(recorder)
        sim.add_tracer(recorder)
        sim.run(10 * NS)
        # clk edge + the count increment it triggers: each exactly once.
        assert sorted(c[1] for c in recorder.changes) == \
            ["top.clk", "top.count"]
