"""Metrics aggregation: histograms, counters, the collector, detections."""

from repro.hdl.module import Module
from repro.instrument import (
    DETECTION,
    Counter,
    DetectionLog,
    Histogram,
    MetricsCollector,
    ProbeBus,
)
from repro.kernel import NS, US, Simulator
from repro.osss import GlobalObject, guarded_method


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0
        assert h.to_dict()["max"] is None

    def test_basic_stats(self):
        h = Histogram()
        for v in (0, 1, 2, 4, 100):
            h.add(v)
        assert h.count == 5
        assert h.total == 107
        assert h.min == 0 and h.max == 100
        assert h.mean == 107 / 5

    def test_quantile_bounds(self):
        h = Histogram()
        for v in range(1, 101):
            h.add(v)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(1.0) == 100

    def test_negative_clamped(self):
        h = Histogram()
        h.add(-5)
        assert h.min == 0

    def test_buckets_are_powers_of_two(self):
        h = Histogram()
        for v in (0, 1, 3, 5, 9):
            h.add(v)
        uppers = [upper for upper, _ in h.buckets()]
        assert uppers == [0, 1, 3, 7, 15]


class TestCounter:
    def test_add_and_top(self):
        c = Counter()
        c.add("a")
        c.add("b", 3)
        c.add("a")
        assert c["a"] == 2 and c["b"] == 3
        assert c.total == 5
        assert c.top(1) == [("b", 3)]
        assert len(c) == 2


class TestDetectionLog:
    def test_attach_collects_probe_records(self):
        bus = ProbeBus()
        log = DetectionLog().attach(bus)
        bus.emit(DETECTION, "record-1")
        assert log.records == ["record-1"]
        assert len(log) == 1 and bool(log)
        log.detach()
        bus.emit(DETECTION, "record-2")
        assert list(log) == ["record-1"]

    def test_simulator_detections_flow_over_the_bus(self):
        sim = Simulator()
        log = DetectionLog().attach(sim.probes)
        sim.report_detection("checker", "boom")
        assert len(log) == 1
        assert log.records[0].source == "checker"
        # The public property stays a thin view of the sim's own log.
        assert sim.detections[0] is log.records[0]

    def test_detections_without_bus_still_recorded(self):
        sim = Simulator()  # no bus attached
        sim.report_detection("checker", "quiet")
        assert len(sim.detections) == 1


class _Buffer:
    def __init__(self, depth=2):
        self.items = []
        self.depth = depth

    @guarded_method(lambda self: len(self.items) < self.depth)
    def put(self, item):
        self.items.append(item)

    @guarded_method(lambda self: bool(self.items))
    def get(self):
        return self.items.pop(0)


class _Producer(Module):
    def __init__(self, parent, name, n, start_delay=0):
        super().__init__(parent, name)
        self.buffer = GlobalObject(self, "buffer", _Buffer)
        self.n = n
        self.start_delay = start_delay
        self.thread(self._run, "producer")

    def _run(self):
        from repro.kernel import Timeout

        if self.start_delay:
            yield Timeout(self.start_delay)
        for i in range(self.n):
            yield from self.buffer.call("put", i)


class _ConsumerModule(Module):
    def __init__(self, parent, name, peer, n):
        super().__init__(parent, name)
        self.buffer = GlobalObject(self, "buffer", _Buffer)
        self.buffer.connect(peer.buffer)
        self.got = []
        self.n = n
        self.thread(self._run, "consumer")

    def _run(self):
        for _ in range(self.n):
            item = yield from self.buffer.call("get")
            self.got.append(item)


class TestMetricsCollector:
    def _run_system(self, n=6):
        sim = Simulator()
        metrics = MetricsCollector().attach(sim.probes)
        producer = _Producer(sim, "prod", n)
        consumer = _ConsumerModule(sim, "cons", producer, n)
        sim.run(1 * US)
        return sim, metrics, consumer

    def test_method_traffic_recorded(self):
        sim, metrics, consumer = self._run_system()
        assert consumer.got == list(range(6))
        rows = {r.key.rsplit(".", 1)[-1]: r for r in metrics.method_rows()}
        assert rows["put"].calls == 6
        assert rows["put"].completions == 6
        assert rows["get"].calls == 6
        assert rows["get"].grants == 6
        # Wait/service/total histograms populated for every completion.
        assert rows["get"].total_times.count == 6

    def test_guard_blocks_counted(self):
        # Late producer: the consumer's get is pending on an empty buffer
        # with nothing else eligible, so the server guard-blocks.
        sim = Simulator()
        metrics = MetricsCollector().attach(sim.probes)
        producer = _Producer(sim, "prod", 3, start_delay=100 * NS)
        consumer = _ConsumerModule(sim, "cons", producer, 3)
        sim.run(1 * US)
        assert consumer.got == [0, 1, 2]
        assert metrics.guard_blocks.total >= 1
        rows = {r.key.rsplit(".", 1)[-1]: r for r in metrics.method_rows()}
        assert rows["get"].queued >= 1  # the blocked get was queued

    def test_kernel_counters(self):
        sim, metrics, __ = self._run_system()
        assert metrics.deltas == sim.delta_count
        assert metrics.events_notified > 0
        assert metrics.process_activations.total > 0

    def test_to_dict_round_trips_through_json(self):
        import json

        __, metrics, __ = self._run_system()
        payload = json.loads(json.dumps(metrics.to_dict()))
        assert payload["deltas"] > 0
        assert payload["methods"][0]["calls"] >= 1

    def test_detach_stops_collection(self):
        sim = Simulator()
        metrics = MetricsCollector().attach(sim.probes)
        metrics.detach()
        producer = _Producer(sim, "prod", 2)
        _ConsumerModule(sim, "cons", producer, 2)
        sim.run(1 * US)
        assert metrics.deltas == 0
        assert not metrics.method_metrics

    def test_transaction_pairing(self):
        bus = ProbeBus()
        metrics = MetricsCollector().attach(bus)
        payload = object()
        from repro.instrument import TRANSACTION_BEGIN, TRANSACTION_END

        bus.emit(TRANSACTION_BEGIN, 100, "top.monitor", payload)
        bus.emit(TRANSACTION_END, 400, "top.monitor", payload)
        assert metrics.transactions["top.monitor"] == 1
        assert metrics.transaction_times["top.monitor"].total == 300

    def test_flow_stage_probes_collected(self):
        bus = ProbeBus()
        metrics = MetricsCollector().attach(bus)
        from repro.instrument import FLOW_STAGE

        bus.emit(FLOW_STAGE, "lint", "ok", 0.25)
        assert metrics.flow_stages == [("lint", "ok", 0.25)]


class TestMonitorTransactionProbes:
    def test_pci_platform_emits_transactions(self):
        from repro.core import CommandType
        from repro.flow import build_pci_platform
        from repro.kernel import MS

        bundle = build_pci_platform(
            [[CommandType.write(0x40, [1, 2]), CommandType.read(0x40, count=2)]]
        )
        sim = bundle.handle.sim
        metrics = MetricsCollector().attach(sim.probes)
        bundle.run(5 * MS)
        monitor_path = bundle.monitor.path
        observed = len(bundle.monitor.completed_transactions)
        assert observed > 0
        assert metrics.transactions[monitor_path] == observed
        assert metrics.transaction_times[monitor_path].count == observed

    def test_fault_activation_probe(self):
        from repro.core import CommandType
        from repro.fault.models import make_fault
        from repro.flow import PciPlatformConfig, build_pci_platform
        from repro.kernel import MS

        bundle = build_pci_platform(
            [[CommandType.write(0x40, [1])]],
            PciPlatformConfig(monitor_strict=False),
        )
        sim = bundle.handle.sim
        sim.elaborate()
        metrics = MetricsCollector().attach(sim.probes)
        # The single-write workload finishes within ~150 ns; the glitch
        # window must fall inside the active run.
        fault = make_fault(
            "glitch", "top.bus.frame_n", (30 * NS, 60 * NS), value=0
        )
        fault.arm(sim)
        try:
            bundle.run(5 * MS)
        except Exception:
            pass  # the platform may legitimately detect the fault
        assert fault.activations >= 1
        assert metrics.fault_activations["glitch"] == fault.activations
