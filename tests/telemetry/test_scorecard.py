"""Tests for communication scorecards driven by synthetic probe events."""

from repro.instrument.probes import (
    DETECTION,
    METHOD_CALL,
    METHOD_GRANT,
    METHOD_QUEUE,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
    ProbeBus,
)
from repro.telemetry.scorecard import (
    CellScore,
    MatrixScorecard,
    ScorecardProbe,
    beats_of,
    fairness_index,
)

NS = 1_000_000  # fs


class _Payload:
    def __init__(self, txn_id, word_count=1):
        self.txn_id = txn_id
        self.word_count = word_count


class _Request:
    def __init__(self, client, arrival_time=None, grant_time=None):
        self.client = client
        self.method = "put"
        self.arrival_time = arrival_time
        self.grant_time = grant_time


class TestHelpers:
    def test_beats_of_prefers_word_count(self):
        assert beats_of(_Payload(1, word_count=4)) == 4

    def test_beats_of_data_list(self):
        class P:
            data = [1, 2, 3]
        assert beats_of(P()) == 3

    def test_beats_of_count_attribute(self):
        class P:
            count = 2
        assert beats_of(P()) == 2

    def test_beats_of_defaults_to_one(self):
        assert beats_of(object()) == 1

    def test_fairness_perfectly_fair(self):
        assert fairness_index([5, 5, 5]) == 1.0

    def test_fairness_one_hog(self):
        # One of three clients got everything -> 1/3.
        value = fairness_index([9, 0, 0])
        assert abs(value - 1.0) < 1e-9

    def test_fairness_skewed_is_below_one(self):
        value = fairness_index([8, 1, 1])
        assert 0 < value < 1.0

    def test_fairness_none_without_grants(self):
        assert fairness_index([]) is None
        assert fairness_index([0, 0]) is None


def _drive(probe_bus, source="top.bus.mon", base=0, n=3, gap=100 * NS,
           duration=60 * NS, word_count=2):
    """Emit n paired transactions on the probe bus."""
    for index in range(n):
        payload = _Payload(txn_id=base + index, word_count=word_count)
        begin = base * 1000 + index * gap
        probe_bus.emit(TRANSACTION_BEGIN, begin, source, payload)
        probe_bus.emit(TRANSACTION_END, begin + duration, source, payload)


class TestScorecardProbe:
    def test_pairs_transactions_and_measures_latency(self):
        bus = ProbeBus()
        probe = ScorecardProbe(cycle_fs=10 * NS).attach(bus)
        _drive(bus, n=4, duration=60 * NS)
        score = probe.score("pci", "synthesized", "unit")
        assert score.transactions == 4
        assert score.ends_total == 4
        assert score.beats == 8
        assert score.latency.count == 4
        assert score.latency.p50 == 60 * NS  # clamped to exact max
        assert score.primary_source == "top.bus.mon"

    def test_unpaired_end_counts_but_does_not_score(self):
        bus = ProbeBus()
        probe = ScorecardProbe().attach(bus)
        bus.emit(TRANSACTION_END, 100, "top.bus.mon", _Payload(1))
        score = probe.score()
        assert score.ends_total == 1
        assert score.transactions == 0

    def test_utilization_is_union_of_intervals(self):
        bus = ProbeBus()
        probe = ScorecardProbe().attach(bus)
        # Two overlapping transactions covering [0, 150] of a 200 span.
        a, b, c = _Payload(1), _Payload(2), _Payload(3)
        bus.emit(TRANSACTION_BEGIN, 0, "m", a)
        bus.emit(TRANSACTION_BEGIN, 50, "m", b)
        bus.emit(TRANSACTION_END, 100, "m", a)
        bus.emit(TRANSACTION_END, 150, "m", b)
        bus.emit(TRANSACTION_BEGIN, 200, "m", c)
        bus.emit(TRANSACTION_END, 200, "m", c)
        score = probe.score()
        assert score.span_fs == 200
        assert score.busy_fs == 150
        assert abs(score.utilization - 0.75) < 1e-9

    def test_primary_source_is_busiest_emitter(self):
        bus = ProbeBus()
        probe = ScorecardProbe().attach(bus)
        _drive(bus, source="top.interface.channel", n=2)
        _drive(bus, source="top.bus.mon", base=100, n=5)
        score = probe.score()
        assert score.primary_source == "top.bus.mon"
        assert score.transactions == 5

    def test_grant_fairness_and_wait(self):
        bus = ProbeBus()
        probe = ScorecardProbe().attach(bus)
        for client, wait in (("a", 10), ("b", 20), ("a", 0)):
            request = _Request(client, arrival_time=100,
                               grant_time=100 + wait)
            bus.emit(METHOD_CALL, 100, "space", request)
            bus.emit(METHOD_QUEUE, 100, "space", request)
            bus.emit(METHOD_GRANT, 100 + wait, "space", request)
        score = probe.score()
        assert score.grants == 3
        assert score.grants_by_client == {"a": 2, "b": 1}
        assert score.wait.count == 3
        assert score.wait.max == 20
        assert 0 < score.fairness < 1.0
        assert score.queue_ratio == 1.0

    def test_detections_counted(self):
        bus = ProbeBus()
        probe = ScorecardProbe().attach(bus)
        bus.emit(DETECTION, object())
        assert probe.score().detections == 1

    def test_detach_stops_counting(self):
        bus = ProbeBus()
        probe = ScorecardProbe().attach(bus)
        _drive(bus, n=1)
        probe.detach()
        _drive(bus, base=50, n=3)
        assert probe.score().transactions == 1


class TestCellScore:
    def _score(self, n=3):
        bus = ProbeBus()
        probe = ScorecardProbe(cycle_fs=10 * NS).attach(bus)
        _drive(bus, n=n)
        return probe.score("pci", "synthesized", "x")

    def test_merge_sums_and_keeps_digests(self):
        total = CellScore("pci", "synthesized", "sum")
        total.merge(self._score(2))
        total.merge(self._score(3))
        assert total.transactions == 5
        assert total.latency.count == 5
        assert total.cycle_fs == 10 * NS

    def test_merge_order_independent(self):
        a, b = self._score(2), self._score(4)
        ab = CellScore().merge(a).merge(b)
        ba = CellScore().merge(b).merge(a)
        assert ab.to_dict()["latency"] == ba.to_dict()["latency"]
        assert ab.transactions == ba.transactions

    def test_dict_round_trip(self):
        score = self._score()
        document = score.to_dict()
        clone = CellScore.from_dict(document)
        assert clone.to_dict() == document

    def test_throughput_needs_cycle(self):
        score = self._score()
        score.cycle_fs = 0
        assert score.throughput == 0.0


class TestMatrixScorecard:
    def _card(self):
        cells = []
        for bus in ("pci", "wishbone"):
            for level in ("functional", "synthesized"):
                probe_bus = ProbeBus()
                probe = ScorecardProbe(cycle_fs=10 * NS).attach(probe_bus)
                _drive(probe_bus, n=3)
                cells.append(probe.score(bus, level, f"{bus}/{level}"))
        return MatrixScorecard(
            55, 25, ("pci", "wishbone"), ("functional", "synthesized"),
            cells,
        )

    def test_cell_lookup(self):
        card = self._card()
        assert card.cell("pci", "synthesized").bus == "pci"
        assert card.cell("axi4lite", "functional") is None

    def test_render_has_header_and_all_rows(self):
        text = self._card().render()
        assert "communication scorecard: seed 55" in text
        for column in ("util", "beats/cyc", "p50 ns", "p95 ns", "p99 ns"):
            assert column in text
        assert text.count("wishbone") == 2

    def test_markdown_is_a_table(self):
        lines = self._card().render_markdown().splitlines()
        assert lines[0].startswith("| bus | level |")
        assert all(line.startswith("|") for line in lines)
        assert len(lines) == 2 + 4

    def test_to_dict_orders_bus_major(self):
        document = self._card().to_dict()
        assert [c["bus"] for c in document["cells"]] == [
            "pci", "pci", "wishbone", "wishbone",
        ]
        assert document["seed"] == 55

    _FAMILIES = {
        "pci": {
            "bit_flip": {"detected": 3, "silent": 1},
            "glitch": {"benign": 2},
        },
        "wishbone": {
            "bit_flip": {"detected": 2, "recovered": 1},
        },
    }

    def _fault_card(self):
        card = self._card()
        return MatrixScorecard(
            card.seed, card.n_commands, card.buses, card.levels,
            card.cells, fault_families=self._FAMILIES,
        )

    def test_fault_family_table_renders(self):
        text = self._fault_card().render()
        assert "fault detection per family" in text
        assert "bit_flip" in text
        assert "75.0%" in text  # 3 detected / 4 effective on pci
        # No fault leg, no table.
        assert "fault detection" not in self._card().render()

    def test_fault_family_markdown(self):
        text = self._fault_card().render_markdown()
        assert "| bus | fault | runs | detected |" in text
        assert "| pci | glitch | 2 | 0 | 0 | 2 | 0 | n/a |" in text

    def test_fault_families_in_dict(self):
        document = self._fault_card().to_dict()
        assert document["fault_families"] == self._FAMILIES
        assert self._card().to_dict()["fault_families"] == {}
