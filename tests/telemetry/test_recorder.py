"""Tests for the flight recorder ring, dumps and replay."""

import json

import pytest

from repro.instrument.probes import (
    DETECTION,
    FAULT_ACTIVATE,
    METHOD_CALL,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
    ProbeBus,
)
from repro.telemetry.recorder import (
    DEFAULT_RECORD_KINDS,
    FlightRecorder,
    flight_record_chrome_trace,
    load_flight_record,
    render_flight_record,
)


class _Payload:
    def __init__(self, txn_id):
        self.txn_id = txn_id


class _Request:
    method = "get_command"
    client = "top.app0"
    path = "top.app0"


class TestRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_manual_markers(self):
        recorder = FlightRecorder(8)
        recorder.record("run.start", run_id=3, fault="glitch")
        assert recorder.events[0]["kind"] == "run.start"
        assert recorder.events[0]["fault"] == "glitch"

    def test_ring_keeps_tail_and_counts_drops(self):
        recorder = FlightRecorder(4)
        for index in range(10):
            recorder.record("marker", index=index)
        assert recorder.seen == 10
        assert recorder.dropped == 6
        assert [e["index"] for e in recorder.events] == [6, 7, 8, 9]
        assert [e["index"] for e in recorder.tail(2)] == [8, 9]
        assert recorder.tail(0) == []

    def test_default_kinds_exclude_hot_kernel_events(self):
        assert "signal.commit" not in DEFAULT_RECORD_KINDS
        assert TRANSACTION_END in DEFAULT_RECORD_KINDS
        assert FAULT_ACTIVATE in DEFAULT_RECORD_KINDS


class TestProbeCapture:
    def test_captures_and_flattens_probe_events(self):
        bus = ProbeBus()
        recorder = FlightRecorder(16).attach(bus)
        bus.emit(METHOD_CALL, 1000, _Request(), _Request())
        payload = _Payload(7)
        bus.emit(TRANSACTION_BEGIN, 2000, "top.bus.mon", payload)
        bus.emit(TRANSACTION_END, 2500, "top.bus.mon", payload)
        events = recorder.events
        assert [e["kind"] for e in events] == [
            METHOD_CALL, TRANSACTION_BEGIN, TRANSACTION_END,
        ]
        assert events[0]["method"] == "get_command"
        assert events[1]["txn_id"] == 7
        # Every field must already be JSON-ready (no live objects).
        json.dumps(events)

    def test_detach_stops_recording(self):
        bus = ProbeBus()
        recorder = FlightRecorder(16).attach(bus)
        bus.emit(DETECTION, object())
        recorder.detach()
        bus.emit(DETECTION, object())
        assert recorder.seen == 1


class TestDumpAndReplay:
    def _dumped(self, tmp_path):
        bus = ProbeBus()
        recorder = FlightRecorder(16).attach(bus)
        payload = _Payload(3)
        bus.emit(TRANSACTION_BEGIN, 1_000_000, "top.bus.mon", payload)
        bus.emit(TRANSACTION_END, 2_000_000, "top.bus.mon", payload)
        bus.emit(DETECTION, object())
        path = tmp_path / "run000.jsonl"
        recorder.dump(path, header={"run_id": 0, "classification": "benign"})
        return path

    def test_round_trip(self, tmp_path):
        path = self._dumped(tmp_path)
        header, events = load_flight_record(path)
        assert header["type"] == "header"
        assert header["run_id"] == 0
        assert header["seen"] == 3
        assert header["dropped"] == 0
        assert len(events) == 3

    def test_render_timeline(self, tmp_path):
        header, events = load_flight_record(self._dumped(tmp_path))
        text = render_flight_record(header, events)
        assert "== flight record ==" in text
        assert "transaction.end" in text
        assert "classification" in text

    def test_chrome_trace_pairs_transactions(self, tmp_path):
        __, events = load_flight_record(self._dumped(tmp_path))
        slices = flight_record_chrome_trace(events)
        durations = [s for s in slices if s["ph"] == "X"]
        assert len(durations) == 1
        assert durations[0]["args"]["txn_id"] == 3
        assert durations[0]["dur"] > 0
