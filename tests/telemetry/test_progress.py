"""Tests for live campaign progress aggregation and heartbeats."""

import json
import queue

from repro.telemetry.progress import CampaignProgress, HeartbeatSender


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _progress(**kwargs):
    clock = _FakeClock()
    return CampaignProgress(clock=clock, **kwargs), clock


class TestGauges:
    def test_initial_state(self):
        progress, __ = _progress()
        assert progress.completed == 0
        assert progress.runs_per_second == 0.0
        assert progress.eta_seconds is None
        assert not progress.done

    def test_rate_and_eta(self):
        progress, clock = _progress()
        progress.begin(10)
        clock.now += 2.0
        for __ in range(4):
            progress.record_outcome("benign")
        assert progress.runs_per_second == 2.0
        assert progress.eta_seconds == 3.0
        assert not progress.done

    def test_done_and_finish_freeze_elapsed(self):
        progress, clock = _progress()
        progress.begin(2)
        clock.now += 1.0
        progress.record_outcome("benign")
        progress.record_outcome("silent")
        progress.finish()
        clock.now += 50.0
        assert progress.done
        assert progress.elapsed == 1.0

    def test_record_outcome_accepts_objects(self):
        class Outcome:
            classification = "detected"

        progress, __ = _progress()
        progress.record_outcome(Outcome())
        assert progress.classifications == {"detected": 1}

    def test_recovery_rate(self):
        progress, __ = _progress()
        for classification in ("recovered", "recovered", "detected",
                               "silent", "benign"):
            progress.record_outcome(classification)
        assert progress.recovery_rate == 0.5

    def test_recovery_rate_none_without_effective_faults(self):
        progress, __ = _progress()
        progress.record_outcome("benign")
        assert progress.recovery_rate is None


class TestHeartbeats:
    def test_drain_folds_start_and_done(self):
        progress, __ = _progress()
        channel = queue.Queue()
        sender = HeartbeatSender(channel)
        sender.start(7)
        assert progress.drain(channel) == 1
        (worker, (run_id, __)), = progress.workers.items()
        assert run_id == 7
        sender.done(7, "benign")
        progress.drain(channel)
        assert progress.workers[worker][0] is None
        assert progress.heartbeats == 2

    def test_drain_none_channel(self):
        progress, __ = _progress()
        assert progress.drain(None) == 0

    def test_sender_swallows_channel_failures(self):
        class DeadChannel:
            def put_nowait(self, message):
                raise OSError("pipe closed")

        HeartbeatSender(DeadChannel()).start(1)  # must not raise


class TestTicker:
    def test_tick_is_rate_limited(self):
        ticks = []
        clock = _FakeClock()
        progress = CampaignProgress(
            on_tick=ticks.append, tick_seconds=0.5, clock=clock
        )
        assert progress.tick()
        assert not progress.tick()  # same instant: suppressed
        clock.now += 1.0
        assert progress.tick()
        assert progress.tick(force=True)
        assert len(ticks) == 3

    def test_ticker_line_mentions_everything(self):
        progress, clock = _progress()
        progress.begin(8)
        clock.now += 2.0
        progress.record_outcome("recovered")
        progress.record_outcome("detected")
        progress.heartbeat(4242, 5)
        line = progress.render_ticker()
        assert "runs 2/8" in line
        assert "runs/s" in line
        assert "eta" in line
        assert "recovered:1" in line
        assert "recovery 50%" in line
        assert "workers 1/1" in line

    def test_snapshot_and_json(self, tmp_path):
        progress, clock = _progress()
        progress.begin(4)
        clock.now += 1.0
        progress.record_outcome("benign")
        progress.heartbeat(99, 2)
        path = tmp_path / "progress.json"
        progress.write_json(path)
        document = json.loads(path.read_text())
        assert document["total"] == 4
        assert document["completed"] == 1
        assert document["workers"] == {"99": {"run_id": 2}}
        assert document["classifications"] == {"benign": 1}
