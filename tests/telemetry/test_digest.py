"""Tests for the shared power-of-two latency digest."""

import pickle
import random

import pytest

from repro.telemetry.digest import (
    STANDARD_QUANTILES,
    LatencyDigest,
    quantile_from_pow2_buckets,
)


class TestQuantileKernel:
    def test_empty_sample_set_is_zero(self):
        assert quantile_from_pow2_buckets({}, 0, None, 0.5) == 0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            quantile_from_pow2_buckets({1: 1}, 1, 1, 1.5)
        with pytest.raises(ValueError):
            quantile_from_pow2_buckets({1: 1}, 1, 1, -0.1)

    def test_upper_bound_of_selected_bucket(self):
        # bucket 4 holds [8, 15]; one sample there, quantile reports 15.
        assert quantile_from_pow2_buckets({4: 1}, 1, None, 0.5) == 15

    def test_clamped_to_observed_maximum(self):
        assert quantile_from_pow2_buckets({4: 1}, 1, 9, 0.5) == 9

    def test_standard_quantiles_are_p50_p95_p99(self):
        assert STANDARD_QUANTILES == (0.5, 0.95, 0.99)


class TestLatencyDigest:
    def test_empty_digest(self):
        digest = LatencyDigest()
        assert digest.count == 0
        assert digest.mean == 0.0
        assert digest.p50 == digest.p95 == digest.p99 == 0

    def test_single_sample(self):
        digest = LatencyDigest()
        digest.add(180)
        assert digest.count == 1
        assert digest.min == digest.max == 180
        assert digest.p50 == 180  # clamped to the exact max
        assert digest.mean == 180.0

    def test_quantiles_are_monotone(self):
        digest = LatencyDigest()
        for value in [1, 2, 4, 8, 100, 1000, 5000]:
            digest.add(value)
        assert digest.p50 <= digest.p95 <= digest.p99 <= digest.max

    def test_negative_samples_clamp_to_zero(self):
        digest = LatencyDigest()
        digest.add(-5)
        assert digest.min == 0
        assert digest.total == 0

    def test_merge_matches_serial_stream(self):
        rng = random.Random(55)
        samples = [rng.randrange(0, 100_000) for __ in range(500)]
        serial = LatencyDigest()
        for value in samples:
            serial.add(value)
        shards = [LatencyDigest() for __ in range(4)]
        for index, value in enumerate(samples):
            shards[index % 4].add(value)
        merged = LatencyDigest.merged(shards)
        assert merged == serial
        assert merged.p95 == serial.p95

    def test_merge_is_commutative(self):
        a, b = LatencyDigest(), LatencyDigest()
        for value in (1, 10, 100):
            a.add(value)
        for value in (7, 70):
            b.add(value)
        ab = LatencyDigest.merged([a, b])
        ba = LatencyDigest.merged([b, a])
        assert ab == ba

    def test_dict_round_trip(self):
        digest = LatencyDigest()
        for value in (3, 14, 159, 2653):
            digest.add(value)
        document = digest.to_dict()
        assert document["p95"] == digest.p95
        assert all(isinstance(k, str) for k in document["buckets"])
        clone = LatencyDigest.from_dict(document)
        assert clone == digest

    def test_picklable_for_pool_transport(self):
        digest = LatencyDigest()
        digest.add(42)
        clone = pickle.loads(pickle.dumps(digest))
        assert clone == digest


class TestHistogramDelegation:
    """Satellite: MetricsCollector histograms share the quantile kernel."""

    def test_histogram_quantile_equals_digest_quantile(self):
        from repro.instrument.metrics import Histogram

        histogram = Histogram()
        digest = LatencyDigest()
        for value in (1, 2, 3, 50, 900, 40_000):
            histogram.add(value)
            digest.add(value)
        for q in STANDARD_QUANTILES:
            assert histogram.quantile(q) == digest.quantile(q)

    def test_histogram_document_has_p95_p99(self):
        from repro.instrument.metrics import Histogram

        histogram = Histogram()
        histogram.add(100)
        document = histogram.to_dict()
        assert "p95" in document and "p99" in document
        assert document["p99"] == histogram.quantile(0.99)
