"""Tests for the AXI4-Lite substrate and its library interface element."""

import pytest

from repro.axi import (
    RESP_SLVERR,
    AxiLiteBus,
    AxiLiteBusInterface,
    AxiLiteFunctionalInterface,
    AxiLiteMaster,
    AxiLiteMonitor,
    AxiLiteOperation,
    AxiLiteSlave,
)
from repro.core import (
    CommandType,
    default_library,
    expected_memory_image,
    generate_workload,
)
from repro.errors import ProtocolError
from repro.flow import build_axi4lite_platform, build_functional_platform
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.tlm import Memory
from repro.verify import check_memory_image


class AxiBench(Module):
    def __init__(self, parent, name, accept_latency=0, mem_size=0x1000):
        super().__init__(parent, name)
        self.clock = Clock(self, "clock", period=10 * NS)
        self.bus = AxiLiteBus(self, "bus")
        self.memory = Memory(mem_size)
        self.slave = AxiLiteSlave(
            self, "slave", self.bus, self.clock.clk, self.memory,
            base=0x0, size=mem_size, accept_latency=accept_latency,
        )
        self.monitor = AxiLiteMonitor(self, "mon", self.bus, self.clock.clk)
        self.master = AxiLiteMaster(self, "master", self.bus, self.clock.clk)


def _run_ops(ops, **tb_kwargs):
    sim = Simulator()
    tb = AxiBench(sim, "tb", **tb_kwargs)

    def stim():
        for op in ops:
            yield from tb.master.transact(op)
        sim.stop()

    sim.spawn(stim, "stim")
    sim.run(10 * MS)
    return tb


class TestOperation:
    def test_factories(self):
        read = AxiLiteOperation.read(0x10, count=2)
        assert not read.is_write and read.count == 2
        write = AxiLiteOperation.write(0x10, 5)
        assert write.is_write and write.data == [5]
        assert write.strb == 0xF

    def test_validation(self):
        with pytest.raises(ProtocolError):
            AxiLiteOperation.read(0x2)  # unaligned
        with pytest.raises(ProtocolError):
            AxiLiteOperation.write(0x0, [])
        with pytest.raises(ProtocolError):
            AxiLiteOperation.read(0x0, count=0)
        with pytest.raises(ProtocolError):
            AxiLiteOperation.read(0x0, strb=0x100)

    def test_wide_strb_needs_wide_bus(self):
        # 8 lanes only validate when strb_bits says the bus has them.
        with pytest.raises(ProtocolError):
            AxiLiteOperation.write(0x0, [1], strb=0xFF)
        op = AxiLiteOperation.write(0x0, [1], strb=0xFF, strb_bits=8)
        assert op.strb == 0xFF


class TestPinLevel:
    def test_write_read_roundtrip(self):
        ops = [
            AxiLiteOperation.write(0x40, [0xAA, 0xBB, 0xCC]),
            AxiLiteOperation.read(0x40, count=3),
        ]
        tb = _run_ops(ops)
        assert ops[0].status == "ok"
        assert ops[1].data == [0xAA, 0xBB, 0xCC]
        assert not tb.monitor.violations

    def test_strb_byte_lanes(self):
        ops = [
            AxiLiteOperation.write(0x0, [0xFFFFFFFF]),
            AxiLiteOperation.write(0x0, [0x0], strb=0x3),
            AxiLiteOperation.read(0x0),
        ]
        tb = _run_ops(ops)
        assert ops[2].data == [0xFFFF0000]

    def test_accept_latency_stretches(self):
        fast_op = AxiLiteOperation.write(0x0, [1])
        _run_ops([fast_op])
        slow_op = AxiLiteOperation.write(0x0, [1])
        _run_ops([slow_op], accept_latency=4)
        fast = fast_op.complete_time - fast_op.enqueue_time
        slow = slow_op.complete_time - slow_op.enqueue_time
        assert slow > fast

    def test_unmapped_address_times_out(self):
        op = AxiLiteOperation.read(0x8000_0000 - 4)
        tb = _run_ops([op])
        assert op.status == "timeout"
        assert tb.master.timeouts_seen == 1

    def test_slave_error_signals_slverr(self):
        bad = AxiLiteOperation.write(0x0, [1])
        from repro.tlm import RomMemory

        sim = Simulator()
        tb = AxiBench(sim, "tb")
        tb.slave.store = RomMemory([0], size_bytes=0x1000)

        def stim():
            yield from tb.master.transact(bad)
            sim.stop()

        sim.spawn(stim, "stim")
        sim.run(10 * MS)
        assert bad.status == "slverr"
        assert tb.slave.errors_signalled == 1
        transfers = tb.monitor.transfers
        assert transfers and transfers[-1].resp == RESP_SLVERR

    def test_monitor_records_transfers(self):
        ops = [
            AxiLiteOperation.write(0x10, [7]),
            AxiLiteOperation.read(0x10),
        ]
        tb = _run_ops(ops)
        signatures = tb.monitor.signatures()
        assert (0x10, True, 7, 0xF, 0) in signatures
        assert (0x10, False, 7, 0xF, 0) in signatures

    def test_multi_word_ops_become_beat_trains(self):
        ops = [AxiLiteOperation.write(0x20, [1, 2, 3, 4])]
        tb = _run_ops(ops)
        # AXI4-Lite has no bursts: four beats at address + 4*i.
        addresses = [t.address for t in tb.monitor.transfers]
        assert addresses == [0x20, 0x24, 0x28, 0x2C]


class TestLibraryElement:
    def test_in_default_library(self):
        library = default_library()
        assert library.lookup("axi4lite", "pin_accurate") \
            is AxiLiteBusInterface
        assert library.lookup("axi4lite", "functional") \
            is AxiLiteFunctionalInterface

    def test_golden_memory_image(self):
        workload = generate_workload(seed=44, n_commands=25,
                                     address_span=0x200, max_burst=4,
                                     partial_byte_enable_fraction=0.3)
        bundle = build_axi4lite_platform([workload])
        bundle.run(100 * MS)
        golden = expected_memory_image(workload, 0x200 // 4)
        check_memory_image(bundle.memory, golden)
        assert not bundle.monitor.violations

    def test_peripheral_reachable(self):
        commands = [
            CommandType.write(0x0001_0008, 0x42),
            CommandType.read(0x0001_0008, count=1),
        ]
        bundle = build_axi4lite_platform([commands])
        bundle.run(10 * MS)
        app = bundle.handle.applications[0]
        assert app.records[1].response.data == [0x42 ^ 0xFFFFFFFF]

    def test_matches_functional_traces(self):
        workload = generate_workload(seed=4, n_commands=15,
                                     address_span=0x200, max_burst=3)
        functional = build_functional_platform([workload]).run(100 * MS)
        axi = build_axi4lite_platform([workload]).run(100 * MS)
        assert functional.traces == axi.traces

    def test_synthesis_consistency(self):
        workload = generate_workload(seed=5, n_commands=10,
                                     address_span=0x100, max_burst=2)
        pre = build_axi4lite_platform([workload]).run(100 * MS)
        post = build_axi4lite_platform([workload], synthesize=True).run(
            200 * MS
        )
        assert pre.traces == post.traces
