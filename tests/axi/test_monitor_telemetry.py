"""AXI4-Lite monitor violations flowing into the telemetry stack.

Satellite coverage: payload-stability, EXOKAY and undefined-RESP
violations must land in the simulator's detection log, in an attached
:class:`ScorecardProbe`'s detection counter, in the flight recorder,
and (end to end) in the fault classifier's ``detected`` bucket.
"""

import pytest

from repro.axi import RESP_EXOKAY, AxiLiteBus, AxiLiteMonitor
from repro.hdl import Clock, Module
from repro.hdl.bitvector import LogicVector
from repro.kernel import MS, NS, Simulator
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.scorecard import ScorecardProbe


class _MonitorBench(Module):
    """Bus + non-strict monitor only; the test drives the wires."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.clock = Clock(self, "clock", period=10 * NS)
        self.bus = AxiLiteBus(self, "bus")
        self.monitor = AxiLiteMonitor(
            self, "mon", self.bus, self.clock.clk, strict=False
        )


@pytest.fixture()
def violations_run():
    sim = Simulator()
    probe = ScorecardProbe().attach(sim.probes)
    recorder = FlightRecorder(64).attach(sim.probes)
    tb = _MonitorBench(sim, "tb")
    bus = tb.bus
    clk = tb.clock.clk

    def stim():
        b_valid = bus.bvalid.get_driver("tb.stim.bvalid")
        b_resp = bus.bresp.get_driver("tb.stim.bresp")
        # 1. Payload instability: AWADDR changes while AWVALID waits.
        bus.awvalid.write(1)
        bus.awaddr.write(LogicVector(bus.addr_width, 0x10))
        yield clk.posedge
        yield clk.posedge
        bus.awaddr.write(LogicVector(bus.addr_width, 0x20))
        yield clk.posedge
        bus.awvalid.write(0)
        yield clk.posedge
        # 2. EXOKAY write response (illegal on AXI4-Lite).
        b_valid.write(1)
        b_resp.write(LogicVector(2, RESP_EXOKAY))
        bus.bready.write(1)
        yield clk.posedge
        b_valid.write(0)
        bus.bready.write(0)
        yield clk.posedge
        # 3. B handshake with BRESP left undriven (undefined).
        b_resp.release()
        b_valid.write(1)
        bus.bready.write(1)
        yield clk.posedge
        b_valid.release()
        bus.bready.write(0)
        yield clk.posedge
        sim.stop()

    sim.spawn(stim, "stim")
    sim.run(1 * MS)
    return sim, tb, probe, recorder


class TestMonitorViolationTelemetry:
    def test_monitor_flags_all_three_rule_breaks(self, violations_run):
        __, tb, __, __ = violations_run
        text = "\n".join(tb.monitor.violations)
        assert "AWADDR changed while AWVALID held" in text
        assert "EXOKAY response on AXI4-Lite" in text
        assert "undefined BRESP" in text

    def test_detections_reach_the_simulator_log(self, violations_run):
        sim, tb, __, __ = violations_run
        assert len(sim.detections) == len(tb.monitor.violations)
        assert all(r.source == "tb.mon" for r in sim.detections)

    def test_scorecard_counts_detections(self, violations_run):
        __, tb, probe, __ = violations_run
        score = probe.score("axi4lite", "pin", "violations")
        assert score.detections == len(tb.monitor.violations)
        assert score.detections >= 3

    def test_flight_recorder_captures_violation_events(self, violations_run):
        __, tb, __, recorder = violations_run
        detections = [
            e for e in recorder.events if e["kind"] == "detection"
        ]
        assert len(detections) == len(tb.monitor.violations)
        assert any("EXOKAY" in e["message"] for e in detections)
        assert all(e["source"] == "tb.mon" for e in detections)


class TestCampaignClassifierIntegration:
    def test_arready_stuck_at_is_detected_with_scored_run(self):
        """A stuck ARREADY on the demo AXI4-Lite platform stalls the
        master with AWVALID held, the monitor's stability checker fires,
        and the classifier must file the run as *detected* with the
        violation counted in the run's telemetry score."""
        from repro.fault import run_campaign
        from repro.fault.spec import demo_campaign_spec

        spec = demo_campaign_spec(platform="axi4lite", seed=11, runs=24)
        spec.telemetry = True
        result = run_campaign(spec, max_runs=12)
        stuck = [
            o for o in result.outcomes
            if o.kind == "stuck_at" and "arready" in o.target_path
        ]
        assert stuck, "demo campaign lost its arready stuck-at leg"
        detected = [o for o in stuck if o.classification == "detected"]
        assert detected, (
            "arready stuck-at was never detected: "
            + ", ".join(f"{o.run_id}:{o.classification}" for o in stuck)
        )
        for outcome in detected:
            assert "AWVALID held" in outcome.detail
            assert outcome.score["detections"] > 0
            assert outcome.score["bus"] == "axi4lite"
