"""Unit tests for workload generation and the golden memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CommandType,
    expected_memory_image,
    generate_workload,
    sequential_fill,
)
from repro.errors import SimulationError


class TestGenerateWorkload:
    def test_deterministic_for_seed(self):
        a = generate_workload(5, 20)
        b = generate_workload(5, 20)
        assert [c.signature() for c in a] == [c.signature() for c in b]

    def test_different_seeds_differ(self):
        a = generate_workload(1, 20)
        b = generate_workload(2, 20)
        assert [c.signature() for c in a] != [c.signature() for c in b]

    def test_commands_within_window(self):
        commands = generate_workload(3, 50, address_base=0x100,
                                     address_span=0x100, max_burst=8)
        for command in commands:
            assert 0x100 <= command.address
            assert command.address + 4 * command.count <= 0x200

    def test_write_fraction_extremes(self):
        all_writes = generate_workload(1, 30, write_fraction=1.0)
        assert all(c.is_write for c in all_writes)
        all_reads = generate_workload(1, 30, write_fraction=0.0)
        assert all(c.is_read for c in all_reads)

    def test_partial_byte_enables_generated(self):
        commands = generate_workload(1, 60, partial_byte_enable_fraction=1.0)
        assert all(c.byte_enables != 0 for c in commands)
        assert any(c.byte_enables != 0xF for c in commands)

    def test_burst_bound(self):
        commands = generate_workload(1, 50, max_burst=2)
        assert all(c.count <= 2 for c in commands)

    def test_validation(self):
        with pytest.raises(SimulationError):
            generate_workload(1, 5, address_base=2)
        with pytest.raises(SimulationError):
            generate_workload(1, 5, max_burst=0)
        with pytest.raises(SimulationError):
            generate_workload(1, 5, write_fraction=1.5)


class TestSequentialFill:
    def test_structure(self):
        commands = sequential_fill(0x40, 4)
        assert len(commands) == 5
        assert all(c.is_write for c in commands[:4])
        assert commands[4].is_read and commands[4].count == 4


class TestGoldenModel:
    def test_simple_overwrite(self):
        commands = [
            CommandType.write(0x0, [1, 2]),
            CommandType.write(0x4, [9]),
        ]
        assert expected_memory_image(commands, 3) == [1, 9, 0]

    def test_byte_enable_merge(self):
        commands = [
            CommandType.write(0x0, [0xAABBCCDD]),
            CommandType.write(0x0, [0x11223344], byte_enables=0b1010),
        ]
        assert expected_memory_image(commands, 1) == [0x11BB33DD]

    def test_reads_ignored(self):
        commands = [CommandType.read(0x0, count=4)]
        assert expected_memory_image(commands, 2) == [0, 0]

    def test_out_of_window_writes_dropped(self):
        commands = [CommandType.write(0x100, [7])]
        assert expected_memory_image(commands, 2) == [0, 0]

    @given(st.integers(min_value=0, max_value=10_000))
    def test_image_matches_naive_replay(self, seed):
        commands = generate_workload(seed, 15, address_span=0x40, max_burst=3,
                                     partial_byte_enable_fraction=0.5)
        image = expected_memory_image(commands, 0x40 // 4)
        # Naive replay with dict + per-byte merge.
        reference = {}
        for command in commands:
            if not command.is_write:
                continue
            for offset, word in enumerate(command.data):
                index = command.address // 4 + offset
                old = reference.get(index, 0)
                merged = old
                for lane in range(4):
                    if command.byte_enables & (1 << lane):
                        mask = 0xFF << (8 * lane)
                        merged = (merged & ~mask) | (word & mask)
                reference[index] = merged
        for index in range(0x40 // 4):
            assert image[index] == reference.get(index, 0)
