"""Tests for the non-blocking interface variant and polling application."""

import pytest

from repro.core import (
    Application,
    CommandType,
    FunctionalBusInterface,
    NonBlockingBusInterfaceChannel,
    PciBusInterface,
    PollingApplication,
    generate_workload,
)
from repro.errors import SimulationError
from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.pci import PciBus, PciCentralArbiter, PciTarget
from repro.tlm import AddressRouter, Memory


class TestChannelSemantics:
    def test_try_put_refuses_when_pending(self):
        channel = NonBlockingBusInterfaceChannel()
        assert channel.try_put_command(CommandType.read(0x0))
        assert not channel.try_put_command(CommandType.read(0x4))
        channel.get_command()
        assert channel.try_put_command(CommandType.read(0x4))

    def test_try_get_returns_flag(self):
        channel = NonBlockingBusInterfaceChannel()
        ready, response = channel.try_app_data_get()
        assert not ready and response is None

    def test_blocking_methods_still_present(self):
        channel = NonBlockingBusInterfaceChannel()
        channel.put_command(CommandType.read(0x0))
        assert channel.is_pending_command


def _functional_platform(app_cls, commands, **app_kwargs):
    sim = Simulator()
    top = Module(sim, "top")
    memory = Memory(1 << 16)
    router = AddressRouter()
    router.add_target(0, 1 << 16, memory, "mem")
    iface = FunctionalBusInterface(
        top, "iface", router, channel_cls=NonBlockingBusInterfaceChannel
    )
    app = app_cls(top, "app", commands, iface, **app_kwargs)
    return sim, memory, iface, app


class TestPollingApplication:
    def test_polls_until_served(self):
        commands = [
            CommandType.write(0x100, [1, 2]),
            CommandType.read(0x100, count=2),
        ]
        sim, memory, __, app = _functional_platform(
            PollingApplication, commands, poll_interval=5 * NS
        )
        sim.run(10 * MS)
        assert app.done
        assert app.records[1].response.data == [1, 2]
        # A read response can never be ready instantly: polling happened.
        assert app.retries >= 1

    def test_same_observable_trace_as_blocking(self):
        workload = generate_workload(seed=61, n_commands=12,
                                     address_span=0x200, max_burst=3)
        sim_b, __, ___, blocking_app = _functional_platform(
            Application, workload
        )
        sim_b.run(10 * MS)
        sim_p, __, ___, polling_app = _functional_platform(
            PollingApplication, workload, poll_interval=3 * NS
        )
        sim_p.run(50 * MS)
        assert blocking_app.trace_signatures() == polling_app.trace_signatures()

    def test_bad_poll_interval(self):
        with pytest.raises(SimulationError):
            _functional_platform(PollingApplication, [], poll_interval=0)

    def test_polling_on_pin_accurate_pci(self):
        sim = Simulator()

        class Top(Module):
            def __init__(self, parent, name):
                super().__init__(parent, name)
                self.clock = Clock(self, "clock", period=30 * NS)
                self.bus = PciBus(self, "bus")
                self.arb = PciCentralArbiter(self, "arb", self.bus,
                                             self.clock.clk)
                self.memory = Memory(1 << 12)
                self.target = PciTarget(self, "tgt", self.bus, self.clock.clk,
                                        self.memory, base=0, size=1 << 12)
                self.iface = PciBusInterface(
                    self, "iface", self.bus, self.clock.clk,
                    channel_cls=NonBlockingBusInterfaceChannel,
                )
                self.app = PollingApplication(
                    self, "app",
                    [CommandType.write(0x40, [0xAB]),
                     CommandType.read(0x40, count=1)],
                    self.iface, poll_interval=30 * NS,
                )

        top = Top(sim, "top")
        sim.run(10 * MS)
        assert top.app.done
        assert top.app.records[1].response.data == [0xAB]


class TestChannelClassValidation:
    def test_interface_rejects_bad_channel_cls(self):
        sim = Simulator()
        top = Module(sim, "top")
        router = AddressRouter()
        router.add_target(0, 0x100, Memory(0x100))
        with pytest.raises(TypeError):
            FunctionalBusInterface(top, "iface", router, channel_cls=dict)

    def test_blocking_iface_accepts_nonblocking_port(self):
        """Subclass channels connect; the derived class's space survives."""
        sim = Simulator()
        top = Module(sim, "top")
        router = AddressRouter()
        router.add_target(0, 0x100, Memory(0x100))
        iface = FunctionalBusInterface(top, "iface", router)  # blocking
        app = PollingApplication(top, "app", [], iface)  # non-blocking port
        assert isinstance(iface.channel.state, NonBlockingBusInterfaceChannel)
        assert app.bus_port.space is iface.channel.space

    def test_unrelated_channel_classes_rejected(self):
        from repro.osss import GlobalObject

        sim = Simulator()
        top = Module(sim, "top")

        class Unrelated:
            def noop(self):
                pass

        handle = GlobalObject(top, "other", Unrelated)
        router = AddressRouter()
        router.add_target(0, 0x100, Memory(0x100))
        iface = FunctionalBusInterface(top, "iface", router)
        with pytest.raises(SimulationError):
            iface.connect_application(handle)
