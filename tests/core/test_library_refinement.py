"""Unit tests for the interface library and the refinement comparison."""

import pytest

from repro.core import (
    CommandType,
    FunctionalBusInterface,
    InterfaceLibrary,
    PciBusInterface,
    PlatformHandle,
    compare_refinement,
    default_library,
    generate_workload,
)
from repro.errors import RefinementError
from repro.flow import build_functional_platform, build_pci_platform
from repro.kernel import MS, Simulator


class TestLibrary:
    def test_default_contents(self):
        library = default_library()
        assert ("pci", "functional") in library.available()
        assert ("pci", "pin_accurate") in library.available()
        assert library.lookup("pci", "functional") is FunctionalBusInterface
        assert library.lookup("pci", "pin_accurate") is PciBusInterface

    def test_abstractions_for(self):
        library = default_library()
        assert library.abstractions_for("pci") == ["functional", "pin_accurate"]
        assert library.abstractions_for("axi") == []

    def test_unknown_lookup(self):
        with pytest.raises(RefinementError):
            default_library().lookup("pci", "gate_level")

    def test_non_interface_rejected(self):
        with pytest.raises(RefinementError):
            InterfaceLibrary().register(int)

    def test_conflicting_registration_rejected(self):
        library = default_library()

        class Impostor(FunctionalBusInterface):
            BUS_NAME = "pci"
            ABSTRACTION = "functional"

        with pytest.raises(RefinementError):
            library.register(Impostor)

    def test_reregistration_is_idempotent(self):
        library = default_library()
        library.register(FunctionalBusInterface)


class TestPlatformHandle:
    def test_needs_applications(self):
        with pytest.raises(RefinementError):
            PlatformHandle(Simulator(), [], "empty")

    def test_unfinished_application_detected(self):
        workload = generate_workload(1, 50, max_burst=4)
        bundle = build_pci_platform([workload])
        with pytest.raises(RefinementError, match="did not finish"):
            bundle.handle.run(100)  # far too short


class TestRefinementComparison:
    def test_consistent_platforms(self):
        workload = generate_workload(21, 15, address_span=0x200)
        report = compare_refinement(
            lambda: build_functional_platform([workload]).handle,
            lambda: build_pci_platform([workload]).handle,
            max_time=20 * MS,
        )
        assert report.consistent
        assert report.reference.transactions == 15
        assert report.refined.transactions == 15
        assert report.delta_ratio > 1.0
        assert "trace-consistent: True" in report.summary()

    def test_divergent_platforms_detected(self):
        workload_a = [CommandType.write(0x0, [1]), CommandType.read(0x0)]
        workload_b = [CommandType.write(0x0, [2]), CommandType.read(0x0)]
        report = compare_refinement(
            lambda: build_functional_platform([workload_a]).handle,
            lambda: build_functional_platform([workload_b]).handle,
            max_time=1 * MS,
        )
        assert not report.consistent
        assert any("app0" in m for m in report.mismatches)
        assert "MISMATCH" in report.summary()
