"""Unit tests for the BusInterfaceChannel guarded-method contract."""

import pytest

from repro.core import CommandType, DataType
from repro.core.bus_interface import BusInterface, BusInterfaceChannel
from repro.hdl import Module
from repro.kernel import NS, Simulator, Timeout
from repro.osss import GlobalObject, RoundRobinArbiter


class TestChannelStateMachine:
    """Direct (non-simulated) exercise of the shared object's semantics."""

    def test_put_then_get(self):
        channel = BusInterfaceChannel()
        command = CommandType.read(0x0)
        assert not channel.is_pending_command
        epoch = channel.put_command(command)
        assert channel.is_pending_command
        got_epoch, got = channel.get_command()
        assert got is command and got_epoch == epoch
        assert not channel.is_pending_command

    def test_guards_reflect_state(self):
        channel = BusInterfaceChannel()
        put_guard = type(channel).put_command.guard
        get_guard = type(channel).get_command.guard
        data_guard = type(channel).app_data_get.guard
        assert put_guard(channel)           # empty: put allowed
        assert not get_guard(channel)       # nothing pending
        assert not data_guard(channel)      # no responses
        channel.put_command(CommandType.read(0x0))
        assert not put_guard(channel)
        assert get_guard(channel)

    def test_response_roundtrip(self):
        channel = BusInterfaceChannel()
        epoch = channel.put_command(CommandType.read(0x0))
        channel.get_command()
        response = DataType([42])
        assert channel.put_response(epoch, response)
        assert channel.is_application_read_data
        assert channel.app_data_get() is response
        assert not channel.is_application_read_data

    def test_reset_cancels_everything(self):
        channel = BusInterfaceChannel()
        epoch = channel.put_command(CommandType.read(0x0))
        channel.reset()
        assert not channel.is_pending_command
        # An in-flight response from before the reset is dropped.
        assert not channel.put_response(epoch, DataType([1]))
        assert not channel.is_application_read_data

    def test_response_capacity_guard(self):
        channel = BusInterfaceChannel(response_capacity=1)
        epoch = channel.epoch
        assert channel.has_response_space
        channel.put_response(epoch, DataType([1]))
        assert not channel.has_response_space

    def test_counters(self):
        channel = BusInterfaceChannel()
        epoch = channel.put_command(CommandType.write(0x0, [1]))
        channel.get_command()
        channel.put_response(epoch, DataType([]))
        channel.app_data_get()
        assert channel.commands_put == 1
        assert channel.commands_taken == 1
        assert channel.responses_delivered == 1


class TestBlockingThroughGlobalObject:
    """The channel's blocking semantics under the kernel."""

    @pytest.fixture
    def sim(self):
        return Simulator()

    def test_get_command_blocks_until_put(self, sim):
        top = Module(sim, "top")
        channel = GlobalObject(top, "ch", BusInterfaceChannel)
        log = []

        def protocol_side():
            __, command = yield from channel.call("get_command")
            log.append((command.address, sim.time))

        def application_side():
            yield Timeout(25 * NS)
            yield from channel.call("put_command", CommandType.read(0x40))

        sim.spawn(protocol_side, "proto")
        sim.spawn(application_side, "app")
        sim.run(100 * NS)
        assert log == [(0x40, 25 * NS)]

    def test_second_put_blocks_until_get(self, sim):
        top = Module(sim, "top")
        channel = GlobalObject(top, "ch", BusInterfaceChannel)
        order = []

        def application_side():
            yield from channel.call("put_command", CommandType.read(0x0))
            order.append("put1")
            yield from channel.call("put_command", CommandType.read(0x4))
            order.append("put2")

        def protocol_side():
            yield Timeout(50 * NS)
            yield from channel.call("get_command")
            order.append("get1")

        sim.spawn(application_side, "app")
        sim.spawn(protocol_side, "proto")
        sim.run(200 * NS)
        assert order == ["put1", "get1", "put2"]


class TestBusInterfaceBase:
    def test_describe_metadata(self):
        sim = Simulator()
        iface = BusInterface(sim, "iface", arbiter=RoundRobinArbiter())
        info = iface.describe()
        assert info["bus"] == "abstract"
        assert info["path"] == "iface"
        assert iface.channel.space.arbiter.kind == "round_robin"

    def test_connect_application_merges_spaces(self):
        sim = Simulator()
        iface = BusInterface(sim, "iface")
        top = Module(sim, "app_host")
        app_handle = GlobalObject(top, "port", BusInterfaceChannel)
        iface.connect_application(app_handle)
        assert app_handle.space is iface.channel.space
