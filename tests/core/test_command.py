"""Unit tests for CommandType / DataType."""

import pytest

from repro.core import CommandType, DataType, READ, WRITE
from repro.errors import ProtocolError
from repro.pci import CMD_MEM_READ, CMD_MEM_WRITE


class TestCommandType:
    def test_read_factory(self):
        cmd = CommandType.read(0x40, count=3)
        assert cmd.is_read and not cmd.is_write
        assert cmd.count == 3 and cmd.data == []

    def test_write_factory(self):
        cmd = CommandType.write(0x40, [1, 2])
        assert cmd.is_write
        assert cmd.count == 2

    def test_write_scalar(self):
        assert CommandType.write(0x0, 5).data == [5]

    def test_validation(self):
        with pytest.raises(ProtocolError):
            CommandType("erase", 0x0)
        with pytest.raises(ProtocolError):
            CommandType.read(0x2)
        with pytest.raises(ProtocolError):
            CommandType.write(0x0, [])
        with pytest.raises(ProtocolError):
            CommandType.read(0x0, count=0)
        with pytest.raises(ProtocolError):
            CommandType(READ, 0x0, data=[1])
        with pytest.raises(ProtocolError):
            CommandType.write(0x0, [1 << 32])
        with pytest.raises(ProtocolError):
            CommandType.read(0x0, byte_enables=0x100)

    def test_to_pci_operation_read(self):
        op = CommandType.read(0x80, count=2, byte_enables=0x3).to_pci_operation()
        assert op.command == CMD_MEM_READ
        assert op.count == 2
        assert op.byte_enables == 0x3

    def test_to_pci_operation_write(self):
        op = CommandType.write(0x80, [9]).to_pci_operation()
        assert op.command == CMD_MEM_WRITE
        assert op.data == [9]

    def test_equality_and_hash(self):
        a = CommandType.write(0x10, [1])
        b = CommandType.write(0x10, [1])
        c = CommandType.write(0x10, [2])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_signature_kinds_distinct(self):
        read = CommandType.read(0x10)
        write = CommandType.write(0x10, [0])
        assert read.signature() != write.signature()


class TestDataType:
    def test_ok_status(self):
        response = DataType([1, 2])
        assert response.ok
        assert response.data == [1, 2]

    def test_error_status(self):
        response = DataType([], status="master_abort")
        assert not response.ok

    def test_equality(self):
        assert DataType([1]) == DataType([1])
        assert DataType([1]) != DataType([1], status="bad")
