"""Tests of the two library interface elements against real workloads."""

import pytest

from repro.core import (
    Application,
    CommandType,
    FunctionalBusInterface,
    expected_memory_image,
    generate_workload,
)
from repro.flow import (
    PciPlatformConfig,
    build_functional_platform,
    build_pci_platform,
)
from repro.kernel import MS, NS, Simulator
from repro.tlm import AddressRouter, Memory
from repro.verify import check_memory_image


class TestFunctionalInterface:
    def _platform(self, commands, word_latency=0):
        sim = Simulator()
        memory = Memory(1 << 16)
        router = AddressRouter()
        router.add_target(0, 1 << 16, memory, "mem")
        iface = FunctionalBusInterface(sim, "iface", router,
                                       word_latency=word_latency)
        from repro.hdl import Module

        host = Module(sim, "host")
        app = Application(host, "app", commands, iface)
        return sim, memory, iface, app

    def test_write_read_roundtrip(self):
        commands = [
            CommandType.write(0x100, [1, 2, 3]),
            CommandType.read(0x100, count=3),
        ]
        sim, memory, iface, app = self._platform(commands)
        sim.run(1 * MS)
        assert app.done
        assert app.records[1].response.data == [1, 2, 3]
        assert iface.commands_serviced == 2
        assert iface.words_transferred == 6

    def test_word_latency_is_charged(self):
        # Reads are non-posted: the application waits for the data, so the
        # interface's per-word latency is visible in the record.
        commands = [CommandType.read(0x0, count=10)]
        sim, __, ___, app = self._platform(commands, word_latency=100 * NS)
        sim.run(10 * MS)
        assert app.done
        assert app.records[0].latency >= 1000 * NS

    def test_negative_latency_rejected(self):
        with pytest.raises(Exception):
            self._platform([], word_latency=-1)


class TestBothPlatformsAgainstGoldenModel:
    """The memory image after a workload must match the golden model,
    on the functional AND the pin-accurate platform."""

    @pytest.mark.parametrize("seed", [1, 17, 99])
    def test_functional_matches_golden(self, seed):
        workload = generate_workload(seed, 30, address_span=0x200,
                                     max_burst=4,
                                     partial_byte_enable_fraction=0.3)
        bundle = build_functional_platform([workload])
        bundle.run(10 * MS)
        golden = expected_memory_image(workload, 0x200 // 4)
        check_memory_image(bundle.memory, golden)

    @pytest.mark.parametrize("seed", [1, 17])
    def test_pci_matches_golden(self, seed):
        workload = generate_workload(seed, 20, address_span=0x200,
                                     max_burst=4,
                                     partial_byte_enable_fraction=0.3)
        bundle = build_pci_platform([workload])
        bundle.run(20 * MS)
        golden = expected_memory_image(workload, 0x200 // 4)
        check_memory_image(bundle.memory, golden)
        assert not bundle.monitor.violations
        assert bundle.monitor.parity_errors == 0

    def test_pci_with_pathological_target(self):
        workload = generate_workload(5, 12, address_span=0x100, max_burst=4)
        config = PciPlatformConfig(wait_states=2, retry_count=1,
                                   disconnect_after=2)
        bundle = build_pci_platform([workload], config)
        bundle.run(50 * MS)
        golden = expected_memory_image(workload, 0x100 // 4)
        check_memory_image(bundle.memory, golden)


class TestPeripheralThroughInterface:
    def test_register_block_reachable_on_both_platforms(self):
        commands = [
            CommandType.write(0x0001_0008, 0x1234),   # DATA register
            CommandType.read(0x0001_0008, count=1),   # inverted readback
            CommandType.read(0x0001_0004, count=1),   # STATUS
        ]
        for builder in (build_functional_platform, build_pci_platform):
            bundle = builder([commands])
            bundle.run(10 * MS)
            app = bundle.handle.applications[0]
            assert app.records[1].response.data == [0x1234 ^ 0xFFFFFFFF]
            status = app.records[2].response.data[0]
            assert (status >> 4) & 0xF == 1  # one DATA write counted
