"""CI smoke: compiled-backend equivalence on the PCI example platform.

Builds the Figure-4 PCI platform twice — interpreted and compiled
backends — and asserts the equivalence gate end to end: identical
application traces, bus-transaction signatures, memory images and end
times, plus a byte-identical ``fig4.vcd`` from the compiled backend.
On success the generated Python source of the compiled channel is
written out (default ``compiled_channel.py.txt``) so CI can upload it
as a build artifact next to the waveforms it proves equivalent.

Usage::

    python benchmarks/compile_smoke.py [--source-out FILE]
"""

from __future__ import annotations

import argparse
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.compile import CompiledChannel  # noqa: E402
from repro.core import CommandType  # noqa: E402
from repro.flow import PciPlatformConfig, build_pci_platform  # noqa: E402
from repro.kernel import MS  # noqa: E402
from repro.trace import VcdTracer  # noqa: E402
from repro.verify.consistency import (  # noqa: E402
    check_bus_transactions,
    check_traces,
)

FIG4_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         "fig4.vcd")

COMMANDS = [
    CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
    CommandType.read(0x100, count=3),
]


def _run(backend: str, vcd_path: "str | None" = None):
    bundle = build_pci_platform(
        [COMMANDS],
        PciPlatformConfig(wait_states=1, backend=backend),
        synthesize=True,
    )
    sim = bundle.handle.sim
    if vcd_path is not None:
        vcd = VcdTracer(vcd_path)
        vcd.add_signals([bundle.clock.clk] + bundle.bus.shared_signals())
        sim.add_tracer(vcd)
    result = bundle.run(10 * MS)
    if vcd_path is not None:
        vcd.close(sim.time)
    return bundle, result


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--source-out", default="compiled_channel.py.txt",
                        help="where to write the generated Python source")
    parser.add_argument("--vcd-out", default="fig4_compiled.vcd",
                        help="where to write the compiled backend's VCD")
    args = parser.parse_args(argv)

    bundle_int, result_int = _run("interpreted")
    bundle_cmp, result_cmp = _run("compiled", vcd_path=args.vcd_out)

    channel = bundle_cmp.synthesis.groups[0].channel
    assert isinstance(channel, CompiledChannel), type(channel).__name__

    check_traces(
        result_int.traces, result_cmp.traces, "interpreted", "compiled"
    ).require_consistent()
    check_bus_transactions(
        bundle_int.monitor.signatures(), bundle_cmp.monitor.signatures(),
        "interpreted", "compiled",
    ).require_consistent()
    assert result_int.sim_time == result_cmp.sim_time
    image_int = bundle_int.memory.dump(0, 0x80)
    image_cmp = bundle_cmp.memory.dump(0, 0x80)
    assert image_int == image_cmp, "memory images diverge"

    with open(FIG4_PATH, "rb") as handle:
        committed = handle.read()
    with open(args.vcd_out, "rb") as handle:
        fresh = handle.read()
    assert fresh == committed, (
        f"{args.vcd_out} differs from the committed fig4.vcd"
    )

    netlist = channel.netlist
    with open(args.source_out, "w", encoding="utf-8") as handle:
        handle.write(netlist.source)
    print(
        f"equivalence OK: {result_cmp.transactions} transactions, "
        f"{len(bundle_cmp.monitor.signatures())} bus signatures, "
        "fig4.vcd byte-identical"
    )
    print(f"generated source ({netlist.stats['source_lines']} lines) "
          f"written to {args.source_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
