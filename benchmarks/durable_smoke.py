"""CI smoke: durable campaigns survive crashes and never recompute.

Exercises the full durability story on the seed-55 demo campaign:

1. **Kill leg** — a child process runs the campaign with worker crashes
   injected and a journal attached; this process SIGKILLs it once the
   journal holds a couple of fsync'd outcomes, then resumes from the
   journal and asserts the canonical report is byte-identical to an
   uninterrupted run of the same spec.
2. **Cache leg** — the campaign runs twice against the same result
   cache; the warm run must be 100% hits (zero misses) and render the
   same canonical report as the cold run.

Exit status is nonzero on any mismatch, so CI can gate on it directly.

Usage::

    python benchmarks/durable_smoke.py [--runs N]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.fault import (  # noqa: E402
    demo_campaign_spec,
    report_as_json,
    run_campaign,
)

SEED = 55
CRASH_RUN_IDS = (1, 3)

_CHILD_SCRIPT = r"""
import sys
from repro.fault import demo_campaign_spec, run_campaign
spec = demo_campaign_spec(platform="pci", seed=int(sys.argv[2]),
                          runs=int(sys.argv[3]))
spec.wall_timeout = 30.0
spec.crash_run_ids = (1, 3)
run_campaign(spec, workers=2, max_runs=int(sys.argv[3]),
             journal_dir=sys.argv[1])
print("COMPLETE")
"""


def _spec(runs: int):
    spec = demo_campaign_spec(platform="pci", seed=SEED, runs=runs)
    spec.wall_timeout = 30.0
    spec.crash_run_ids = CRASH_RUN_IDS
    return spec


def _canonical(result) -> str:
    return report_as_json(result, canonical=True)


def _kill_leg(scratch: str, runs: int) -> None:
    journal_dir = os.path.join(scratch, "journal")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(_ROOT, "src")]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, journal_dir, str(SEED),
         str(runs)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    journal_file = os.path.join(journal_dir, "journal.jsonl")
    deadline = time.time() + 120
    killed = False
    while time.time() < deadline:
        if child.poll() is not None:
            break  # finished first — resuming a complete journal is fine
        try:
            with open(journal_file, "rb") as stream:
                lines = stream.read().count(b"\n")
        except OSError:
            lines = 0
        if lines >= 3:  # header + at least two fsync'd outcomes
            child.kill()
            killed = True
            break
        time.sleep(0.02)
    child.wait(timeout=120)

    resumed = run_campaign(_spec(runs), workers=2, max_runs=runs,
                           resume_from=journal_dir)
    uninterrupted = run_campaign(_spec(runs), workers=2, max_runs=runs)
    assert len(resumed.outcomes) == runs, (
        f"resume completed {len(resumed.outcomes)}/{runs} runs"
    )
    assert _canonical(resumed) == _canonical(uninterrupted), (
        "resumed report differs from an uninterrupted run"
    )
    print(f"kill leg OK: child {'killed' if killed else 'finished'}, "
          f"resume kept {resumed.resumed} journaled outcome(s), "
          f"report byte-identical across {runs} runs")


def _cache_leg(scratch: str, runs: int) -> None:
    cache_dir = os.path.join(scratch, "cache")
    spec = demo_campaign_spec(platform="pci", seed=SEED, runs=runs)
    spec.wall_timeout = 30.0
    cold = run_campaign(spec, workers=1, max_runs=runs, cache_dir=cache_dir)
    warm = run_campaign(spec, workers=1, max_runs=runs, cache_dir=cache_dir)
    assert warm.cache_hits == runs and warm.cache_misses == 0, (
        f"warm run: {warm.cache_hits} hits / {warm.cache_misses} misses, "
        f"expected {runs}/0"
    )
    assert _canonical(warm) == _canonical(cold), (
        "warm cache report differs from the cold run"
    )
    print(f"cache leg OK: warm run {warm.cache_hits}/{runs} hits, "
          "0 misses, report byte-identical")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=12,
                        help="campaign size (default 12)")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="durable_smoke_") as scratch:
        _kill_leg(scratch, args.runs)
        _cache_leg(scratch, args.runs)
    print("durable smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
