"""FIG3 — communication refinement by library-interface swap.

The same application runs against the functional (TLM) and the
pin-accurate PCI interface element. The figure's message, quantified:
identical observable traces, very different simulation cost.
"""

import pytest
from _tables import print_table

from repro.core import compare_refinement, generate_workload
from repro.flow import (
    PciPlatformConfig,
    build_functional_platform,
    build_pci_platform,
)
from repro.kernel import MS

WORKLOAD = generate_workload(seed=2024, n_commands=40, address_span=0x800,
                             max_burst=4, partial_byte_enable_fraction=0.25)
CONFIG = PciPlatformConfig()


def test_fig3_functional_platform(benchmark):
    """Simulation cost of the high-level model (the fast side)."""

    def run():
        return build_functional_platform([WORKLOAD], CONFIG).run(100 * MS)

    result = benchmark(run)
    assert result.transactions == 40


def test_fig3_pin_accurate_platform(benchmark):
    """Simulation cost of the implementation model (the slow side)."""

    def run():
        return build_pci_platform([WORKLOAD], CONFIG).run(100 * MS)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.transactions == 40


def test_fig3_refinement_comparison(benchmark):
    """Trace consistency + cost ratio: the content of Figure 3."""

    def run():
        return compare_refinement(
            lambda: build_functional_platform([WORKLOAD], CONFIG).handle,
            lambda: build_pci_platform([WORKLOAD], CONFIG).handle,
            max_time=100 * MS,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.consistent
    assert report.delta_ratio > 2.0
    print_table(
        "FIG3: interface swap — same traces, different cost",
        ["platform", "transactions", "delta cycles", "wall seconds"],
        [
            ["functional (TLM element)", report.reference.transactions,
             report.reference.delta_cycles,
             f"{report.reference.wall_seconds:.4f}"],
            ["pin-accurate (PCI element)", report.refined.transactions,
             report.refined.delta_cycles,
             f"{report.refined.wall_seconds:.4f}"],
        ],
    )
    print_table(
        "FIG3: summary",
        ["metric", "value"],
        [
            ["observable traces identical", report.consistent],
            ["delta-cycle ratio (pin / tlm)", f"{report.delta_ratio:.1f}x"],
            ["wall-clock ratio (pin / tlm)", f"{report.speedup:.1f}x"],
        ],
    )
