"""Record the swap matrix's per-bus communication metrics over time.

Runs the telemetry-enabled seed-55 swap matrix (the paper's EXP-SWAP
configuration) and distills every bus family's synthesized-level
scorecard — utilization, throughput in beats per cycle, latency
p50/p95/p99 and campaign wall time — into one history entry.
``--record`` appends it to ``BENCH_matrix.json`` at the repo root so
the communication-performance trajectory of the four interface-element
families is tracked release over release, exactly like
``BENCH_compile.json`` tracks the compiled backend.

Usage::

    python benchmarks/bench_matrix_history.py             # print metrics
    python benchmarks/bench_matrix_history.py --record    # append BENCH
    python benchmarks/bench_matrix_history.py --commands 8 --buses pci tlmgp
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.iface.matrix import DEFAULT_BUSES, run_swap_matrix  # noqa: E402

BENCH_PATH = os.path.join(_ROOT, "BENCH_matrix.json")
SEED = 55
N_COMMANDS = 25
_FS_PER_NS = 1_000_000


def measure(n_commands: int, buses) -> dict:
    started = time.perf_counter()
    report = run_swap_matrix(
        seed=SEED, n_commands=n_commands, buses=tuple(buses),
        telemetry=True,
    )
    wall = time.perf_counter() - started
    card = report.scorecard()
    per_bus = {}
    for bus in buses:
        score = card.cell(bus, "synthesized") if card else None
        if score is None:
            continue
        per_bus[bus] = {
            "transactions": score.transactions,
            "utilization": round(score.utilization, 4),
            "throughput_beats_per_cycle": round(score.throughput, 4),
            "latency_p50_ns": score.latency.p50 // _FS_PER_NS,
            "latency_p95_ns": score.latency.p95 // _FS_PER_NS,
            "latency_p99_ns": score.latency.p99 // _FS_PER_NS,
            "fairness": (
                None if score.fairness is None
                else round(score.fairness, 4)
            ),
        }
    return {
        "seed": SEED,
        "n_commands": n_commands,
        "all_consistent": report.all_consistent,
        "wall_seconds": round(wall, 3),
        "per_bus": per_bus,
        "scorecard": None if card is None else card.render(),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--commands", type=int, default=N_COMMANDS,
                        help=f"workload length (default {N_COMMANDS})")
    parser.add_argument("--buses", nargs="+", default=list(DEFAULT_BUSES),
                        help="bus families to sweep "
                             f"(default {' '.join(DEFAULT_BUSES)})")
    parser.add_argument("--record", action="store_true",
                        help=f"append this run to {BENCH_PATH}")
    args = parser.parse_args(argv)

    result = measure(args.commands, args.buses)
    print(result.pop("scorecard") or "(no scored cells)")
    print()
    for bus, metrics in result["per_bus"].items():
        print(f"{bus:10s} util {metrics['utilization']:6.1%}  "
              f"{metrics['throughput_beats_per_cycle']:.3f} beats/cyc  "
              f"p50/p95/p99 {metrics['latency_p50_ns']}/"
              f"{metrics['latency_p95_ns']}/"
              f"{metrics['latency_p99_ns']} ns")
    print(f"\nmatrix wall: {result['wall_seconds']:.2f}s  "
          f"consistent: {result['all_consistent']}")

    if not result["all_consistent"]:
        print("FAIL: matrix has inconsistent cells; not recording",
              file=sys.stderr)
        return 1

    if args.record:
        history = []
        if os.path.exists(BENCH_PATH):
            with open(BENCH_PATH) as handle:
                history = json.load(handle)
        history.append({
            "date": time.strftime("%Y-%m-%d"),
            **result,
        })
        with open(BENCH_PATH, "w") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
        print(f"recorded to {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
