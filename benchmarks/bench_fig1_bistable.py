"""FIG1 — the shared-bistable global object of the paper's Figure 1.

Regenerates the figure's scenario (three connected instances, one shared
state space) and measures the cost of guarded-method communication in
the behavioural model: calls per second through a connected global
object under the kernel.
"""

from _tables import print_table

from repro.hdl import Module
from repro.kernel import MS, Simulator
from repro.osss import GlobalObject, connect, guarded_method


class Bistable:
    def __init__(self):
        self.state = False

    @guarded_method()
    def set(self):
        self.state = True

    @guarded_method()
    def clear(self):
        self.state = False

    @guarded_method()
    def get_state(self):
        return self.state


def _run_figure1(n_roundtrips):
    sim = Simulator()
    m1, m2 = Module(sim, "m1"), Module(sim, "m2")
    b1 = GlobalObject(m1, "bistable", Bistable)
    b2 = GlobalObject(m2, "bistable", Bistable)
    b_top = GlobalObject(m1, "top_bistable", Bistable)
    connect(b1, b2, b_top)
    observed = []

    def setter():
        for __ in range(n_roundtrips):
            yield from b1.set()
            yield from b1.clear()

    def getter():
        for __ in range(n_roundtrips):
            observed.append((yield from b2.get_state()))

    sim.spawn(setter, "setter")
    sim.spawn(getter, "getter")
    sim.run(10 * MS)
    return sim, b1, observed


def test_fig1_semantics_and_throughput(benchmark):
    sim, handle, observed = benchmark(_run_figure1, 200)
    stats = handle.stats
    assert stats.total_completed == 3 * 200
    print_table(
        "FIG1: shared bistable (3 connected instances, 1 state space)",
        ["metric", "value"],
        [
            ["connected instances", 3],
            ["guarded-method calls completed", stats.total_completed],
            ["grants by client", dict(stats.grants_by_client)],
            ["state change visible across modules", True in observed],
            ["delta cycles used", sim.delta_count],
        ],
    )


def test_fig1_call_latency_uncontended(benchmark):
    """Single-caller latency: behavioural calls are delta-level."""

    def run():
        sim = Simulator()
        m1 = Module(sim, "m1")
        handle = GlobalObject(m1, "bistable", Bistable)
        done = []

        def caller():
            for __ in range(500):
                yield from handle.set()
            done.append(sim.time)

        sim.spawn(caller, "c")
        sim.run(10 * MS)
        return done[0]

    final_time = benchmark(run)
    # Behavioural (untimed) model: all calls complete in zero sim time.
    assert final_time == 0
