"""FIG4 — simulation waveforms of the synthesized PCI bus handler.

Re-simulates the post-synthesis model with full tracing and prints the
bus waveforms of the first transactions — the textual equivalent of the
paper's Figure 4 screenshot — plus a ``fig4.vcd`` file for GTKWave.
"""

import os

from _tables import print_table

from repro.core import CommandType
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.kernel import MS, NS
from repro.trace import VcdTracer, WaveformCapture, render

COMMANDS = [
    CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
    CommandType.read(0x100, count=3),
]


def _traced_run(vcd_path=None):
    bundle = build_pci_platform(
        [COMMANDS], PciPlatformConfig(wait_states=1), synthesize=True
    )
    sim = bundle.handle.sim
    capture = WaveformCapture()
    watched = [bundle.clock.clk] + bundle.bus.shared_signals()
    capture.add_signals(watched)
    sim.add_tracer(capture)
    vcd = None
    if vcd_path:
        vcd = VcdTracer(vcd_path)
        vcd.add_signals(watched)
        sim.add_tracer(vcd)
    result = bundle.run(10 * MS)
    if vcd:
        vcd.close(sim.time)
    return bundle, capture, watched, result


def test_fig4_waveform_generation(benchmark):
    vcd_path = os.path.join(os.path.dirname(__file__), "fig4.vcd")
    bundle, capture, watched, result = benchmark.pedantic(
        _traced_run, args=(vcd_path,), rounds=1, iterations=1
    )
    app = bundle.handle.applications[0]
    assert app.records[1].response.data == [0xDEADBEEF, 0x12345678, 0xCAFEF00D]
    assert bundle.monitor.parity_errors == 0
    assert not bundle.monitor.violations

    print("\n== FIG4: post-synthesis PCI handler waveforms "
          "(# high, _ low, ~ tri-state; 15 ns/column) ==")
    labels = {s.name: s.name.rsplit(".", 1)[-1] for s in watched}
    print(render(capture, [s.name for s in watched], 0, 2400 * NS, 15 * NS,
                 labels=labels, time_unit=30 * NS))

    print_table(
        "FIG4: transactions observed on the bus",
        ["command", "address", "words", "termination", "duration (ns)"],
        [
            [t.command_name, f"{t.address:#010x}", t.word_count,
             t.terminated_by, (t.duration or 0) // NS]
            for t in bundle.monitor.completed_transactions
        ],
    )
    print(f"\nVCD written to {vcd_path}")


def test_fig4_tracing_overhead(benchmark):
    """Cost of full-bus tracing relative to the untraced simulation."""

    def untraced():
        bundle = build_pci_platform(
            [COMMANDS], PciPlatformConfig(wait_states=1), synthesize=True
        )
        return bundle.run(10 * MS)

    result = benchmark(untraced)
    assert result.transactions == 2
