"""EXP-TIME — temporal cost of synthesized guarded-method calls.

The paper's stated future work: *"the evaluation of the temporal cost of
the method calls: these are implemented with synchronous logic, and the
completion of a transaction require an amount of time that depends on
different factors (among which the number of concurrent processes
accessing the same resource)."*

This bench performs that evaluation: post-synthesis method-call latency
in clock cycles as a function of the number of concurrent client
processes, for each synthesizable arbitration policy.
"""

import pytest
from _tables import print_table

from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.osss import (
    FcfsArbiter,
    GlobalObject,
    RandomArbiter,
    RoundRobinArbiter,
    StaticPriorityArbiter,
    connect,
    guarded_method,
)
from repro.synthesis import SynthesisConfig, synthesize_communication

CLOCK_PERIOD = 10 * NS
CALLS_PER_CLIENT = 20


class Accumulator:
    def __init__(self):
        self.total = 0

    @guarded_method()
    def add(self, n):
        self.total += n
        return self.total


def _measure(n_clients, arbiter):
    sim = Simulator()
    clock = Clock(sim, "clock", period=CLOCK_PERIOD)
    handles = []
    for i in range(n_clients):
        module = Module(sim, f"client{i}")
        handles.append(
            GlobalObject(module, "acc", Accumulator,
                         arbiter=arbiter if i == 0 else None)
        )
    connect(*handles)
    result = synthesize_communication(
        sim, clock.clk, SynthesisConfig(emit_hdl=False)
    )
    channel = result.groups[0].channel

    finished = [0]

    def make_client(handle):
        def client():
            for __ in range(CALLS_PER_CLIENT):
                yield from handle.add(1)
            finished[0] += 1
            if finished[0] == n_clients:
                sim.stop()
        return client

    for i, handle in enumerate(handles):
        sim.spawn(make_client(handle), f"proc{i}")
    sim.run(100 * MS)
    assert channel.calls_serviced == n_clients * CALLS_PER_CLIENT
    mean_cycles = channel.mean_call_cycles(CLOCK_PERIOD)
    max_wait = max(r.wait_time for r in channel.call_log) // CLOCK_PERIOD
    return mean_cycles, max_wait


POLICIES = [
    ("fcfs", FcfsArbiter),
    ("round_robin", RoundRobinArbiter),
    ("static_priority", lambda: StaticPriorityArbiter({})),
    ("random", lambda: RandomArbiter(seed=4)),
]


@pytest.mark.parametrize("n_clients", [1, 2, 4, 8])
def test_exp_time_latency_vs_clients(benchmark, n_clients):
    mean_cycles, __ = benchmark.pedantic(
        _measure, args=(n_clients, FcfsArbiter()), rounds=1, iterations=1
    )
    # Uncontended calls take a handful of cycles; contention adds queueing.
    assert mean_cycles >= 3.0
    if n_clients >= 4:
        assert mean_cycles > 6.0


def test_exp_time_full_sweep(benchmark):
    def sweep():
        rows = []
        for policy_name, factory in POLICIES:
            for n_clients in (1, 2, 4, 8):
                mean_cycles, max_wait = _measure(n_clients, factory())
                rows.append([policy_name, n_clients,
                             f"{mean_cycles:.1f}", max_wait])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "EXP-TIME: post-synthesis method-call cost "
        f"({CALLS_PER_CLIENT} calls/client, clock {CLOCK_PERIOD // NS} ns)",
        ["arbiter", "clients", "mean cycles/call", "max wait (cycles)"],
        rows,
    )
    # The paper's expectation: cost grows with concurrent processes.
    by_policy = {}
    for row in rows:
        by_policy.setdefault(row[0], []).append(float(row[2]))
    for policy_name, series in by_policy.items():
        assert series[-1] > series[0], (
            f"{policy_name}: latency did not grow with contention: {series}"
        )
