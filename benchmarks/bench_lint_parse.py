"""Micro-benchmark: the lint engine parses each source body once.

The GRD/RES rules all reason over the same guarded-method ASTs. Before
the context cache they each rebuilt the group views (re-walking the
module AST per guard, per rule); now the views are shared through
:meth:`DesignContext.cached` and :func:`astutils.callable_ast` memoizes
per code object, so the whole design-rule pass performs exactly one
whole-module AST walk per distinct function — and a second pass over
the same design performs none.

This script asserts both properties via the :data:`astutils.parse_stats`
counters and reports cold/warm wall time. It needs no baseline file:
the invariants are host-independent.

Usage::

    python benchmarks/bench_lint_parse.py
"""

from __future__ import annotations

import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.core import generate_workload  # noqa: E402
from repro.flow import build_pci_platform  # noqa: E402
from repro.lint import astutils  # noqa: E402
from repro.lint.context import DesignContext  # noqa: E402
from repro.lint.engine import DESIGN, LintEngine  # noqa: E402
import repro.lint.runner  # noqa: E402,F401  (rule registration)


def _build_sim():
    workloads = [generate_workload(seed=11, n_commands=20,
                                   address_span=0x400, max_burst=4)]
    return build_pci_platform(workloads).handle.sim


def main() -> int:
    sim = _build_sim()
    engine = LintEngine()

    # Cold pass: every distinct function body is resolved exactly once,
    # shared across GRD001-4, RES001 and RACE001.
    before = astutils.parse_counters()
    context = DesignContext(sim)
    started = time.perf_counter()
    engine.run(context, DESIGN, "cold")
    cold_seconds = time.perf_counter() - started
    after_cold = astutils.parse_counters()
    cold_walks = after_cold["ast_walks"] - before["ast_walks"]
    cold_parses = after_cold["module_parses"] - before["module_parses"]

    # Same context, second engine pass: the rules must find everything
    # (group views, call sites, guard ASTs) already computed.
    engine.run(context, DESIGN, "warm-context")
    after_same = astutils.parse_counters()
    same_walks = after_same["ast_walks"] - after_cold["ast_walks"]

    # Fresh context over the same design: the per-code-object memo makes
    # the AST side free; only the live-object scan repeats.
    fresh = DesignContext(sim)
    started = time.perf_counter()
    engine.run(fresh, DESIGN, "warm-fresh")
    warm_seconds = time.perf_counter() - started
    after_fresh = astutils.parse_counters()
    fresh_walks = after_fresh["ast_walks"] - after_same["ast_walks"]
    fresh_parses = after_fresh["module_parses"] - after_same["module_parses"]

    print(f"cold pass:  {cold_seconds * 1e3:7.2f} ms, "
          f"{cold_parses} file parse(s), {cold_walks} AST walk(s)")
    print(f"warm pass:  {warm_seconds * 1e3:7.2f} ms, "
          f"{fresh_parses} file parse(s), {fresh_walks} AST walk(s), "
          f"{after_fresh['cache_hits'] - after_same['cache_hits']} "
          f"memo hit(s)")

    failures = []
    if cold_walks == 0:
        failures.append("cold pass resolved no function bodies "
                        "(nothing was analyzed?)")
    if same_walks != 0:
        failures.append(f"re-running rules on one context re-walked "
                        f"{same_walks} bodies (context cache broken)")
    if fresh_walks != 0:
        failures.append(f"a fresh context re-walked {fresh_walks} bodies "
                        "(callable_ast memo broken)")
    if fresh_parses != 0:
        failures.append(f"a fresh context re-parsed {fresh_parses} files "
                        "(module AST cache broken)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: one AST walk per function body, zero on re-run")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
