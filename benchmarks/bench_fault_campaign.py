"""FLT-RUN — fault-campaign throughput, serial vs parallel.

A campaign is embarrassingly parallel: every run rebuilds its platform
from scratch and shares nothing but the (read-only) spec and golden
reference. This bench measures how many faulty runs per second the
campaign engine sustains with the in-process serial loop and with the
``ProcessPoolExecutor`` runner, and checks the two produce identical
classifications.

On a single-core container the pool cannot win wall-clock — process
setup and result pickling are pure overhead — so the speedup assertion
only applies when more than one CPU is available; on one CPU we only
require the pool not to collapse (>= 0.3x serial throughput).
"""

import os

from _tables import print_table

from repro.fault import (
    classify_counts,
    demo_campaign_spec,
    run_campaign,
)

RUNS = 24
SEED = 7


def _campaign(workers):
    spec = demo_campaign_spec("pci", seed=SEED, runs=RUNS)
    return run_campaign(spec, workers=workers, max_runs=RUNS)


def _fingerprint(result):
    """Everything about the outcomes except wall-clock timing."""
    return [
        (o.run_id, o.kind, o.target_path, o.window, o.classification, o.detail)
        for o in result.outcomes
    ]


def test_flt_run_throughput(benchmark):
    parallel_workers = 2
    serial = _campaign(workers=1)
    parallel = benchmark.pedantic(
        _campaign, args=(parallel_workers,), rounds=1, iterations=1
    )

    assert len(serial.outcomes) == RUNS
    assert _fingerprint(serial) == _fingerprint(parallel)

    rows = []
    for label, result in (("serial", serial), ("parallel", parallel)):
        counts = classify_counts(result.outcomes)
        rows.append([
            label,
            result.workers,
            len(result.outcomes),
            f"{result.wall_seconds:.2f}s",
            f"{result.runs_per_second:.1f}",
            counts["detected"],
            counts["silent"],
            counts["benign"],
        ])
    print_table(
        f"FLT-RUN: campaign throughput ({RUNS} runs, "
        f"{os.cpu_count()} cpu(s))",
        ["mode", "workers", "runs", "wall", "runs/s",
         "detected", "silent", "benign"],
        rows,
    )

    ratio = parallel.runs_per_second / serial.runs_per_second
    if (os.cpu_count() or 1) > 1:
        assert ratio > 1.0, (
            f"parallel runner slower than serial on a multi-core host "
            f"({ratio:.2f}x)"
        )
    else:
        assert ratio > 0.3, (
            f"parallel runner collapsed on a single core ({ratio:.2f}x)"
        )
