"""CI guard: the recovery stack must cost nothing when it is off.

Runs the synthesized PCI platform over a generated workload twice —
once with no resilience configuration (the shipping default: no retry
policies, no protocol replay, parity checking off) and once with the
full stack armed (:class:`~repro.resilience.ResilienceConfig.default`)
— and compares the *off* path against the checked-in baseline
``benchmarks/resilience_overhead_baseline.json``.

The gated metric is not wall-clock time (which swings far more than 2%
on a loaded host) but the number of Python- and C-level function calls
executed during the simulation, counted with :func:`sys.setprofile`.
The simulation is deterministic, so the count is exact run-to-run: the
comparison never flakes, and any real work added to the recovery-off
hot path — an extra method call, a policy lookup, a probe hook — moves
it immediately.  Wall-clock numbers are still printed for context.

The off-path tolerance is tight (2%) on purpose: with no
``ResilienceConfig`` the only code recovery adds to the hot path is the
``self.recovery is None`` fast-path branch in the dispatchers and the
empty ``retry_policies`` dict lookup guard in ``GlobalObject.call``,
and this bench exists to keep it that way.

Usage::

    python benchmarks/bench_resilience_overhead.py            # compare (CI)
    python benchmarks/bench_resilience_overhead.py --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.core import generate_workload  # noqa: E402
from repro.flow import PciPlatformConfig, build_pci_platform  # noqa: E402
from repro.kernel import MS  # noqa: E402
from repro.resilience import ResilienceConfig  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "resilience_overhead_baseline.json")
SEED = 55
N_COMMANDS = 60


def _workload():
    return generate_workload(
        seed=SEED, n_commands=N_COMMANDS, address_span=0x400,
        max_burst=4, partial_byte_enable_fraction=0.2,
    )


def _platform_run(armed: bool) -> "tuple[int, float]":
    """One synthesized-PCI run; returns (function calls, wall seconds)."""
    config = PciPlatformConfig(
        resilience=ResilienceConfig.default(SEED) if armed else None,
    )
    bundle = build_pci_platform([_workload()], config, synthesize=True)

    calls = 0

    def _profiler(frame, event, arg):
        nonlocal calls
        if event == "call" or event == "c_call":
            calls += 1

    started = time.perf_counter()
    sys.setprofile(_profiler)
    try:
        bundle.run(200 * MS)
    finally:
        sys.setprofile(None)
    elapsed = time.perf_counter() - started

    if armed:
        # A clean run must never replay; arming just adds bookkeeping.
        assert bundle.interface.operations_replayed == 0
    else:
        assert bundle.interface.recovery is None
    for app in bundle.handle.applications:
        assert app.finished
    return calls, elapsed


def measure() -> dict:
    off_calls, off_seconds = _platform_run(False)
    on_calls, on_seconds = _platform_run(True)
    return {
        "workload": {
            "seed": SEED,
            "n_commands": N_COMMANDS,
        },
        "off_calls": off_calls,
        "on_calls": on_calls,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed recovery-off call-count growth vs "
                             "baseline (default 0.02 = 2%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    result = measure()
    ratio = result["on_calls"] / result["off_calls"]
    print(f"synthesized PCI workload ({N_COMMANDS} commands):")
    print(f"  recovery off: {result['off_calls']:9d} calls "
          f"({result['off_seconds'] * 1e3:7.2f} ms)")
    print(f"  recovery on:  {result['on_calls']:9d} calls "
          f"({result['on_seconds'] * 1e3:7.2f} ms, {ratio:.3f}x off)")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    reference = baseline["off_calls"]
    limit = int(reference * (1.0 + args.tolerance))
    print(f"  baseline off: {reference:9d} calls, "
          f"limit {limit} (+{args.tolerance:.0%})")
    if result["off_calls"] > limit:
        print("FAIL: recovery-off hot path regressed "
              f"({result['off_calls']} > {limit} calls)",
              file=sys.stderr)
        return 1
    print("OK: recovery-off cost within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
