"""CI guard: durability must cost nothing when it is off.

Runs the same small fault campaign twice — once with no journal, cache
or resume (the shipping hot path) and once with a journal *and* a cold
result cache active — and compares the *off* path against the
checked-in calibrated baseline
``benchmarks/durable_overhead_baseline.json``.

As in ``bench_telemetry_overhead``, wall-clock time is normalized by a
pure-Python calibration loop timed on the same host, so the stored
"campaign costs K calibration units" number is comparable across runs.
The off-path tolerance is deliberately tight (2%): with every durable
argument at None, ``run_campaign`` must not even import the durable
module, and this bench exists to keep it that way.

Usage::

    python benchmarks/bench_durable_overhead.py            # compare (CI)
    python benchmarks/bench_durable_overhead.py --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.fault import demo_campaign_spec, run_campaign  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "durable_overhead_baseline.json")
SEED = 55
RUNS = 12
REPEATS = 7
CALIBRATION_LOOPS = 200_000


def _spec():
    return demo_campaign_spec(platform="pci", seed=SEED, runs=RUNS)


def _campaign_run(durable: bool) -> float:
    """One serial campaign; returns wall seconds."""
    scratch = tempfile.mkdtemp(prefix="bench_durable_") if durable else None
    try:
        started = time.perf_counter()
        result = run_campaign(
            _spec(),
            workers=1,
            max_runs=RUNS,
            journal_dir=os.path.join(scratch, "journal") if durable else None,
            cache_dir=os.path.join(scratch, "cache") if durable else None,
        )
        elapsed = time.perf_counter() - started
        assert len(result.outcomes) == RUNS, (
            f"expected {RUNS} outcomes, got {len(result.outcomes)}"
        )
        return elapsed
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def _calibrate() -> float:
    acc = 0
    started = time.perf_counter()
    for i in range(CALIBRATION_LOOPS):
        acc += i % 7
    elapsed = time.perf_counter() - started
    assert acc > 0
    return elapsed


def measure() -> dict:
    calibration = min(_calibrate() for __ in range(REPEATS))
    off = min(_campaign_run(False) for __ in range(REPEATS))
    on = min(_campaign_run(True) for __ in range(REPEATS))
    return {
        "workload": {
            "seed": SEED,
            "runs": RUNS,
            "calibration_loops": CALIBRATION_LOOPS,
        },
        "calibration_seconds": calibration,
        "off_seconds": off,
        "on_seconds": on,
        "normalized_off": off / calibration,
        "normalized_on": on / calibration,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed durability-off slowdown vs baseline "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    result = measure()
    ratio = result["normalized_on"] / result["normalized_off"]
    print(f"demo campaign ({RUNS} runs, best of {REPEATS}):")
    print(f"  durability off: {result['off_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_off']:.2f} calibration units)")
    print(f"  journal+cache:  {result['on_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_on']:.2f} calibration units, "
          f"{ratio:.2f}x off)")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    reference = baseline["normalized_off"]
    limit = reference * (1.0 + args.tolerance)
    print(f"  baseline off: {reference:.2f} units, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    if result["normalized_off"] > limit:
        print("FAIL: durability-off hot path regressed "
              f"({result['normalized_off']:.2f} > {limit:.2f})",
              file=sys.stderr)
        return 1
    print("OK: durability-off cost within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
