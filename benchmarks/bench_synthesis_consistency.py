"""EXP-SYN — the paper's Section 3 validation, steps 1-3.

1. compile & simulate the executable specification;
2. run the synthesizer to get the RT-level communication;
3. re-simulate and check behaviour consistency with the original model
   over the adopted test set.

The bench times each step and prints the consistency verdict — the
paper reports "step 3 showed no problems".
"""

from _tables import print_table

from repro.core import generate_workload
from repro.flow import build_pci_platform
from repro.kernel import MS, NS
from repro.synthesis import SynthesisConfig
from repro.verify import check_bus_transactions, check_traces

WORKLOAD = generate_workload(seed=55, n_commands=25, address_span=0x400,
                             max_burst=4, partial_byte_enable_fraction=0.2)


def _pre_synthesis():
    bundle = build_pci_platform([WORKLOAD])
    return bundle, bundle.run(100 * MS)


def _post_synthesis():
    bundle = build_pci_platform([WORKLOAD], synthesize=True)
    return bundle, bundle.run(200 * MS)


def test_exp_syn_step1_simulate_specification(benchmark):
    __, result = benchmark.pedantic(_pre_synthesis, rounds=3, iterations=1)
    assert result.transactions == 25


def test_exp_syn_step2_synthesize(benchmark):
    """Synthesis tool runtime (netlist generation + HDL emission)."""

    def run():
        from repro.flow import build_pci_platform as build

        return build([WORKLOAD], synthesize=True,
                     synthesis_config=SynthesisConfig())

    bundle = benchmark(run)
    assert bundle.synthesis is not None


def test_exp_syn_step3_consistency(benchmark):
    bundle_pre, result_pre = _pre_synthesis()
    bundle_post, result_post = benchmark.pedantic(
        _post_synthesis, rounds=1, iterations=1
    )
    app_report = check_traces(result_pre.traces, result_post.traces)
    app_report.require_consistent()
    bus_report = check_bus_transactions(
        bundle_pre.monitor.signatures(), bundle_post.monitor.signatures()
    )
    bus_report.require_consistent()

    channel = bundle_post.synthesis.groups[0].channel
    print_table(
        "EXP-SYN: pre- vs post-synthesis validation (paper: 'no problems')",
        ["metric", "pre-synthesis", "post-synthesis"],
        [
            ["application transactions", result_pre.transactions,
             result_post.transactions],
            ["bus transactions", len(bundle_pre.monitor.signatures()),
             len(bundle_post.monitor.signatures())],
            ["simulated end time (ns)", result_pre.sim_time // NS,
             result_post.sim_time // NS],
            ["delta cycles", result_pre.delta_cycles,
             result_post.delta_cycles],
            ["monitor violations", len(bundle_pre.monitor.violations),
             len(bundle_post.monitor.violations)],
        ],
    )
    print_table(
        "EXP-SYN: verdicts",
        ["check", "result"],
        [
            ["application traces identical", app_report.consistent],
            ["bus transaction streams identical", bus_report.consistent],
            ["channel calls serviced (RT level)", channel.calls_serviced],
            ["mean method-call cost (clock cycles)",
             f"{channel.mean_call_cycles(30 * NS):.1f}"],
        ],
    )
    print()
    print(bundle_post.synthesis.report.render())
