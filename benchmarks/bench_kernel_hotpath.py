"""KER-HOT — kernel hot-path scaling and probe-bus overhead.

Two questions about the evaluate/update core:

1. Does delta-event scheduling scale linearly in the number of pending
   delta notifications?  The scheduler used to guard against duplicate
   delta entries with an ``in`` scan over the pending list, which made a
   round of *n* notifications cost O(n^2); the per-event
   ``_delta_pending`` flag restores O(n).
2. What does the probe bus cost when nothing subscribes?  The hot paths
   (signal commit, process switch, delta begin/end) check a single
   attribute against ``None`` — the off-path must stay within noise of
   a kernel that never heard of probes.
"""

import time

import pytest
from _tables import print_table

from repro.instrument import MetricsCollector
from repro.kernel import Simulator, Timeout

ROUNDS = 50


def _delta_storm(n_events, rounds=ROUNDS):
    """Run ``rounds`` rounds of ``n_events`` same-delta notifications."""
    sim = Simulator()
    events = [sim.event(f"e{i}") for i in range(n_events)]
    for event in events:
        event.add_callback(lambda: None)

    def driver():
        for __ in range(rounds):
            for event in events:
                event.notify_delta()
            yield Timeout(1000)

    sim.spawn(driver, "driver")
    started = time.perf_counter()
    sim.run(rounds * 1200)
    return time.perf_counter() - started


@pytest.mark.parametrize("n_events", [100, 400, 800])
def test_ker_hot_delta_scan_scales_linearly(benchmark, n_events):
    elapsed = benchmark.pedantic(
        _delta_storm, args=(n_events,), rounds=1, iterations=1
    )
    assert elapsed < 5.0


def test_ker_hot_delta_scan_table():
    rows = []
    base = None
    for n_events in (100, 200, 400, 800):
        elapsed = min(_delta_storm(n_events) for __ in range(3))
        if base is None:
            base = elapsed
        rows.append([n_events, f"{elapsed * 1e3:.1f}",
                     f"{elapsed / base:.1f}x"])
    print_table(
        "KER-HOT delta-event scheduling (50 rounds)",
        ["pending events", "best-of-3 (ms)", "vs 100"],
        rows,
    )
    # O(n): 8x the events must not cost more than ~20x the time (O(n^2)
    # costed ~45x here before the _delta_pending flag).
    assert rows[-1][0] / rows[0][0] == 8
    scale = float(rows[-1][2][:-1])
    assert scale < 20.0


def _counter_workload(instrumented):
    sim = Simulator()
    if instrumented:
        MetricsCollector().attach(sim.probes)
    state = {"count": 0}
    event = sim.event("tick")

    def producer():
        for __ in range(2000):
            event.notify_delta()
            yield Timeout(10)

    def consumer():
        while True:
            yield event
            state["count"] += 1

    sim.spawn(producer, "producer")
    sim.spawn(consumer, "consumer")
    started = time.perf_counter()
    sim.run(2000 * 12)
    elapsed = time.perf_counter() - started
    assert state["count"] == 2000
    return elapsed


def test_ker_hot_probe_bus_off_vs_on():
    off = min(_counter_workload(False) for __ in range(3))
    on = min(_counter_workload(True) for __ in range(3))
    print_table(
        "KER-HOT probe bus overhead (2000 event round-trips)",
        ["instrumentation", "best-of-3 (ms)"],
        [["off (null bus)", f"{off * 1e3:.2f}"],
         ["on (MetricsCollector)", f"{on * 1e3:.2f}"]],
    )
    # The subscribed path legitimately pays for its callbacks; the off
    # path must stay cheap in absolute terms.
    assert off < 1.0
