"""CI gate: the compiled backend's speedup over the interpreted one.

Three measurements, from the layer where the codegen acts outward:

* **netlist level** — per-evaluation cost of the generated code
  (``CompiledNetlist.comb`` / ``.cycle``) against the interpreted
  :meth:`EvalSchedule.evaluate` on the synthesized PCI channel netlist,
  over identical seeded random vectors. This is where the 10×+ target
  of ROADMAP open item #1 lives and where the CI floor is enforced.
* **platform level** — the ``bench_pci_throughput`` burst=16 workload
  end to end under both backends. Recorded honestly: the run is
  dominated by the pin-level bus protocol (unchanged by this backend),
  so the end-to-end ratio hovers near 1×.
* **campaign level** — serial fault-campaign runs/s under both
  backends on the demo PCI campaign, same caveat.

The floor lives in ``benchmarks/compile_baseline.json``; speedups are
dimensionless ratios of two measurements on the same host, so no
calibration loop is needed. ``--record`` appends the measurements to
``BENCH_compile.json`` at the repo root so the perf trajectory
accumulates across PRs.

Usage::

    python benchmarks/bench_compile_speedup.py             # compare (CI)
    python benchmarks/bench_compile_speedup.py --update    # rebaseline
    python benchmarks/bench_compile_speedup.py --record    # append BENCH
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.analyze import levelize  # noqa: E402
from repro.compile import compile_module  # noqa: E402
from repro.core import CommandType  # noqa: E402
from repro.core.workload import _Lcg  # noqa: E402
from repro.fault.runner import run_campaign  # noqa: E402
from repro.fault.spec import demo_campaign_spec  # noqa: E402
from repro.flow import PciPlatformConfig, build_pci_platform  # noqa: E402
from repro.kernel import MS, NS  # noqa: E402
from repro.synthesis.tool import set_synthesis_sink  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "compile_baseline.json")
BENCH_PATH = os.path.join(_ROOT, "BENCH_compile.json")
REPEATS = 5
VECTORS = 2000
CLOCK_PERIOD = 30 * NS
BURST = 16
TOTAL_WORDS = 32

COMMANDS = [
    CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
    CommandType.read(0x100, count=3),
]


def _channel_ir():
    """The synthesized PCI channel netlist of the Figure-4 platform."""
    captured = []
    previous = set_synthesis_sink(
        lambda sim, result: captured.append(result)
    )
    try:
        build_pci_platform(
            [COMMANDS], PciPlatformConfig(wait_states=1), synthesize=True
        )
    finally:
        set_synthesis_sink(previous)
    (result,) = captured
    return result.groups[0].channel_ir


def _vectors(schedule, count):
    boundary = sorted(schedule.boundary_nets(), key=lambda net: net.name)
    rng = _Lcg(0xBE1C)
    return [
        {net.name: rng.next_int(1 << min(net.width, 30))
         for net in boundary}
        for __ in range(count)
    ]


def measure_netlist() -> dict:
    """Per-evaluation cost: interpreted schedule vs generated code."""
    module = _channel_ir()
    schedule = levelize(module).schedule
    netlist = compile_module(module)
    vectors = _vectors(schedule, VECTORS)
    for env in vectors[:32]:  # sanity before timing
        assert netlist.comb(env) == schedule.evaluate(env)

    def best(fn):
        times = []
        for __ in range(REPEATS):
            started = time.perf_counter()
            for env in vectors:
                fn(env)
            times.append(time.perf_counter() - started)
        return min(times) / len(vectors)

    interpreted = best(schedule.evaluate)
    compiled_comb = best(netlist.comb)
    regs = netlist.reset_registers()
    outs = {}
    ins = {name: 0 for name in netlist.input_names}
    started = time.perf_counter()
    for __ in range(VECTORS):
        netlist.cycle(regs, ins, outs)
    compiled_cycle = (time.perf_counter() - started) / VECTORS
    return {
        "comb_steps": netlist.stats["comb_steps"],
        "interpreted_us_per_eval": interpreted * 1e6,
        "compiled_comb_us_per_eval": compiled_comb * 1e6,
        "compiled_cycle_us_per_edge": compiled_cycle * 1e6,
        "comb_speedup": interpreted / compiled_comb,
        "cycle_speedup": interpreted / compiled_cycle,
    }


def measure_platform() -> dict:
    """End-to-end burst=16 throughput run, both backends."""
    commands = [
        CommandType.write(0x100 + 4 * BURST * i, list(range(1, BURST + 1)))
        for i in range(TOTAL_WORDS // BURST)
    ]

    def run_once(backend):
        config = PciPlatformConfig(
            clock_period=CLOCK_PERIOD, backend=backend
        )
        bundle = build_pci_platform([commands], config, synthesize=True)
        started = time.perf_counter()
        bundle.run(100 * MS)
        return time.perf_counter() - started

    interpreted = min(run_once("interpreted") for __ in range(REPEATS))
    compiled = min(run_once("compiled") for __ in range(REPEATS))
    return {
        "interpreted_seconds": interpreted,
        "compiled_seconds": compiled,
        "speedup": interpreted / compiled,
    }


def measure_campaign() -> dict:
    """Serial demo-campaign runs/s, both backends."""

    def runs_per_second(backend):
        spec = demo_campaign_spec(platform="pci", seed=11, runs=6)
        spec.synthesize = True
        spec.backend = backend
        started = time.perf_counter()
        result = run_campaign(spec, workers=1, max_runs=6)
        elapsed = time.perf_counter() - started
        return len(result.outcomes) / elapsed

    interpreted = max(runs_per_second("interpreted") for __ in range(2))
    compiled = max(runs_per_second("compiled") for __ in range(2))
    return {
        "interpreted_runs_per_s": interpreted,
        "compiled_runs_per_s": compiled,
        "speedup": compiled / interpreted,
    }


def measure() -> dict:
    return {
        "netlist": measure_netlist(),
        "platform_burst16": measure_platform(),
        "campaign_serial": measure_campaign(),
    }


def _render(result: dict) -> str:
    netlist = result["netlist"]
    platform = result["platform_burst16"]
    campaign = result["campaign_serial"]
    return "\n".join([
        f"netlist ({netlist['comb_steps']} comb steps, best of {REPEATS}):",
        f"  interpreted evaluate: "
        f"{netlist['interpreted_us_per_eval']:8.2f} us/eval",
        f"  compiled comb:        "
        f"{netlist['compiled_comb_us_per_eval']:8.2f} us/eval "
        f"({netlist['comb_speedup']:.1f}x)",
        f"  compiled cycle:       "
        f"{netlist['compiled_cycle_us_per_edge']:8.2f} us/edge "
        f"({netlist['cycle_speedup']:.1f}x)",
        f"platform burst=16 end to end (bus-dominated, both backends "
        "run the same pin-level protocol):",
        f"  interpreted {platform['interpreted_seconds'] * 1e3:7.1f} ms   "
        f"compiled {platform['compiled_seconds'] * 1e3:7.1f} ms   "
        f"({platform['speedup']:.2f}x)",
        "fault campaign, serial (same caveat):",
        f"  interpreted {campaign['interpreted_runs_per_s']:6.1f} runs/s  "
        f"compiled {campaign['compiled_runs_per_s']:6.1f} runs/s  "
        f"({campaign['speedup']:.2f}x)",
    ])


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--record", action="store_true",
                        help=f"append this run to {BENCH_PATH}")
    args = parser.parse_args(argv)

    result = measure()
    print(_render(result))

    if args.record:
        history = []
        if os.path.exists(BENCH_PATH):
            with open(BENCH_PATH) as handle:
                history = json.load(handle)
        history.append({
            "date": time.strftime("%Y-%m-%d"),
            **result,
        })
        with open(BENCH_PATH, "w") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
        print(f"recorded to {BENCH_PATH}")

    if args.update:
        baseline = {
            "workload": {
                "comb_steps": result["netlist"]["comb_steps"],
                "vectors": VECTORS,
            },
            # The CI floor: the generated code must stay an order of
            # magnitude ahead of the interpreted schedule. Set below
            # the measured ratio to absorb shared-runner jitter, never
            # below the ROADMAP's 10x target.
            "min_comb_speedup": max(
                10.0, 0.6 * result["netlist"]["comb_speedup"]
            ),
            "min_cycle_speedup": max(
                10.0, 0.6 * result["netlist"]["cycle_speedup"]
            ),
            "measured": result["netlist"],
        }
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    floor_comb = baseline["min_comb_speedup"]
    floor_cycle = baseline["min_cycle_speedup"]
    print(f"  floors: comb {floor_comb:.1f}x, cycle {floor_cycle:.1f}x")
    failed = False
    if result["netlist"]["comb_speedup"] < floor_comb:
        print("FAIL: comb speedup below floor "
              f"({result['netlist']['comb_speedup']:.1f} < "
              f"{floor_comb:.1f})", file=sys.stderr)
        failed = True
    if result["netlist"]["cycle_speedup"] < floor_cycle:
        print("FAIL: cycle speedup below floor "
              f"({result['netlist']['cycle_speedup']:.1f} < "
              f"{floor_cycle:.1f})", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("OK: compiled backend holds the speedup floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
