"""CI smoke: guarded-method call cost with instrumentation off vs on.

Runs the ``bench_method_call_cost`` workload (concurrent clients calling
one guarded method through a synthesized channel) twice — once with the
null probe bus (the default) and once with a :class:`MetricsCollector`
attached — and compares the *off* path against the checked-in baseline
``benchmarks/instrument_baseline.json``.

Wall-clock numbers are useless across machines, so the workload time is
normalized by a pure-Python calibration loop timed on the same host: the
stored baseline is "workload costs K calibration units", which is stable
to within a few percent between runs and hosts of the same class.

Usage::

    python benchmarks/instrument_smoke.py            # compare (CI mode)
    python benchmarks/instrument_smoke.py --update   # rewrite baseline

Exit status 1 when the off-path normalized cost regresses past the
tolerance (default 10%).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.hdl import Clock, Module  # noqa: E402
from repro.instrument import (  # noqa: E402
    EVENT_NOTIFY,
    PROCESS_ACTIVATE,
    MetricsCollector,
)
from repro.kernel import MS, NS, Simulator  # noqa: E402
from repro.osss import GlobalObject, connect, guarded_method  # noqa: E402
from repro.synthesis import (  # noqa: E402
    SynthesisConfig,
    synthesize_communication,
)

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "instrument_baseline.json")
CLOCK_PERIOD = 10 * NS
N_CLIENTS = 6
CALLS_PER_CLIENT = 40
REPEATS = 5
CALIBRATION_LOOPS = 200_000


class Accumulator:
    def __init__(self):
        self.total = 0

    @guarded_method()
    def add(self, n):
        self.total += n
        return self.total


def _method_call_workload(instrumented: bool) -> float:
    """One bench_method_call_cost-shaped run; returns wall seconds."""
    sim = Simulator()
    causes = [0, 0]
    if instrumented:
        MetricsCollector().attach(sim.probes)
        # The causal-edge payloads ride the same probes: count them so
        # the smoke also covers the cause field end to end.
        sim.probes.subscribe(
            EVENT_NOTIFY,
            lambda t, e, cause=None: causes.__setitem__(
                0, causes[0] + (cause is not None)
            ),
        )
        sim.probes.subscribe(
            PROCESS_ACTIVATE,
            lambda t, p, cause=None: causes.__setitem__(
                1, causes[1] + (cause is not None)
            ),
        )
    clock = Clock(sim, "clock", period=CLOCK_PERIOD)
    handles = []
    for i in range(N_CLIENTS):
        module = Module(sim, f"client{i}")
        handles.append(GlobalObject(module, "acc", Accumulator))
    connect(*handles)
    synthesize_communication(sim, clock.clk, SynthesisConfig(emit_hdl=False))

    finished = [0]

    def make_client(handle):
        def client():
            for __ in range(CALLS_PER_CLIENT):
                yield from handle.add(1)
            finished[0] += 1
            if finished[0] == N_CLIENTS:
                sim.stop()
        return client

    for i, handle in enumerate(handles):
        sim.spawn(make_client(handle), f"proc{i}")
    started = time.perf_counter()
    sim.run(100 * MS)
    elapsed = time.perf_counter() - started
    assert finished[0] == N_CLIENTS
    if instrumented:
        assert causes[0] > 0, "no event.notify probe carried a cause"
        assert causes[1] > 0, "no process.activate probe carried a cause"
    return elapsed


def _calibrate() -> float:
    """Time a fixed pure-Python loop as the host-speed yardstick."""
    acc = 0
    started = time.perf_counter()
    for i in range(CALIBRATION_LOOPS):
        acc += i % 7
    elapsed = time.perf_counter() - started
    assert acc > 0
    return elapsed


def measure() -> dict:
    calibration = min(_calibrate() for __ in range(REPEATS))
    off = min(_method_call_workload(False) for __ in range(REPEATS))
    on = min(_method_call_workload(True) for __ in range(REPEATS))
    return {
        "workload": {
            "clients": N_CLIENTS,
            "calls_per_client": CALLS_PER_CLIENT,
            "calibration_loops": CALIBRATION_LOOPS,
        },
        "calibration_seconds": calibration,
        "off_seconds": off,
        "on_seconds": on,
        "normalized_off": off / calibration,
        "normalized_on": on / calibration,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed off-path slowdown vs baseline "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    result = measure()
    ratio = result["normalized_on"] / result["normalized_off"]
    print(f"method-call workload ({N_CLIENTS} clients x "
          f"{CALLS_PER_CLIENT} calls, best of {REPEATS}):")
    print(f"  instrumentation off: {result['off_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_off']:.2f} calibration units)")
    print(f"  instrumentation on:  {result['on_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_on']:.2f} calibration units, "
          f"{ratio:.2f}x off)")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    reference = baseline["normalized_off"]
    limit = reference * (1.0 + args.tolerance)
    print(f"  baseline off: {reference:.2f} units, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    if result["normalized_off"] > limit:
        print("FAIL: instrumentation-off hot path regressed "
              f"({result['normalized_off']:.2f} > {limit:.2f})",
              file=sys.stderr)
        return 1
    print("OK: off-path cost within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
