"""Benchmark configuration: in-tree import path."""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (os.path.join(_ROOT, "src"), os.path.join(_ROOT, "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)
