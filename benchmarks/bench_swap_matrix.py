"""CI smoke: swap-matrix runtime and consistency vs a calibrated budget.

Runs the full ``repro.iface.run_swap_matrix`` sweep (four bus families
x three abstraction levels, seed 55) once for correctness — every cell
must come back CONSISTENT with a full per-transaction signature match —
and times the sweep against the checked-in budget
``benchmarks/swap_matrix_baseline.json``.

Wall-clock numbers are useless across machines, so the sweep time is
normalized by a pure-Python calibration loop timed on the same host
(same scheme as ``bench_analyze_runtime.py``).

Usage::

    python benchmarks/bench_swap_matrix.py            # compare (CI)
    python benchmarks/bench_swap_matrix.py --update   # recalibrate

Exit status 1 when a cell is inconsistent or the normalized sweep cost
regresses past the tolerance (default 35%).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.iface import run_swap_matrix  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "swap_matrix_baseline.json")
REPEATS = 3
CALIBRATION_LOOPS = 200_000
SEED = 55
N_COMMANDS = 25


def _calibrate() -> float:
    """Time a fixed pure-Python loop as the host-speed yardstick."""
    acc = 0
    started = time.perf_counter()
    for i in range(CALIBRATION_LOOPS):
        acc += i % 7
    elapsed = time.perf_counter() - started
    assert acc > 0
    return elapsed


def _sweep_once() -> "tuple[float, object]":
    started = time.perf_counter()
    report = run_swap_matrix(seed=SEED, n_commands=N_COMMANDS)
    elapsed = time.perf_counter() - started
    return elapsed, report


def measure() -> "tuple[dict, object]":
    calibration = min(_calibrate() for __ in range(REPEATS))
    timings = []
    report = None
    for __ in range(REPEATS):
        elapsed, report = _sweep_once()
        timings.append(elapsed)
    sweep = min(timings)
    result = {
        "workload": {
            "seed": SEED,
            "n_commands": N_COMMANDS,
            "cells": len(report.cells),
            "calibration_loops": CALIBRATION_LOOPS,
        },
        "calibration_seconds": calibration,
        "sweep_seconds": sweep,
        "normalized_sweep": sweep / calibration,
    }
    return result, report


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed slowdown vs baseline "
                             "(default 0.35 = 35%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    result, report = measure()
    print(report.render())
    print()
    if not report.all_consistent:
        print("FAIL: swap matrix has inconsistent cells", file=sys.stderr)
        return 1
    short = [
        cell for cell in report.cells
        if cell.signature_matches != N_COMMANDS
    ]
    if short:
        print(f"FAIL: {len(short)} cell(s) short of "
              f"{N_COMMANDS}/{N_COMMANDS} signature matches",
              file=sys.stderr)
        return 1

    print(f"swap-matrix sweep ({result['workload']['cells']} cells, "
          f"best of {REPEATS}):")
    print(f"  run_swap_matrix: {result['sweep_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_sweep']:.2f} calibration units)")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    reference = baseline["normalized_sweep"]
    limit = reference * (1.0 + args.tolerance)
    print(f"  baseline: {reference:.2f} units, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    if result["normalized_sweep"] > limit:
        print("FAIL: swap-matrix runtime regressed "
              f"({result['normalized_sweep']:.2f} > {limit:.2f})",
              file=sys.stderr)
        return 1
    print("OK: swap matrix consistent and within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
