"""ABL-BUS — PCI throughput through the interface pattern.

Sweeps burst length and target wait states and reports bus efficiency
(words transferred per hundred clock cycles). The shape to expect:
longer bursts amortise the address phase; wait states eat throughput
roughly linearly.
"""

import pytest
from _tables import print_table

from repro.core import CommandType
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.kernel import MS, NS

CLOCK_PERIOD = 30 * NS
TOTAL_WORDS = 32


def _throughput(burst, wait_states):
    n_commands = TOTAL_WORDS // burst
    commands = []
    for i in range(n_commands):
        commands.append(
            CommandType.write(0x100 + 4 * burst * i,
                              list(range(1, burst + 1)))
        )
    config = PciPlatformConfig(clock_period=CLOCK_PERIOD,
                               wait_states=wait_states)
    bundle = build_pci_platform([commands], config)
    result = bundle.run(100 * MS)
    cycles = result.sim_time / CLOCK_PERIOD
    words = sum(t.word_count for t in bundle.monitor.completed_transactions)
    assert words == TOTAL_WORDS
    return 100.0 * words / cycles, cycles


@pytest.mark.parametrize("burst", [1, 4, 16])
def test_abl_bus_burst_sweep(benchmark, burst):
    efficiency, __ = benchmark.pedantic(
        _throughput, args=(burst, 0), rounds=1, iterations=1
    )
    assert efficiency > 0


def test_abl_bus_full_table(benchmark):
    baseline = {}

    def sweep():
        rows = []
        for burst in (1, 2, 4, 8, 16, 32):
            for wait_states in (0, 1, 2, 4):
                efficiency, cycles = _throughput(burst, wait_states)
                if wait_states == 0:
                    baseline[burst] = efficiency
                rows.append([burst, wait_states, f"{efficiency:.1f}",
                             int(cycles)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"ABL-BUS: words per 100 clocks, {TOTAL_WORDS} words total "
        f"(33 MHz PCI clock)",
        ["burst", "wait states", "words/100 cycles", "total cycles"],
        rows,
    )
    # Shape checks: bursts amortise the per-transaction overhead...
    assert baseline[16] > 1.5 * baseline[1]
    # ...and monotonically help (weakly) up the sweep.
    ordered = [baseline[b] for b in (1, 2, 4, 8, 16)]
    assert all(b >= a for a, b in zip(ordered, ordered[1:]))
    # Wait states hurt: compare burst 8 at 0 vs 4 wait states.
    with_waits = [r for r in rows if r[0] == 8 and r[1] == 4][0]
    assert float(with_waits[2]) < baseline[8]
