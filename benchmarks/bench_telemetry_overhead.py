"""CI guard: telemetry must cost nothing when it is off.

Runs the synthesized PCI platform over a generated workload twice —
once with no telemetry attached (the shipping configuration) and once
with the full observability stack riding the probe bus (a
:class:`~repro.telemetry.scorecard.ScorecardProbe` plus a
:class:`~repro.telemetry.recorder.FlightRecorder`) — and compares the
*off* path against the checked-in calibrated baseline
``benchmarks/telemetry_overhead_baseline.json``.

As in ``bench_span_overhead``, wall-clock time is normalized by a
pure-Python calibration loop timed on the same host, so the stored
"workload costs K calibration units" number is comparable across runs.
The off-path tolerance is deliberately tight (2%): telemetry is pure
subscriber code behind the null-bus check, and this bench exists to
keep it that way.

Usage::

    python benchmarks/bench_telemetry_overhead.py            # compare (CI)
    python benchmarks/bench_telemetry_overhead.py --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.core import generate_workload  # noqa: E402
from repro.flow import build_pci_platform  # noqa: E402
from repro.kernel import MS  # noqa: E402
from repro.telemetry.recorder import FlightRecorder  # noqa: E402
from repro.telemetry.scorecard import ScorecardProbe  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "telemetry_overhead_baseline.json")
SEED = 55
#: Large enough that the ~2% guard sits well above best-of-N jitter.
N_COMMANDS = 60
REPEATS = 7
CALIBRATION_LOOPS = 200_000


def _workload():
    return generate_workload(
        seed=SEED, n_commands=N_COMMANDS, address_span=0x400,
        max_burst=4, partial_byte_enable_fraction=0.2,
    )


def _platform_run(telemetry: bool) -> float:
    """One synthesized-PCI run; returns wall seconds of the simulation."""
    bundle = build_pci_platform([_workload()], synthesize=True)
    probe = None
    if telemetry:
        probes = bundle.handle.sim.probes
        probe = ScorecardProbe(
            cycle_fs=bundle.clock.period
        ).attach(probes)
        FlightRecorder(512).attach(probes)
    started = time.perf_counter()
    bundle.run(200 * MS)
    elapsed = time.perf_counter() - started
    if probe is not None:
        score = probe.score("pci", "synthesized", "bench")
        assert score.transactions == N_COMMANDS, (
            f"expected {N_COMMANDS} scored transactions, "
            f"got {score.transactions}"
        )
    return elapsed


def _calibrate() -> float:
    acc = 0
    started = time.perf_counter()
    for i in range(CALIBRATION_LOOPS):
        acc += i % 7
    elapsed = time.perf_counter() - started
    assert acc > 0
    return elapsed


def measure() -> dict:
    calibration = min(_calibrate() for __ in range(REPEATS))
    off = min(_platform_run(False) for __ in range(REPEATS))
    on = min(_platform_run(True) for __ in range(REPEATS))
    return {
        "workload": {
            "seed": SEED,
            "n_commands": N_COMMANDS,
            "calibration_loops": CALIBRATION_LOOPS,
        },
        "calibration_seconds": calibration,
        "off_seconds": off,
        "on_seconds": on,
        "normalized_off": off / calibration,
        "normalized_on": on / calibration,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed telemetry-off slowdown vs baseline "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    result = measure()
    ratio = result["normalized_on"] / result["normalized_off"]
    print(f"synthesized PCI workload ({N_COMMANDS} commands, "
          f"best of {REPEATS}):")
    print(f"  telemetry off: {result['off_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_off']:.2f} calibration units)")
    print(f"  telemetry on:  {result['on_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_on']:.2f} calibration units, "
          f"{ratio:.2f}x off)")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    reference = baseline["normalized_off"]
    limit = reference * (1.0 + args.tolerance)
    print(f"  baseline off: {reference:.2f} units, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    if result["normalized_off"] > limit:
        print("FAIL: telemetry-off hot path regressed "
              f"({result['normalized_off']:.2f} > {limit:.2f})",
              file=sys.stderr)
        return 1
    print("OK: telemetry-off cost within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
