"""ABL-LIB — the interface library's portability claim.

The methodology's promise: with a proper library of interface elements,
moving a design between buses (or abstraction levels) means swapping one
IP, with the application untouched. This bench runs one application +
workload against every element in the default library and shows the
traces are identical while costs differ.
"""

import pytest
from _tables import print_table

from repro.core import default_library, generate_workload
from repro.flow import (
    build_functional_platform,
    build_pci_platform,
    build_wishbone_platform,
)
from repro.kernel import MS, NS

WORKLOAD = generate_workload(seed=404, n_commands=25, address_span=0x400,
                             max_burst=4, partial_byte_enable_fraction=0.2)

PLATFORMS = [
    ("functional (bus-agnostic TLM)", lambda: build_functional_platform([WORKLOAD])),
    ("pci pin-accurate", lambda: build_pci_platform([WORKLOAD])),
    ("pci post-synthesis", lambda: build_pci_platform([WORKLOAD],
                                                      synthesize=True)),
    ("wishbone pin-accurate", lambda: build_wishbone_platform([WORKLOAD])),
    ("wishbone post-synthesis", lambda: build_wishbone_platform(
        [WORKLOAD], synthesize=True)),
]


@pytest.mark.parametrize("name,builder", PLATFORMS,
                         ids=[p[0].split()[0] + "_" + p[0].split()[1]
                              for p in PLATFORMS])
def test_abl_lib_platform(benchmark, name, builder):
    result = benchmark.pedantic(lambda: builder().run(400 * MS),
                                rounds=1, iterations=1)
    assert result.transactions == 25


def test_abl_lib_portability_table(benchmark):
    def sweep():
        results = []
        for name, builder in PLATFORMS:
            results.append((name, builder().run(400 * MS)))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reference = results[0][1].traces
    rows = []
    for name, result in results:
        rows.append([
            name,
            result.transactions,
            result.delta_cycles,
            result.sim_time // NS,
            result.traces == reference,
        ])
    print_table(
        "ABL-LIB: one application, five library elements "
        "(default library: " + ", ".join(
            f"{b}/{a}" for b, a in default_library().available()) + ")",
        ["platform", "txns", "delta cycles", "sim ns", "trace == reference"],
        rows,
    )
    assert all(row[4] for row in rows), "a platform diverged from the reference"
