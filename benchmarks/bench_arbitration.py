"""ABL-ARB — ablation over the user-defined scheduling algorithm.

The global-object feature the pattern leans on is *"calls are queued and
scheduled according to a user defined algorithm"*. This bench quantifies
what the choice of algorithm does under contention: fairness across
clients and the latency spread, behaviourally and post-synthesis.
"""

import pytest
from _tables import print_table

from repro.core import generate_workload
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.kernel import MS, NS
from repro.osss import (
    FcfsArbiter,
    RandomArbiter,
    RoundRobinArbiter,
    StaticPriorityArbiter,
)

N_APPS = 3
N_COMMANDS = 8


def _run(arbiter, synthesize=False):
    workloads = [
        generate_workload(seed=300 + i, n_commands=N_COMMANDS,
                          address_base=0x400 * i, address_span=0x400,
                          max_burst=2)
        for i in range(N_APPS)
    ]
    bundle = build_pci_platform(
        workloads, PciPlatformConfig(arbiter=arbiter), synthesize=synthesize
    )
    bundle.run(400 * MS)
    apps = bundle.handle.applications
    finish_times = {a.name: max(r.complete_time for r in a.records)
                    for a in apps}
    latencies = [r.latency for a in apps for r in a.records]
    mean_latency = sum(latencies) / len(latencies)
    return bundle, finish_times, mean_latency


POLICIES = [
    ("fcfs", lambda: FcfsArbiter()),
    ("round_robin", lambda: RoundRobinArbiter()),
    ("priority(app0)", lambda: StaticPriorityArbiter(
        {"top.app0.bus_port": 0}, default_priority=10)),
    ("random", lambda: RandomArbiter(seed=2)),
]


@pytest.mark.parametrize("name,factory", POLICIES, ids=[p[0] for p in POLICIES])
def test_abl_arb_policy(benchmark, name, factory):
    bundle, finish_times, mean_latency = benchmark.pedantic(
        _run, args=(factory(),), rounds=1, iterations=1
    )
    assert all(a.done for a in bundle.handle.applications)
    assert not bundle.monitor.violations


def test_abl_arb_summary_table(benchmark):
    def sweep():
        rows = []
        for name, factory in POLICIES:
            __, finish_times, mean_latency = _run(factory())
            spread = (
                max(finish_times.values()) - min(finish_times.values())
            ) // NS
            rows.append([
                name,
                f"{mean_latency / NS:.0f}",
                spread,
                min(finish_times, key=finish_times.get),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"ABL-ARB: {N_APPS} applications contending on one interface "
        f"({N_COMMANDS} commands each)",
        ["arbiter", "mean latency (ns)", "finish spread (ns)",
         "first to finish"],
        rows,
    )
    # The priority policy must favour app0.
    priority_row = [r for r in rows if r[0] == "priority(app0)"][0]
    assert priority_row[3] == "app0"


def test_abl_arb_priority_consistent_post_synthesis(benchmark):
    """The priority advantage survives communication synthesis."""
    __, finish_times, ___ = benchmark.pedantic(
        _run,
        args=(StaticPriorityArbiter({"top.app0.bus_port": 0},
                                    default_priority=10),),
        kwargs={"synthesize": True},
        rounds=1,
        iterations=1,
    )
    assert finish_times["app0"] <= min(finish_times["app1"],
                                       finish_times["app2"])
