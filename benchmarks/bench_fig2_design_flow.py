"""FIG2 — the complete design flow of the paper's Figure 2.

specifications -> functional model -> refinement -> implementation ->
communication synthesis -> post-synthesis validation, timed end to end,
with the per-stage breakdown printed.
"""

from _tables import print_table

from repro.core import generate_workload
from repro.flow import DesignFlow, standard_flow_builders
from repro.kernel import MS

WORKLOADS = [
    generate_workload(seed=11, n_commands=15, address_base=0x000,
                      address_span=0x400, max_burst=4),
    generate_workload(seed=13, n_commands=15, address_base=0x400,
                      address_span=0x400, max_burst=4),
]


def _run_flow():
    flow = DesignFlow(
        {"name": "pci-device-under-design", "bus": "pci"},
        *standard_flow_builders(WORKLOADS),
    )
    return flow.run(100 * MS)


def test_fig2_full_flow(benchmark):
    report = benchmark.pedantic(_run_flow, rounds=1, iterations=1)
    assert report.succeeded
    print_table(
        "FIG2: design flow stages (spec -> implementation)",
        ["stage", "status", "wall_s", "detail"],
        [
            [s.name, s.status, f"{s.wall_seconds:.3f}", s.detail[:60]]
            for s in report.stages
        ],
    )
    synthesis = report.synthesis_result
    print_table(
        "FIG2: synthesis output summary",
        ["metric", "value"],
        [
            ["lowered channels", len(synthesis.groups)],
            ["total ff bits", synthesis.report.total_flip_flop_bits],
            ["total muxes", synthesis.report.total_mux_count],
            ["total fsm states", synthesis.report.total_fsm_states],
            ["verilog bytes", len(synthesis.all_verilog())],
            ["vhdl bytes", len(synthesis.all_vhdl())],
        ],
    )
