"""CI smoke: netlist-analysis runtime against a calibrated budget.

Builds the synthesized PCI platform once, then times
:func:`repro.analyze.analyze_design` (graph + levelization + FSM +
X-propagation + NET/FSM/RACE lint) over its netlists and compares the
cost against the checked-in budget ``benchmarks/analyze_baseline.json``.

Wall-clock numbers are useless across machines, so the analysis time is
normalized by a pure-Python calibration loop timed on the same host
(same scheme as ``instrument_smoke.py``).

Usage::

    python benchmarks/bench_analyze_runtime.py            # compare (CI)
    python benchmarks/bench_analyze_runtime.py --update   # recalibrate

Exit status 1 when the normalized analysis cost regresses past the
tolerance (default 30% — the pass is fast, so jitter is proportionally
larger than for the simulation benchmarks).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.analyze import analyze_design  # noqa: E402
from repro.core import CommandType  # noqa: E402
from repro.flow import PciPlatformConfig, build_pci_platform  # noqa: E402
from repro.synthesis.tool import set_synthesis_sink  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "analyze_baseline.json")
REPEATS = 5
CALIBRATION_LOOPS = 200_000

COMMANDS = [
    CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
    CommandType.read(0x100, count=3),
]


def _build_synthesized_platform():
    """The PCI platform plus the captured synthesis result."""
    captured = []
    previous = set_synthesis_sink(
        lambda sim, result: captured.append((sim, result))
    )
    try:
        build_pci_platform(
            [COMMANDS], PciPlatformConfig(wait_states=1), synthesize=True
        )
    finally:
        set_synthesis_sink(previous)
    (capture,) = captured
    return capture


def _calibrate() -> float:
    """Time a fixed pure-Python loop as the host-speed yardstick."""
    acc = 0
    started = time.perf_counter()
    for i in range(CALIBRATION_LOOPS):
        acc += i % 7
    elapsed = time.perf_counter() - started
    assert acc > 0
    return elapsed


def _analyze_once(sim, result) -> float:
    started = time.perf_counter()
    report = analyze_design(result, sim, label="bench")
    elapsed = time.perf_counter() - started
    assert not report.has_errors, report.lint.render()
    assert report.schedules(), "no netlist levelized"
    return elapsed


def measure() -> dict:
    sim, result = _build_synthesized_platform()
    calibration = min(_calibrate() for __ in range(REPEATS))
    analyze = min(_analyze_once(sim, result) for __ in range(REPEATS))
    report = analyze_design(result, sim)
    return {
        "workload": {
            "modules": len(report.modules),
            "comb_steps": sum(a.stats()["comb_steps"]
                              for a in report.modules),
            "calibration_loops": CALIBRATION_LOOPS,
        },
        "calibration_seconds": calibration,
        "analyze_seconds": analyze,
        "normalized_analyze": analyze / calibration,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed slowdown vs baseline "
                             "(default 0.30 = 30%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    result = measure()
    print(f"netlist analysis ({result['workload']['modules']} module(s), "
          f"{result['workload']['comb_steps']} comb steps, "
          f"best of {REPEATS}):")
    print(f"  analyze_design: {result['analyze_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_analyze']:.2f} calibration units)")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    reference = baseline["normalized_analyze"]
    limit = reference * (1.0 + args.tolerance)
    print(f"  baseline: {reference:.2f} units, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    if result["normalized_analyze"] > limit:
        print("FAIL: netlist analysis runtime regressed "
              f"({result['normalized_analyze']:.2f} > {limit:.2f})",
              file=sys.stderr)
        return 1
    print("OK: analysis runtime within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
