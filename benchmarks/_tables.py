"""Small table printer shared by the benchmark harnesses.

Each bench regenerates the data behind one of the paper's figures (or an
extension experiment) and prints it as an aligned text table, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
artifacts alongside the timing numbers.
"""

from __future__ import annotations

import typing


def print_table(
    title: str,
    header: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
) -> None:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in cells)) if cells
        else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "-" * (sum(widths) + 2 * (len(widths) - 1))
    print()
    print(f"== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print(line)
    for row in cells:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    print(line)
