"""CI guard: span tracing must cost nothing when it is off.

Runs the synthesized PCI platform over a generated workload twice —
once with no probe bus attached (the shipping configuration) and once
with a :class:`~repro.trace.SpanTracer` assembling span trees — and
compares the *off* path against the checked-in calibrated baseline
``benchmarks/span_overhead_baseline.json``.

As in ``instrument_smoke``, wall-clock time is normalized by a
pure-Python calibration loop timed on the same host, which makes the
stored "workload costs K calibration units" number comparable across
runs. The off-path tolerance is deliberately tight (2%): the only code
the tracer adds to the uninstrumented simulation is one ``is None``
check per notification/wake, and this bench exists to keep it that way.

Usage::

    python benchmarks/bench_span_overhead.py            # compare (CI mode)
    python benchmarks/bench_span_overhead.py --update   # rewrite baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.core import generate_workload  # noqa: E402
from repro.flow import build_pci_platform  # noqa: E402
from repro.kernel import MS  # noqa: E402
from repro.trace import SpanTracer, attribute  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "span_overhead_baseline.json")
SEED = 55
#: Large enough that the ~2% guard sits well above best-of-N jitter.
N_COMMANDS = 60
REPEATS = 7
CALIBRATION_LOOPS = 200_000


def _workload():
    return generate_workload(
        seed=SEED, n_commands=N_COMMANDS, address_span=0x400,
        max_burst=4, partial_byte_enable_fraction=0.2,
    )


def _platform_run(traced: bool) -> float:
    """One synthesized-PCI run; returns wall seconds of the simulation."""
    bundle = build_pci_platform([_workload()], synthesize=True)
    tracer = None
    if traced:
        tracer = SpanTracer().attach(bundle.handle.sim.probes)
    started = time.perf_counter()
    bundle.run(200 * MS)
    elapsed = time.perf_counter() - started
    if tracer is not None:
        report = attribute(tracer.finalize())
        assert len(report) == N_COMMANDS, (
            f"expected {N_COMMANDS} assembled transactions, got {len(report)}"
        )
    return elapsed


def _calibrate() -> float:
    acc = 0
    started = time.perf_counter()
    for i in range(CALIBRATION_LOOPS):
        acc += i % 7
    elapsed = time.perf_counter() - started
    assert acc > 0
    return elapsed


def measure() -> dict:
    calibration = min(_calibrate() for __ in range(REPEATS))
    off = min(_platform_run(False) for __ in range(REPEATS))
    on = min(_platform_run(True) for __ in range(REPEATS))
    return {
        "workload": {
            "seed": SEED,
            "n_commands": N_COMMANDS,
            "calibration_loops": CALIBRATION_LOOPS,
        },
        "calibration_seconds": calibration,
        "off_seconds": off,
        "on_seconds": on,
        "normalized_off": off / calibration,
        "normalized_on": on / calibration,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed tracing-off slowdown vs baseline "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    args = parser.parse_args(argv)

    result = measure()
    ratio = result["normalized_on"] / result["normalized_off"]
    print(f"synthesized PCI workload ({N_COMMANDS} commands, "
          f"best of {REPEATS}):")
    print(f"  tracing off: {result['off_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_off']:.2f} calibration units)")
    print(f"  tracing on:  {result['on_seconds'] * 1e3:8.2f} ms "
          f"({result['normalized_on']:.2f} calibration units, "
          f"{ratio:.2f}x off)")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run with --update first",
              file=sys.stderr)
        return 1
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    reference = baseline["normalized_off"]
    limit = reference * (1.0 + args.tolerance)
    print(f"  baseline off: {reference:.2f} units, "
          f"limit {limit:.2f} (+{args.tolerance:.0%})")
    if result["normalized_off"] > limit:
        print("FAIL: tracing-off hot path regressed "
              f"({result['normalized_off']:.2f} > {limit:.2f})",
              file=sys.stderr)
        return 1
    print("OK: tracing-off cost within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
