#!/usr/bin/env python
"""Quickstart: global objects with guarded methods (the paper's Figure 1).

Two modules each instantiate a ``Bistable`` global object; a third
instance lives at the top level. All three are connected, so they share
one state space: a ``set()`` performed by the first module is observed
by the second, and a guarded ``wait_true()`` suspends its caller until
the shared state satisfies the guard.

Run:  python examples/quickstart.py
"""

from repro.hdl import Module
from repro.kernel import NS, Simulator, Timeout
from repro.osss import GlobalObject, connect, guarded_method


class Bistable:
    """The shared bistable of the paper's Figure 1."""

    def __init__(self):
        self.state = False

    @guarded_method()
    def set(self):
        self.state = True

    @guarded_method()
    def clear(self):
        self.state = False

    @guarded_method()
    def get_state(self):
        return self.state

    @guarded_method(lambda self: self.state)
    def wait_true(self):
        """Blocks the caller until some module has called set()."""
        return self.state


class SetterModule(Module):
    """Invokes set() on its local instance after 50 ns."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.bistable = GlobalObject(self, "bistable", Bistable)
        self.thread(self._run)

    def _run(self):
        yield Timeout(50 * NS)
        yield from self.bistable.set()
        print(f"[{self.sim.time_str()}] {self.path}: set() done")


class ObserverModule(Module):
    """Polls once, then blocks on the guard until the state flips."""

    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.bistable = GlobalObject(self, "bistable", Bistable)
        self.thread(self._run)

    def _run(self):
        early = yield from self.bistable.get_state()
        print(f"[{self.sim.time_str()}] {self.path}: early get_state() -> {early}")
        value = yield from self.bistable.wait_true()
        print(
            f"[{self.sim.time_str()}] {self.path}: wait_true() returned {value} "
            "(was suspended until the setter acted)"
        )


def main():
    sim = Simulator()
    setter = SetterModule(sim, "module1")
    observer = ObserverModule(sim, "module2")

    # The third bistable "at top level" of Figure 1 (owned by module1 here
    # purely for naming; any module can host it).
    top_level = GlobalObject(setter, "top_bistable", Bistable)

    # Connecting merges the three state spaces into one.
    connect(setter.bistable, observer.bistable, top_level)

    sim.run(200 * NS)

    state = observer.bistable.state
    print(f"final shared state: {state.state}")
    print(f"grants by client:   {observer.bistable.stats.grants_by_client}")
    assert state.state is True
    print("quickstart OK")


if __name__ == "__main__":
    main()
