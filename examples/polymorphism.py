#!/usr/bin/env python
"""Hardware polymorphism (the SystemC+ late-binding feature).

A polymorphic variable bounded to three CRC-generator variants behind a
common base class: behaviourally a late-bound call, in hardware a tag
register plus a dispatch multiplexer. The example exercises both and
prints the synthesized dispatch netlist.

Run:  python examples/polymorphism.py
"""

from repro.osss import PolymorphicVar
from repro.synthesis import emit_verilog, synthesize_dispatch


class ChecksumUnit:
    """Common interface of the bounded class set."""

    def compute(self, data):
        raise NotImplementedError

    def name(self):
        raise NotImplementedError


class XorChecksum(ChecksumUnit):
    def __init__(self):
        self.accumulator = 0

    def compute(self, data):
        value = 0
        for word in data:
            value ^= word
        self.accumulator = value
        return value

    def name(self):
        return "xor"


class AddChecksum(ChecksumUnit):
    def __init__(self):
        self.accumulator = 0

    def compute(self, data):
        value = sum(data) & 0xFFFFFFFF
        self.accumulator = value
        return value

    def name(self):
        return "add"


class Crc8Checksum(ChecksumUnit):
    """Bytewise CRC-8 (polynomial 0x07)."""

    def __init__(self):
        self.accumulator = 0

    def compute(self, data):
        crc = 0
        for word in data:
            for shift in (0, 8, 16, 24):
                crc ^= (word >> shift) & 0xFF
                for __ in range(8):
                    crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
        self.accumulator = crc
        return crc

    def name(self):
        return "crc8"


def main():
    variable = PolymorphicVar(
        ChecksumUnit, [XorChecksum, AddChecksum, Crc8Checksum], name="checker"
    )
    data = [0xDEADBEEF, 0x12345678, 0x0BADF00D]

    print(f"bounded class set: {[v.__name__ for v in variable.variants]}")
    print(f"tag register width: {variable.tag_bits} bit(s)")
    print()
    for variant in (XorChecksum(), AddChecksum(), Crc8Checksum()):
        variable.assign(variant)  # "pointer assignment" -> tag update
        result = variable.call("compute", data)  # late-bound invocation
        print(f"tag={variable.tag}  {variable.call('name')}: {result:#x}")

    # The dispatch table is what the synthesizer turns into a multiplexer.
    table = variable.dispatch_table("compute")
    assert len(table) == 3

    module, info = synthesize_dispatch(variable)
    print()
    print(f"synthesized dispatch: {info!r}")
    print()
    print("generated Verilog (first lines):")
    for line in emit_verilog(module).splitlines()[:20]:
        print(f"  {line}")
    print("polymorphism OK")


if __name__ == "__main__":
    main()
