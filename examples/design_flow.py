#!/usr/bin/env python
"""The complete design flow of the paper's Figure 2.

specifications -> functional model -> validation -> refinement ->
implementation model -> communication synthesis -> post-synthesis
validation — each stage driven by :class:`repro.flow.DesignFlow` and
reported with its outcome and cost.

Run:  python examples/design_flow.py
"""

from repro.core import generate_workload
from repro.flow import DesignFlow, standard_flow_builders
from repro.kernel import MS


def main():
    specification = {
        "name": "pci-device-under-design",
        "bus": "pci",
        "description": (
            "an application performing a series of bus transactions, "
            "to be implemented behind a PCI bus interface"
        ),
    }
    workloads = [
        generate_workload(seed=11, n_commands=25, address_base=0x000,
                          address_span=0x400, max_burst=4),
        generate_workload(seed=13, n_commands=25, address_base=0x400,
                          address_span=0x400, max_burst=4),
    ]
    flow = DesignFlow(specification, *standard_flow_builders(workloads))
    report = flow.run(50 * MS)

    print(report.summary())
    assert report.succeeded

    synthesis = report.synthesis_result
    assert synthesis is not None
    print()
    print(synthesis.report.render())
    print()
    print("generated Verilog (first lines):")
    for line in synthesis.groups[0].verilog.splitlines()[:14]:
        print(f"  {line}")
    print("design_flow OK")


if __name__ == "__main__":
    main()
