#!/usr/bin/env python
"""A complete PCI platform with waveform dumping (the paper's Figure 4).

Builds the pin-accurate executable model — application, bus-interface
element, PCI bus, memory and register-block targets — applies
communication synthesis, re-simulates, and renders the bus waveforms of
the first transactions both as a VCD file (``pci_system.vcd``, loadable
in GTKWave) and as ASCII art on stdout.

Run:  python examples/pci_system.py
"""

from repro.core import CommandType
from repro.flow import PciPlatformConfig, build_pci_platform
from repro.kernel import MS, NS
from repro.trace import VcdTracer, WaveformCapture, render


def main():
    # A short, readable command sequence: one burst write, one burst read,
    # then a register poke at the peripheral.
    commands = [
        CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
        CommandType.read(0x100, count=3),
        CommandType.write(0x0001_0008, 0x55AA55AA),  # peripheral DATA register
        CommandType.read(0x0001_0004, count=1),      # peripheral STATUS
    ]
    config = PciPlatformConfig(clock_period=30 * NS, wait_states=1)
    bundle = build_pci_platform([commands], config, synthesize=True)

    # Attach tracing to the shared bus wires + clock before running.
    sim = bundle.handle.sim
    vcd = VcdTracer("pci_system.vcd")
    capture = WaveformCapture()
    watched = [bundle.clock.clk] + bundle.bus.shared_signals()
    vcd.add_signals(watched)
    capture.add_signals(watched)
    sim.add_tracer(vcd)
    sim.add_tracer(capture)

    result = bundle.run(5 * MS)
    vcd.close(sim.time)

    print(result)
    app = bundle.handle.applications[0]
    for record in app.records:
        print(f"  {record.command!r} -> {record.response!r} "
              f"({record.latency // (1 * NS)} ns)")

    read_back = app.records[1].response
    assert read_back is not None
    assert read_back.data == [0xDEADBEEF, 0x12345678, 0xCAFEF00D]
    status = app.records[3].response
    assert status is not None and status.data[0] & 0xF0  # write counter moved

    print("\nbus transactions observed by the monitor:")
    for transaction in bundle.monitor.completed_transactions:
        print(f"  {transaction!r}")

    # Figure 4: waveforms of the first write transaction.
    labels = {s.name: s.name.rsplit(".", 1)[-1] for s in watched}
    print("\nwaveforms (one column per 15 ns; # = high, _ = low, ~ = tri-state):")
    print(render(capture, [s.name for s in watched],
                 start=0, stop=1200 * NS, step=15 * NS,
                 labels=labels, time_unit=30 * NS))

    print("\nsynthesis report:")
    print(bundle.synthesis.report.render())
    print("\nwrote pci_system.vcd")
    print("pci_system OK")


if __name__ == "__main__":
    main()
