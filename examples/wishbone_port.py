#!/usr/bin/env python
"""Porting the device to a different bus: PCI -> Wishbone.

The methodology's library claim in action: the same application and the
same functional IP models run behind the PCI element, then behind the
Wishbone element — picked from the interface library by name — and the
observable transaction traces are identical. The application is never
edited.

Run:  python examples/wishbone_port.py
"""

from repro.core import default_library, generate_workload
from repro.flow import (
    build_functional_platform,
    build_pci_platform,
    build_wishbone_platform,
)
from repro.kernel import MS, NS


def main():
    library = default_library()
    print("library elements available:")
    for bus, abstraction in library.available():
        print(f"  {bus:10s} {abstraction:14s} "
              f"{library.lookup(bus, abstraction).__name__}")
    print()

    workload = generate_workload(seed=99, n_commands=30, address_span=0x400,
                                 max_burst=4)
    runs = {
        "functional": build_functional_platform([workload]).run(200 * MS),
        "pci": build_pci_platform([workload]).run(200 * MS),
        "wishbone": build_wishbone_platform([workload]).run(200 * MS),
    }

    reference = runs["functional"].traces
    print(f"{'platform':12s} {'txns':>5s} {'deltas':>8s} {'sim ns':>8s}  trace")
    for name, result in runs.items():
        same = result.traces == reference
        print(f"{name:12s} {result.transactions:>5d} "
              f"{result.delta_cycles:>8d} {result.sim_time // NS:>8d}  "
              f"{'== reference' if same else 'DIVERGED'}")
        assert same

    print()
    print("the application was not modified between platforms — the")
    print("communication refinement was a one-line library swap.")
    print("wishbone_port OK")


if __name__ == "__main__":
    main()
