#!/usr/bin/env python
"""Communication refinement by interface swap (the paper's Figure 3).

The same application and the same functional IP models run twice:

* against the **functional** library interface element (transaction
  level — fast simulation), then
* against the **pin-accurate PCI** element (the implementation).

Nothing in the application changes; the observable transaction traces
are identical; the simulation cost difference is the price of pin-level
detail — which is why the methodology models high and refines late.

Run:  python examples/refinement.py
"""

from repro.core import compare_refinement, default_library, generate_workload
from repro.flow import PciPlatformConfig, build_functional_platform, build_pci_platform
from repro.kernel import MS


def main():
    library = default_library()
    print("interface library contents:")
    for bus, abstraction in library.available():
        print(f"  bus={bus!r}  abstraction={abstraction!r}  "
              f"-> {library.lookup(bus, abstraction).__name__}")
    print()

    workload = generate_workload(
        seed=2024, n_commands=40, address_span=0x800, max_burst=4,
        partial_byte_enable_fraction=0.25,
    )
    config = PciPlatformConfig()

    report = compare_refinement(
        lambda: build_functional_platform([workload], config).handle,
        lambda: build_pci_platform([workload], config).handle,
        max_time=20 * MS,
    )
    print(report.summary())
    assert report.consistent, report.mismatches
    assert report.delta_ratio > 2, "pin-level detail should cost kernel activity"
    print()
    print(f"the functional model needed {report.delta_ratio:.0f}x fewer "
          "delta cycles for the same observable behaviour")
    print("refinement OK")


if __name__ == "__main__":
    main()
