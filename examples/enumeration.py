#!/usr/bin/env python
"""PCI bus enumeration: discovering and programming devices.

Two devices with configuration spaces sit on the bus with unprogrammed
BARs. Software (running on the bus master) probes each slot's IDSEL,
sizes BAR0 with the all-ones handshake, assigns disjoint windows,
enables memory decoding — and then uses the freshly-mapped devices.

Run:  python examples/enumeration.py
"""

from repro.hdl import Clock, Module
from repro.kernel import MS, NS, Simulator
from repro.pci import (
    PciBus,
    PciCentralArbiter,
    PciConfigSpace,
    PciMaster,
    PciMonitor,
    PciOperation,
    PciTarget,
    enumerate_bus,
)
from repro.tlm import Memory


class System(Module):
    def __init__(self, parent, name):
        super().__init__(parent, name)
        self.clock = Clock(self, "clock", period=30 * NS)
        self.bus = PciBus(self, "bus")
        PciCentralArbiter(self, "arbiter", self.bus, self.clock.clk)
        self.monitor = PciMonitor(self, "monitor", self.bus, self.clock.clk)
        self.devices = []
        for slot, (vendor, device, size) in enumerate(
            [(0x104C, 0xAC10, 0x1000), (0x8086, 0x1229, 0x4000)]
        ):
            memory = Memory(size)
            target = PciTarget(
                self, f"dev{slot}", self.bus, self.clock.clk, memory,
                base=0, size=size,
                config_space=PciConfigSpace(vendor, device, bar0_size=size),
                idsel_index=slot,
            )
            self.devices.append((target, memory))
        self.master = PciMaster(self, "host_bridge", self.bus, self.clock.clk)


def main():
    sim = Simulator()
    system = System(sim, "system")
    log = {}

    def firmware():
        print("probing slots 0..3 ...")
        devices = yield from enumerate_bus(system.master, n_slots=4)
        for device in devices:
            print(f"  found {device!r}")
        log["devices"] = devices

        # Exercise the mapped windows.
        for index, device in enumerate(devices):
            pattern = 0xA5A50000 | index
            write = PciOperation.write(device.bar0_base, [pattern])
            yield from system.master.transact(write)
            read = PciOperation.read(device.bar0_base)
            yield from system.master.transact(read)
            print(f"  slot {device.slot}: wrote {pattern:#010x}, "
                  f"read back {read.data[0]:#010x}")
            assert read.data == [pattern]
        sim.stop()

    sim.spawn(firmware, "firmware")
    sim.run(50 * MS)

    assert len(log["devices"]) == 2
    assert not system.monitor.violations
    print(f"\nbus cycles observed: {system.monitor.cycles_observed}, "
          f"transactions: {len(system.monitor.completed_transactions)}")
    print("enumeration OK")


if __name__ == "__main__":
    main()
