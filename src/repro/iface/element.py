"""The parameterized interface-element base.

:class:`InterfaceElement` is the one shape every library IP follows —
the :class:`~repro.core.bus_interface.BusInterface` pattern (a single
``BusInterfaceChannel``-shaped global object towards the application,
protocol processes towards the wires) plus structural elaboration from
an :class:`~repro.iface.params.IfaceParams`. Concrete elements (PCI,
Wishbone, AXI4-Lite, TLM-GP, functional) subclass this and consume
``self.params`` instead of per-bus width constants.
"""

from __future__ import annotations

import typing

from ..core.bus_interface import BusInterface, BusInterfaceChannel
from ..hdl.module import Module
from ..kernel.simulator import Simulator
from ..osss.arbiter import Arbiter
from .params import IfaceParams


class InterfaceElement(BusInterface):
    """A :class:`BusInterface` elaborated from :class:`IfaceParams`.

    :param params: structural parameters; ``None`` elaborates the
        defaults (32-bit paths, burst 8, response FIFO of 4).
    :param response_capacity: legacy knob — when given it overrides
        ``params.response_capacity`` so existing call sites that only
        pass the FIFO depth keep working unchanged.
    """

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        arbiter: Arbiter | None = None,
        params: IfaceParams | None = None,
        response_capacity: int | None = None,
        channel_cls: type = BusInterfaceChannel,
    ) -> None:
        if params is None:
            params = IfaceParams()
        if (
            response_capacity is not None
            and response_capacity != params.response_capacity
        ):
            params = params.with_response_capacity(response_capacity)
        super().__init__(
            parent, name, arbiter, params.response_capacity, channel_cls
        )
        #: The parameters this element was elaborated with.
        self.params = params

    def check_bus_widths(self, **widths: int) -> None:
        """Assert the attached wire bundle matches ``self.params``.

        Concrete elements call this from their constructor with the
        widths the bus was elaborated at (``data_width=bus.ad_width``,
        ...); a mismatch is a wiring bug worth failing loudly on.
        """
        from ..errors import RefinementError

        expected = {
            "data_width": self.params.data_width,
            "addr_width": self.params.addr_width,
        }
        for key, actual in widths.items():
            want = expected.get(key)
            if want is not None and actual != want:
                raise RefinementError(
                    f"{self.path}: bus {key}={actual} does not match "
                    f"element params {key}={want}"
                )

    def describe(self) -> dict:
        record = super().describe()
        record["params"] = self.params.describe()
        return record

    def structural_summary(self) -> dict:
        """The generate-style elaboration facts, for reports/tests."""
        params = self.params
        return {
            "element": type(self).__name__,
            "bus": self.BUS_NAME,
            "abstraction": self.ABSTRACTION,
            "data_width": params.data_width,
            "addr_width": params.addr_width,
            "byte_lanes": params.byte_lanes,
            "max_burst": params.max_burst,
            "response_capacity": params.response_capacity,
        }


def element_params(
    params: IfaceParams | None, response_capacity: int | None
) -> IfaceParams:
    """Resolve the (params, legacy response_capacity) pair one way."""
    resolved = params or IfaceParams()
    if (
        response_capacity is not None
        and response_capacity != resolved.response_capacity
    ):
        resolved = resolved.with_response_capacity(response_capacity)
    return resolved


def is_interface_element(module: typing.Any) -> bool:
    """True for instances of the parameterized element base."""
    return isinstance(module, InterfaceElement)
