"""The swap matrix: one application, every bus, every abstraction.

The paper's closing claim is that a *library* of interface elements
makes communication refinement a drop-in swap: keep the application,
replace the interface IP, re-simulate, check behaviour consistency.
:func:`run_swap_matrix` executes that claim as a matrix sweep — the
same seeded workload is run once on the functional reference platform,
then on every ``bus × level`` cell, and each cell is verified three
ways against the reference:

* **memory image** — the golden write-stream image must match;
* **application traces** — per-application observable records compared
  with :func:`~repro.verify.consistency.check_traces`;
* **per-transaction spans** — span forests correlated by corr_id via
  :func:`~repro.trace.correlate.correlate`, giving one CONSISTENT /
  MISMATCH verdict per transaction.

With ``telemetry=True`` every run (reference and cells) additionally
carries a :class:`~repro.telemetry.scorecard.ScorecardProbe`, so the
sweep yields quantitative communication gauges next to the yes/no
verdicts — the scorecard ``python -m repro report --matrix`` renders.

An optional fault leg runs the stock demo campaign per bus family so
the matrix also spans the fault-classification machinery.
"""

from __future__ import annotations

import typing

from ..kernel.simtime import MS, NS

#: Cell refinement levels: the behavioural element, the synthesized
#: channel on the interpreted backend, and the compiled fast-sim core.
LEVELS = ("functional", "synthesized", "compiled")

#: Bus families swept by default (the functional family is the
#: reference side, not a cell).
DEFAULT_BUSES = ("pci", "wishbone", "axi4lite", "tlmgp")


class MatrixCell:
    """One ``bus × level`` run verified against the reference."""

    def __init__(self, bus: str, level: str, label: str) -> None:
        self.bus = bus
        self.level = level
        self.label = label
        self.consistent: bool | None = None
        self.transactions = 0
        self.signature_matches = 0
        self.mismatches: list[str] = []
        self.error: str | None = None
        self.sim_time = 0
        self.wall_seconds = 0.0
        #: Communication gauges (telemetry-enabled sweeps only).
        self.score = None

    @property
    def verdict(self) -> str:
        if self.error is not None:
            return "ERROR"
        if self.consistent:
            return "CONSISTENT"
        return "MISMATCH"

    def cell_text(self) -> str:
        if self.error is not None:
            return "ERROR"
        return (
            f"{self.verdict}({self.signature_matches}/{self.transactions})"
        )

    def to_dict(self) -> dict:
        return {
            "bus": self.bus,
            "level": self.level,
            "label": self.label,
            "verdict": self.verdict,
            "transactions": self.transactions,
            "signature_matches": self.signature_matches,
            "mismatches": list(self.mismatches),
            "error": self.error,
            "sim_time": self.sim_time,
            "wall_seconds": self.wall_seconds,
            "score": None if self.score is None else self.score.to_dict(),
        }

    def __repr__(self) -> str:
        return f"MatrixCell({self.bus}/{self.level}: {self.verdict})"


class SwapMatrixReport:
    """Every cell of one sweep, plus the optional fault leg."""

    def __init__(
        self,
        seed: int,
        n_commands: int,
        buses: typing.Sequence[str],
        levels: typing.Sequence[str],
    ) -> None:
        self.seed = seed
        self.n_commands = n_commands
        self.buses = tuple(buses)
        self.levels = tuple(levels)
        self.cells: list[MatrixCell] = []
        #: bus family -> fault classification counts (fault leg only).
        self.fault_counts: dict[str, dict[str, int]] = {}
        #: bus family -> fault kind -> classification counts, the
        #: per-family detection breakdown the scorecard renders.
        self.fault_families: dict[str, dict[str, dict[str, int]]] = {}
        #: The functional reference run's gauges (telemetry sweeps only).
        self.reference_score = None

    @property
    def all_consistent(self) -> bool:
        return all(
            cell.error is None and cell.consistent for cell in self.cells
        )

    def cell(self, bus: str, level: str) -> "MatrixCell | None":
        for cell in self.cells:
            if cell.bus == bus and cell.level == level:
                return cell
        return None

    def scorecard(self):
        """The sweep's :class:`~repro.telemetry.scorecard
        .MatrixScorecard`, or ``None`` for telemetry-off sweeps."""
        from ..telemetry.scorecard import MatrixScorecard

        return MatrixScorecard.from_matrix(self)

    def render(self) -> str:
        width = max(
            (len(cell.cell_text()) for cell in self.cells), default=10
        )
        width = max(width, max(len(level) for level in self.levels))
        bus_width = max([len("bus")] + [len(b) for b in self.buses])
        lines = [
            f"== swap matrix: seed {self.seed}, "
            f"{self.n_commands} commands ==",
            "",
            f"{'bus':<{bus_width}}  "
            + "  ".join(f"{level:<{width}}" for level in self.levels),
        ]
        for bus in self.buses:
            row = [f"{bus:<{bus_width}}"]
            for level in self.levels:
                cell = self.cell(bus, level)
                row.append(f"{cell.cell_text() if cell else '-':<{width}}")
            lines.append("  ".join(row))
        problems = [
            cell for cell in self.cells
            if cell.error is not None or not cell.consistent
        ]
        for cell in problems:
            lines.append("")
            lines.append(f"-- {cell.bus}/{cell.level}: {cell.verdict} --")
            if cell.error is not None:
                lines.append(f"  error: {cell.error}")
            lines.extend(f"  mismatch: {m}" for m in cell.mismatches[:5])
            if len(cell.mismatches) > 5:
                lines.append(f"  (+{len(cell.mismatches) - 5} more)")
        if self.fault_counts:
            lines.append("")
            lines.append("-- fault leg (demo campaign per bus) --")
            for bus, counts in sorted(self.fault_counts.items()):
                shown = ", ".join(
                    f"{k}={v}" for k, v in sorted(counts.items()) if v
                )
                lines.append(f"{bus:<{bus_width}}  {shown}")
                for family, row in sorted(
                    self.fault_families.get(bus, {}).items()
                ):
                    detected = row.get("detected", 0)
                    effective = detected + row.get("silent", 0)
                    coverage = (
                        f"{detected / effective:.0%}" if effective else "n/a"
                    )
                    shown = ", ".join(
                        f"{k}={v}" for k, v in sorted(row.items()) if v
                    )
                    lines.append(
                        f"{'':<{bus_width}}    {family}: {shown} "
                        f"(coverage {coverage})"
                    )
        lines.append("")
        status = "ALL CONSISTENT" if self.all_consistent else "FAILURES"
        lines.append(f"{len(self.cells)} cells: {status}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_commands": self.n_commands,
            "buses": list(self.buses),
            "levels": list(self.levels),
            "all_consistent": self.all_consistent,
            "cells": [cell.to_dict() for cell in self.cells],
            "fault_counts": {
                bus: dict(counts)
                for bus, counts in self.fault_counts.items()
            },
            "fault_families": {
                bus: {kind: dict(row) for kind, row in families.items()}
                for bus, families in self.fault_families.items()
            },
            "scorecard": (
                None if (card := self.scorecard()) is None
                else card.to_dict()
            ),
        }


def _matrix_workload(seed: int, n_commands: int) -> list:
    from ..core.workload import generate_workload

    return generate_workload(
        seed=seed,
        n_commands=n_commands,
        address_span=0x400,
        max_burst=4,
        partial_byte_enable_fraction=0.2,
    )


def _traced_run(bundle, max_time: int, cycle_fs: int = 0,
                telemetry: bool = False):
    """Run a bundle with a causal SpanTracer (and, for telemetry
    sweeps, a ScorecardProbe) attached; returns
    ``(tracer, result, probe-or-None)``."""
    from ..trace.spans import SpanTracer

    probe = None
    if telemetry:
        from ..telemetry.scorecard import ScorecardProbe

        probe = ScorecardProbe(cycle_fs).attach(bundle.handle.sim.probes)
    tracer = SpanTracer(causal=True).attach(bundle.handle.sim.probes)
    result = bundle.run(max_time)
    tracer.finalize()
    return tracer, result, probe


def _verify_cell(
    cell: MatrixCell,
    bundle,
    tracer,
    result,
    reference,
    golden_image: list,
) -> None:
    """Fill *cell* with the three-way comparison against the reference."""
    from ..trace.correlate import correlate
    from ..verify.consistency import check_traces

    ref_tracer, ref_result, __ = reference
    trace_report = check_traces(
        ref_result.traces, result.traces, "functional", cell.label
    )
    diff = correlate(ref_tracer, tracer, "functional", cell.label)
    cell.transactions = len(diff.entries)
    cell.signature_matches = sum(
        1 for entry in diff.entries if entry.signature_match
    )
    cell.mismatches = list(trace_report.mismatches)
    cell.mismatches.extend(diff.report.mismatches)
    actual = bundle.memory.dump(0, len(golden_image))
    if list(actual) != list(golden_image):
        differing = sum(
            1 for want, got in zip(golden_image, actual) if want != got
        )
        cell.mismatches.append(
            f"memory image differs in {differing} words"
        )
    cell.consistent = not cell.mismatches
    cell.sim_time = result.sim_time


def run_swap_matrix(
    seed: int = 55,
    n_commands: int = 25,
    buses: typing.Sequence[str] = DEFAULT_BUSES,
    levels: typing.Sequence[str] = LEVELS,
    config=None,
    max_time: int = 200 * MS,
    fault_runs: int = 0,
    fault_workers: int = 1,
    telemetry: bool = False,
) -> SwapMatrixReport:
    """Sweep ``bus × level`` over one workload; verify every cell.

    :param config: optional
        :class:`~repro.flow.platforms.PciPlatformConfig` shared by the
        reference and every cell.
    :param fault_runs: when > 0, additionally run the stock demo fault
        campaign (scaled to about this many runs) once per bus family
        and record the classification counts plus the per-fault-family
        detection breakdown.
    :param fault_workers: worker processes per fault-leg campaign
        (1 = serial; the counts are identical either way).
    :param telemetry: attach a
        :class:`~repro.telemetry.scorecard.ScorecardProbe` to the
        reference and every cell, populating ``cell.score`` /
        ``report.reference_score`` and enabling
        :meth:`SwapMatrixReport.scorecard`.
    """
    import time as _time

    from ..core.workload import expected_memory_image
    from ..flow.platforms import build_functional_platform, build_platform

    workload = _matrix_workload(seed, n_commands)
    golden_image = expected_memory_image(workload, 0x400 // 4)
    report = SwapMatrixReport(seed, n_commands, buses, levels)
    # One clock basis for every cell so beats/cycle compares across
    # families (the functional reference has no wires, let alone a
    # clock of its own).
    cycle_fs = config.clock_period if config is not None else 30 * NS

    ref_bundle = build_functional_platform([workload], config)
    reference = _traced_run(
        ref_bundle, max_time, cycle_fs, telemetry=telemetry
    )
    if reference[2] is not None:
        report.reference_score = reference[2].score(
            "functional", "functional", "functional_reference"
        )

    for bus in report.buses:
        for level in report.levels:
            label = f"{bus}_{level}"
            cell = MatrixCell(bus, level, label)
            report.cells.append(cell)
            started = _time.perf_counter()
            try:
                bundle = build_platform(
                    [workload],
                    config,
                    bus=bus,
                    synthesize=level != "functional",
                    label=label,
                    synthesis_config=_cell_synthesis_config(level, config),
                )
                tracer, result, probe = _traced_run(
                    bundle, max_time, cycle_fs, telemetry=telemetry
                )
                _verify_cell(
                    cell, bundle, tracer, result, reference, golden_image
                )
                if probe is not None:
                    cell.score = probe.score(bus, level, label)
            except Exception as exc:  # keep sweeping; report the cell
                cell.error = f"{type(exc).__name__}: {exc}"
                cell.consistent = False
            cell.wall_seconds = _time.perf_counter() - started

    if fault_runs > 0:
        report.fault_counts, report.fault_families = _fault_leg(
            report.buses, seed, fault_runs, workers=fault_workers
        )
    return report


def _cell_synthesis_config(level: str, config):
    if level == "functional":
        return None
    from ..synthesis.tool import SynthesisConfig

    data_width = 32 if config is None else config.params.data_width
    backend = "compiled" if level == "compiled" else "interpreted"
    return SynthesisConfig(backend=backend, data_width=data_width)


def _fault_leg(
    buses: typing.Sequence[str],
    seed: int,
    runs: int,
    workers: int = 1,
) -> tuple[dict[str, dict[str, int]], dict[str, dict[str, dict[str, int]]]]:
    """Run the demo campaign per bus; returns ``(classification counts,
    per-fault-family breakdown)``, both keyed by bus family."""
    from collections import Counter

    from ..fault import demo_campaign_spec, per_kind_breakdown, run_campaign

    counts: dict[str, dict[str, int]] = {}
    families: dict[str, dict[str, dict[str, int]]] = {}
    for bus in buses:
        spec = demo_campaign_spec(platform=bus, seed=seed, runs=runs)
        result = run_campaign(spec, workers=workers)
        counts[bus] = dict(
            Counter(outcome.classification for outcome in result.outcomes)
        )
        families[bus] = {
            kind: {c: n for c, n in row.items() if n}
            for kind, row in per_kind_breakdown(result).items()
        }
    return counts, families
