"""The parameterized interface-element library (`repro.iface`).

One abstraction for every bus-interface IP: :class:`InterfaceElement`
(the paper's global-object-plus-protocol-processes pattern) elaborated
from :class:`IfaceParams` (data/address width, burst length,
response-FIFO depth). The swap matrix (:mod:`repro.iface.matrix`) proves
the library claim: the same application runs against PCI, Wishbone,
AXI4-Lite and TLM-GP elements at every refinement level with
per-transaction consistency verdicts.
"""

from .element import InterfaceElement, element_params, is_interface_element
from .params import IfaceParams

__all__ = [
    "IfaceParams",
    "InterfaceElement",
    "element_params",
    "is_interface_element",
    "run_swap_matrix",
    "SwapMatrixReport",
]


def __getattr__(name: str):
    # The matrix builds platforms (flow -> core -> iface); import it
    # lazily so `repro.iface` stays importable from the element modules.
    if name in ("run_swap_matrix", "SwapMatrixReport", "MatrixCell"):
        from . import matrix

        return getattr(matrix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
