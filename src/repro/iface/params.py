"""Structural parameters of a library interface element.

The paper's library promise only holds if the elements are *generic*:
one PCI handler that elaborates at 16, 32 or 64 bits, not three
hand-written variants. :class:`IfaceParams` is the single record every
element (and the generic platform builder) elaborates from — data and
address path widths, the burst ceiling and the response-FIFO depth of
the :class:`~repro.core.bus_interface.BusInterfaceChannel`.

Widths flow outward from here: into the :mod:`repro.hdl` signals of the
wire bundles, through :mod:`repro.synthesis` into the generated netlists
and emitted Verilog/VHDL, and into the compiled backend's masking — the
``generate``-style elaboration step of classic HDLs.
"""

from __future__ import annotations

import dataclasses

from ..errors import RefinementError


@dataclasses.dataclass(frozen=True)
class IfaceParams:
    """Elaboration parameters shared by every interface element.

    :param data_width: bit width of the data path (must be a multiple
        of 8 — byte enables select whole lanes).
    :param addr_width: bit width of the address path.
    :param max_burst: largest burst (in words) an element accepts.
    :param response_capacity: read responses the element's channel can
        buffer before the protocol side blocks (see
        :class:`~repro.core.bus_interface.BusInterfaceChannel`).
    """

    data_width: int = 32
    addr_width: int = 32
    max_burst: int = 8
    response_capacity: int = 4

    def __post_init__(self) -> None:
        if self.data_width < 8 or self.data_width % 8:
            raise RefinementError(
                f"data_width must be a positive multiple of 8, got "
                f"{self.data_width}"
            )
        if self.addr_width < 1:
            raise RefinementError(
                f"addr_width must be >= 1, got {self.addr_width}"
            )
        if self.max_burst < 1:
            raise RefinementError(
                f"max_burst must be >= 1, got {self.max_burst}"
            )
        if self.response_capacity < 1:
            raise RefinementError(
                f"response_capacity must be >= 1, got "
                f"{self.response_capacity}"
            )

    # -- derived structural facts -----------------------------------------

    @property
    def byte_lanes(self) -> int:
        """Byte-enable lanes on the data path."""
        return self.data_width // 8

    @property
    def byte_enable_mask(self) -> int:
        """All byte lanes enabled (e.g. ``0xF`` at 32 bits)."""
        return (1 << self.byte_lanes) - 1

    @property
    def data_mask(self) -> int:
        return (1 << self.data_width) - 1

    @property
    def addr_mask(self) -> int:
        return (1 << self.addr_width) - 1

    @property
    def word_bytes(self) -> int:
        """Bytes per full-width data beat."""
        return self.data_width // 8

    def with_response_capacity(self, response_capacity: int) -> "IfaceParams":
        """A copy with a different response-FIFO depth."""
        return dataclasses.replace(
            self, response_capacity=response_capacity
        )

    def describe(self) -> dict:
        """Flat record for reports and ``describe()`` metadata."""
        return {
            "data_width": self.data_width,
            "addr_width": self.addr_width,
            "max_burst": self.max_burst,
            "response_capacity": self.response_capacity,
            "byte_lanes": self.byte_lanes,
        }
