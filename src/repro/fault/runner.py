"""Serial and parallel campaign runners.

Every run is fully isolated: the worker rebuilds the platform from the
picklable :class:`~repro.fault.spec.CampaignSpec`, arms exactly one
fault, and classifies against the golden reference computed once by the
parent. Parallelism uses :class:`concurrent.futures.ProcessPoolExecutor`
so a run that corrupts interpreter state, leaks design objects or spins
cannot poison its siblings; a per-run wall-clock alarm kills runaways.

Outcomes are returned sorted by run id, so serial and parallel execution
produce byte-identical reports for the same spec and seed.
"""

from __future__ import annotations

import concurrent.futures
import math
import os
import signal as _signal
import time as _time
import typing

from .campaign import (
    GoldenReference,
    RunOutcome,
    TIMEOUT,
    execute_run,
    plan_campaign,
)
from .spec import CampaignSpec, RunSpec


class _WallTimeout(Exception):
    """Raised inside a run when its wall-clock budget expires."""


def _alarm_handler(signum: object, frame: object) -> None:
    raise _WallTimeout()


def _run_with_timeout(
    spec: CampaignSpec, run: RunSpec, golden: GoldenReference
) -> RunOutcome:
    """Execute one run under a wall-clock alarm (POSIX main thread)."""
    use_alarm = (
        hasattr(_signal, "SIGALRM") and spec.wall_timeout
        and _signal.getsignal(_signal.SIGALRM)
        in (_signal.SIG_DFL, _signal.default_int_handler, _alarm_handler, None)
    )
    started = _time.perf_counter()
    if use_alarm:
        _signal.signal(_signal.SIGALRM, _alarm_handler)
        _signal.alarm(max(1, math.ceil(spec.wall_timeout)))
    try:
        return execute_run(spec, run, golden)
    except _WallTimeout:
        return RunOutcome(
            run.run_id,
            run.kind,
            run.target_path,
            run.window,
            TIMEOUT,
            f"wall-clock timeout after {spec.wall_timeout}s",
            wall_seconds=_time.perf_counter() - started,
        )
    finally:
        if use_alarm:
            _signal.alarm(0)


#: Per-worker campaign context, installed once by the pool initializer
#: so only the (tiny) RunSpec travels per task.
_WORKER_STATE: dict = {}


def _init_worker(spec: CampaignSpec, golden: GoldenReference) -> None:
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["golden"] = golden


def _worker(run: RunSpec) -> RunOutcome:
    """Top-level (picklable) worker entry for the process pool."""
    return _run_with_timeout(_WORKER_STATE["spec"], run, _WORKER_STATE["golden"])


class CampaignResult:
    """Everything a campaign produced, ready for reporting."""

    def __init__(
        self,
        spec: CampaignSpec,
        golden: GoldenReference,
        outcomes: list[RunOutcome],
        wall_seconds: float,
        workers: int,
    ) -> None:
        self.spec = spec
        self.golden = golden
        self.outcomes = outcomes
        self.wall_seconds = wall_seconds
        self.workers = workers

    @property
    def runs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.outcomes) / self.wall_seconds

    def classification_of(self, run_id: int) -> str:
        return self.outcomes[run_id].classification


def default_workers() -> int:
    return max(1, min(8, (os.cpu_count() or 2) // 2))


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    progress: typing.Callable[[RunOutcome], None] | None = None,
    max_runs: int | None = None,
) -> CampaignResult:
    """Plan and execute a whole campaign.

    :param workers: 1 = serial in-process; >1 = that many worker
        processes.
    :param progress: optional callback invoked with each outcome as it
        lands (completion order, not run order).
    :param max_runs: truncate the expanded run list (smoke testing).
    """
    started = _time.perf_counter()
    golden, runs = plan_campaign(spec)
    if max_runs is not None:
        runs = runs[:max_runs]
    if workers <= 1:
        outcomes = []
        for run in runs:
            outcome = _run_with_timeout(spec, run, golden)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    else:
        outcomes = []
        chunksize = max(1, math.ceil(len(runs) / (workers * 4)))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(spec, golden),
        ) as pool:
            for outcome in pool.map(_worker, runs, chunksize=chunksize):
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
    outcomes.sort(key=lambda o: o.run_id)
    return CampaignResult(
        spec,
        golden,
        outcomes,
        _time.perf_counter() - started,
        workers,
    )
