"""Serial and parallel campaign runners with worker supervision.

Every run is fully isolated: the worker rebuilds the platform from the
picklable :class:`~repro.fault.spec.CampaignSpec`, arms exactly one
fault, and classifies against the golden reference computed once by the
parent. Parallelism uses :class:`concurrent.futures.ProcessPoolExecutor`
so a run that corrupts interpreter state, leaks design objects or spins
cannot poison its siblings; per-run wall budgets are enforced *inside*
the run by the in-sim watchdog (portable — no SIGALRM, no main-thread
requirement).

The parallel runner is self-healing: a worker process dying (crash,
OOM kill, hard exit) breaks the pool, but every outcome completed
before the break is kept. The unfinished runs are then retried one at
a time, each in its own single-worker pool — a pool break there
conclusively identifies the culprit (reported as ``worker_error``)
while every collateral run completes normally. The campaign always
terminates: the quarantine phase spawns at most one pool per
unfinished run.

Outcomes are returned sorted by run id, so serial and parallel execution
produce byte-identical reports for the same spec and seed.
"""

from __future__ import annotations

import concurrent.futures
import os
import time as _time
import typing
from concurrent.futures.process import BrokenProcessPool

from .campaign import (
    WORKER_ERROR,
    GoldenReference,
    RunOutcome,
    execute_run,
    plan_campaign,
)
from .spec import CampaignSpec, RunSpec


#: Per-worker campaign context, installed once by the pool initializer
#: so only the (tiny) RunSpec travels per task.
_WORKER_STATE: dict = {}


def _init_worker(
    spec: CampaignSpec,
    golden: GoldenReference,
    heartbeat_channel=None,
) -> None:
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["golden"] = golden
    # Live telemetry: a manager-queue proxy (picklable, unlike a raw
    # mp.Queue) the worker streams heartbeats through. None = off.
    if heartbeat_channel is not None:
        from ..telemetry.progress import HeartbeatSender

        _WORKER_STATE["heartbeats"] = HeartbeatSender(heartbeat_channel)
    else:
        _WORKER_STATE["heartbeats"] = None


def _worker(run: RunSpec) -> RunOutcome:
    """Top-level (picklable) worker entry for the process pool."""
    spec = _WORKER_STATE["spec"]
    if run.run_id in spec.crash_run_ids:
        # Chaos knob: die the way a segfaulting or OOM-killed worker
        # does — no exception, no cleanup, just a vanished process.
        os._exit(17)
    heartbeats = _WORKER_STATE.get("heartbeats")
    if heartbeats is not None:
        heartbeats.start(run.run_id)
    outcome = execute_run(spec, run, _WORKER_STATE["golden"])
    if heartbeats is not None:
        heartbeats.done(run.run_id, outcome.classification)
    return outcome


def _worker_error(run: RunSpec, detail: str) -> RunOutcome:
    return RunOutcome(
        run.run_id,
        run.kind,
        run.target_path,
        run.window,
        WORKER_ERROR,
        detail,
    )


class CampaignResult:
    """Everything a campaign produced, ready for reporting."""

    def __init__(
        self,
        spec: CampaignSpec,
        golden: GoldenReference,
        outcomes: list[RunOutcome],
        wall_seconds: float,
        workers: int,
        pool_restarts: int = 0,
    ) -> None:
        self.spec = spec
        self.golden = golden
        self.outcomes = outcomes
        self.wall_seconds = wall_seconds
        self.workers = workers
        #: Worker pools restarted after a worker process died.
        self.pool_restarts = pool_restarts

    @property
    def runs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.outcomes) / self.wall_seconds

    def classification_of(self, run_id: int) -> str:
        return self.outcomes[run_id].classification


def default_workers() -> int:
    return max(1, min(8, (os.cpu_count() or 2) // 2))


def _run_serial(
    spec: CampaignSpec,
    runs: list[RunSpec],
    golden: GoldenReference,
    progress: typing.Callable[[RunOutcome], None] | None,
    monitor=None,
) -> list[RunOutcome]:
    outcomes = []
    for run in runs:
        if monitor is not None:
            monitor.heartbeat(os.getpid(), run.run_id)
            monitor.tick()
        if run.run_id in spec.crash_run_ids:
            # Mirror what the self-healing pool reports for this run so
            # serial and parallel campaigns stay byte-identical.
            outcome = _worker_error(run, "worker process died (simulated)")
        else:
            outcome = execute_run(spec, run, golden)
        outcomes.append(outcome)
        if monitor is not None:
            monitor.heartbeat(os.getpid(), None)
        if progress is not None:
            progress(outcome)
    return outcomes


def _quarantine_run(
    spec: CampaignSpec,
    run: RunSpec,
    golden: GoldenReference,
    heartbeat_channel=None,
) -> RunOutcome:
    """Retry one run alone in a fresh single-worker pool.

    With no siblings sharing the pool, a break here pins the worker
    death on this exact run.
    """
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=1,
        initializer=_init_worker,
        initargs=(spec, golden, heartbeat_channel),
    ) as pool:
        try:
            return pool.submit(_worker, run).result()
        except BrokenProcessPool:
            return _worker_error(
                run, "worker process died (simulated)"
                if run.run_id in spec.crash_run_ids
                else "worker process died"
            )
        except Exception as error:  # noqa: BLE001
            return _worker_error(run, f"{type(error).__name__}: {error}")


def _run_parallel(
    spec: CampaignSpec,
    runs: list[RunSpec],
    golden: GoldenReference,
    workers: int,
    progress: typing.Callable[[RunOutcome], None] | None,
    monitor=None,
) -> tuple[list[RunOutcome], int]:
    outcomes: list[RunOutcome] = []
    unfinished: list[RunSpec] = []
    restarts = 0
    # Heartbeat transport only exists when someone is listening: a
    # manager process (whose queue proxy pickles into initargs, unlike
    # a raw mp.Queue) is real cost, so monitor-less campaigns take the
    # historical zero-telemetry path bit for bit.
    manager = None
    channel = None
    if monitor is not None:
        import multiprocessing

        manager = multiprocessing.Manager()
        channel = manager.Queue()
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(spec, golden, channel),
        ) as pool:
            futures = {pool.submit(_worker, run): run for run in runs}
            pending = set(futures)
            while pending:
                done, pending = concurrent.futures.wait(
                    pending,
                    timeout=0.2 if monitor is not None else None,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if monitor is not None:
                    monitor.drain(channel)
                    monitor.tick()
                for future in done:
                    run = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        # Completed siblings are already in `outcomes`;
                        # this run either killed its worker or is
                        # collateral damage — the quarantine phase
                        # below sorts out which.
                        unfinished.append(run)
                        continue
                    except Exception as error:  # noqa: BLE001
                        outcome = _worker_error(
                            run, f"{type(error).__name__}: {error}"
                        )
                    outcomes.append(outcome)
                    if progress is not None:
                        progress(outcome)
        for run in sorted(unfinished, key=lambda r: r.run_id):
            restarts += 1
            outcome = _quarantine_run(spec, run, golden, channel)
            if monitor is not None:
                monitor.drain(channel)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    finally:
        if manager is not None:
            manager.shutdown()
    return outcomes, restarts


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    progress: typing.Callable[[RunOutcome], None] | None = None,
    max_runs: int | None = None,
    monitor=None,
) -> CampaignResult:
    """Plan and execute a whole campaign.

    :param workers: 1 = serial in-process; >1 = that many worker
        processes.
    :param progress: optional callback invoked with each outcome as it
        lands (completion order, not run order).
    :param max_runs: truncate the expanded run list (smoke testing).
    :param monitor: optional
        :class:`~repro.telemetry.progress.CampaignProgress` aggregator;
        receives worker heartbeats and per-outcome counters live.
    """
    started = _time.perf_counter()
    golden, runs = plan_campaign(spec)
    if max_runs is not None:
        runs = runs[:max_runs]
    if monitor is not None:
        monitor.begin(len(runs))
        user_progress = progress

        def progress(outcome, _user=user_progress):  # noqa: F811
            monitor.record_outcome(outcome)
            monitor.tick()
            if _user is not None:
                _user(outcome)

    restarts = 0
    if workers <= 1:
        outcomes = _run_serial(spec, runs, golden, progress, monitor)
    else:
        outcomes, restarts = _run_parallel(
            spec, runs, golden, workers, progress, monitor
        )
    outcomes.sort(key=lambda o: o.run_id)
    if spec.flight_record_dir:
        _write_post_mortem_stubs(spec, outcomes)
    if monitor is not None:
        monitor.finish()
    return CampaignResult(
        spec,
        golden,
        outcomes,
        _time.perf_counter() - started,
        workers,
        pool_restarts=restarts,
    )


def _write_post_mortem_stubs(
    spec: CampaignSpec, outcomes: list[RunOutcome]
) -> None:
    """Header-only flight records for runs whose worker died.

    A hard-exited worker can't dump its own ring; the parent leaves a
    stub in its place so the record directory always has one file per
    run and post-mortem tooling can tell "no events" from "no file".
    """
    import json

    from .campaign import flight_record_path

    for outcome in outcomes:
        if outcome.classification != WORKER_ERROR:
            continue
        path = flight_record_path(spec.flight_record_dir, outcome.run_id)
        if os.path.exists(path):
            continue
        document = {
            "type": "header",
            "run_id": outcome.run_id,
            "campaign": spec.name,
            "platform": spec.platform,
            "classification": outcome.classification,
            "detail": outcome.detail,
            "seen": 0,
            "retained": 0,
            "dropped": 0,
            "post_mortem_stub": True,
        }
        try:
            os.makedirs(spec.flight_record_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(document, sort_keys=True) + "\n")
        except OSError:
            pass
