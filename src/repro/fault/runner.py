"""Serial and parallel campaign runners with worker supervision.

Every run is fully isolated: the worker rebuilds the platform from the
picklable :class:`~repro.fault.spec.CampaignSpec`, arms exactly one
fault, and classifies against the golden reference computed once by the
parent. Parallelism uses :class:`concurrent.futures.ProcessPoolExecutor`
so a run that corrupts interpreter state, leaks design objects or spins
cannot poison its siblings; per-run wall budgets are enforced *inside*
the run by the in-sim watchdog (portable — no SIGALRM, no main-thread
requirement).

The runner degrades gracefully along a ladder, worst failure last:

1. **retry** — a worker death breaks the pool but every completed
   outcome is kept; the unfinished runs are retried one at a time, each
   in its own single-worker pool (a break there conclusively identifies
   the culprit, reported as ``worker_error``, while collateral runs
   complete normally).
2. **quarantine** — that per-run retry phase itself; it spawns at most
   one pool per unfinished run, so the campaign always terminates.
3. **serial fallback** — when quarantine pools keep dying (crash rate
   ≥ :data:`SERIAL_FALLBACK_THRESHOLD` over ≥ 2 attempts with ≥ 2
   breaks), process isolation has stopped buying anything — the
   machine is likely out of memory or unable to fork. The remaining
   runs execute in-parent, with chaos-marked runs short-circuited to
   their ``worker_error`` classification rather than executed.

Durability (:mod:`repro.fault.durable`) hooks in at the same seam:
``journal_dir`` appends every outcome to a crash-safe journal as it
lands, ``resume_from`` replays a journal and re-enqueues only the
missing and quarantined runs, ``cache_dir`` serves identical re-runs
from a content-addressed result cache. ``KeyboardInterrupt`` drains
in-flight work instead of abandoning it and marks the result
``interrupted``.

Outcomes are returned sorted by run id, so serial, parallel and
interrupted-then-resumed execution produce byte-identical canonical
reports for the same spec and seed.
"""

from __future__ import annotations

import concurrent.futures
import os
import time as _time
import typing
from concurrent.futures.process import BrokenProcessPool

from .campaign import (
    WORKER_ERROR,
    GoldenReference,
    RunOutcome,
    execute_run,
    plan_campaign,
)
from .spec import CampaignSpec, RunSpec

#: Environment variable capping worker counts machine-wide. It is a
#: hard ceiling: it clamps both :func:`default_workers` and explicit
#: ``--workers N`` requests (CI boxes use it to stop a campaign from
#: oversubscribing shared runners).
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"

#: Quarantine crash-rate gate for the serial-fallback rung: fall back
#: once breaks/attempts reaches this with at least
#: :data:`SERIAL_FALLBACK_MIN_ATTEMPTS` attempts and
#: :data:`SERIAL_FALLBACK_MIN_BREAKS` broken pools.
SERIAL_FALLBACK_THRESHOLD = 0.5
SERIAL_FALLBACK_MIN_ATTEMPTS = 2
SERIAL_FALLBACK_MIN_BREAKS = 2


#: Per-worker campaign context, installed once by the pool initializer
#: so only the (tiny) RunSpec travels per task.
_WORKER_STATE: dict = {}


def _init_worker(
    spec: CampaignSpec,
    golden: GoldenReference,
    heartbeat_channel=None,
) -> None:
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["golden"] = golden
    # Live telemetry: a manager-queue proxy (picklable, unlike a raw
    # mp.Queue) the worker streams heartbeats through. None = off.
    if heartbeat_channel is not None:
        from ..telemetry.progress import HeartbeatSender

        _WORKER_STATE["heartbeats"] = HeartbeatSender(heartbeat_channel)
    else:
        _WORKER_STATE["heartbeats"] = None


def _worker(run: RunSpec) -> RunOutcome:
    """Top-level (picklable) worker entry for the process pool."""
    spec = _WORKER_STATE["spec"]
    if run.run_id in spec.crash_run_ids:
        # Chaos knob: die the way a segfaulting or OOM-killed worker
        # does — no exception, no cleanup, just a vanished process.
        os._exit(17)
    heartbeats = _WORKER_STATE.get("heartbeats")
    if heartbeats is not None:
        heartbeats.start(run.run_id)
    outcome = execute_run(spec, run, _WORKER_STATE["golden"])
    if heartbeats is not None:
        heartbeats.done(run.run_id, outcome.classification)
    return outcome


def _worker_error(run: RunSpec, detail: str) -> RunOutcome:
    return RunOutcome(
        run.run_id,
        run.kind,
        run.target_path,
        run.window,
        WORKER_ERROR,
        detail,
    )


class CampaignResult:
    """Everything a campaign produced, ready for reporting."""

    def __init__(
        self,
        spec: CampaignSpec,
        golden: GoldenReference,
        outcomes: list[RunOutcome],
        wall_seconds: float,
        workers: int,
        pool_restarts: int = 0,
        interrupted: bool = False,
        cache_hits: int = 0,
        cache_misses: int = 0,
        resumed: int = 0,
        serial_fallback_runs: int = 0,
        content_hash: "str | None" = None,
        planned_runs: "int | None" = None,
    ) -> None:
        self.spec = spec
        self.golden = golden
        self.outcomes = outcomes
        self.wall_seconds = wall_seconds
        self.workers = workers
        #: Worker pools restarted after a worker process died.
        self.pool_restarts = pool_restarts
        #: True when a KeyboardInterrupt cut the campaign short; the
        #: outcomes are the completed prefix (a journal makes them
        #: resumable).
        self.interrupted = interrupted
        #: Runs served from / recomputed past the result cache.
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        #: Outcomes replayed from a resumed journal (not re-executed).
        self.resumed = resumed
        #: Runs the degradation ladder executed in-parent after
        #: quarantine pools kept dying.
        self.serial_fallback_runs = serial_fallback_runs
        #: The campaign's content address when a durable feature was
        #: active, else None.
        self.content_hash = content_hash
        #: Size of the full expanded plan (== len(outcomes) unless
        #: interrupted).
        self.planned_runs = (
            planned_runs if planned_runs is not None else len(outcomes)
        )

    @property
    def runs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.outcomes) / self.wall_seconds

    def classification_of(self, run_id: int) -> str:
        return self.outcomes[run_id].classification


def _env_worker_ceiling() -> "int | None":
    raw = os.environ.get(MAX_WORKERS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return max(1, value)


def default_workers() -> int:
    """Half the cores, clamped to [1, 8] and the env ceiling."""
    workers = max(1, min(8, (os.cpu_count() or 2) // 2))
    ceiling = _env_worker_ceiling()
    if ceiling is not None:
        workers = min(workers, ceiling)
    return workers


def resolve_workers(requested: "int | None") -> int:
    """The worker-count convention shared by every campaign CLI.

    Precedence, strongest first:

    1. ``requested == 0`` (or negative) always means **serial** — the
       in-process runner, no pool at all.
    2. :data:`MAX_WORKERS_ENV` is a hard ceiling clamping everything
       else, including an explicit ``--workers N``.
    3. ``requested is None`` falls back to :func:`default_workers`.
    """
    if requested is not None and requested <= 0:
        return 1
    if requested is None:
        return default_workers()
    ceiling = _env_worker_ceiling()
    return min(requested, ceiling) if ceiling is not None else requested


def _run_serial(
    spec: CampaignSpec,
    runs: list[RunSpec],
    golden: GoldenReference,
    progress: typing.Callable[[RunOutcome], None] | None,
    monitor=None,
) -> tuple[list[RunOutcome], bool]:
    outcomes: list[RunOutcome] = []
    interrupted = False
    try:
        for run in runs:
            if monitor is not None:
                monitor.heartbeat(os.getpid(), run.run_id)
                monitor.tick()
            if run.run_id in spec.crash_run_ids:
                # Mirror what the self-healing pool reports for this
                # run so serial and parallel campaigns stay
                # byte-identical.
                outcome = _worker_error(
                    run, "worker process died (simulated)"
                )
            else:
                outcome = execute_run(spec, run, golden)
            outcomes.append(outcome)
            if monitor is not None:
                monitor.heartbeat(os.getpid(), None)
            if progress is not None:
                progress(outcome)
    except KeyboardInterrupt:
        # The interrupted run never classified; everything before it is
        # already journaled/reported. Partial results beat none.
        interrupted = True
    return outcomes, interrupted


def _serial_fallback_run(
    spec: CampaignSpec, run: RunSpec, golden: GoldenReference
) -> RunOutcome:
    """Bottom rung of the ladder: execute in-parent, no isolation.

    Chaos-marked runs are short-circuited to the classification every
    other execution path gives them — actually crashing would take the
    whole campaign down, which is exactly what the fallback exists to
    avoid.
    """
    if run.run_id in spec.crash_run_ids:
        return _worker_error(run, "worker process died (simulated)")
    try:
        return execute_run(spec, run, golden)
    except Exception as error:  # noqa: BLE001
        return _worker_error(run, f"{type(error).__name__}: {error}")


def _quarantine_run(
    spec: CampaignSpec,
    run: RunSpec,
    golden: GoldenReference,
    heartbeat_channel=None,
) -> tuple[RunOutcome, bool]:
    """Retry one run alone in a fresh single-worker pool.

    With no siblings sharing the pool, a break here pins the worker
    death on this exact run. Returns ``(outcome, pool_broke)`` so the
    caller can track the quarantine crash rate for the fallback rung.
    """
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=1,
        initializer=_init_worker,
        initargs=(spec, golden, heartbeat_channel),
    ) as pool:
        try:
            return pool.submit(_worker, run).result(), False
        except BrokenProcessPool:
            return _worker_error(
                run, "worker process died (simulated)"
                if run.run_id in spec.crash_run_ids
                else "worker process died"
            ), True
        except Exception as error:  # noqa: BLE001
            return _worker_error(
                run, f"{type(error).__name__}: {error}"
            ), False


def _run_parallel(
    spec: CampaignSpec,
    runs: list[RunSpec],
    golden: GoldenReference,
    workers: int,
    progress: typing.Callable[[RunOutcome], None] | None,
    monitor=None,
    on_event: typing.Callable[..., None] | None = None,
) -> tuple[list[RunOutcome], int, bool, int]:
    """Pool execution; returns ``(outcomes, restarts, interrupted,
    serial_fallback_runs)``."""
    outcomes: list[RunOutcome] = []
    unfinished: list[RunSpec] = []
    collected: set[int] = set()
    restarts = 0
    interrupted = False
    fallback_runs = 0

    def emit(event: str, **fields) -> None:
        if on_event is not None:
            on_event(event, **fields)

    def collect(future, run: RunSpec) -> None:
        try:
            outcome = future.result()
        except BrokenProcessPool:
            # Completed siblings are already in `outcomes`; this run
            # either killed its worker or is collateral damage — the
            # quarantine phase below sorts out which.
            unfinished.append(run)
            return
        except Exception as error:  # noqa: BLE001
            outcome = _worker_error(run, f"{type(error).__name__}: {error}")
        collected.add(run.run_id)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)

    # Heartbeat transport only exists when someone is listening: a
    # manager process (whose queue proxy pickles into initargs, unlike
    # a raw mp.Queue) is real cost, so monitor-less campaigns take the
    # historical zero-telemetry path bit for bit.
    manager = None
    channel = None
    if monitor is not None:
        import multiprocessing

        manager = multiprocessing.Manager()
        channel = manager.Queue()
    try:
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(spec, golden, channel),
        )
        futures: dict = {}
        try:
            futures = {pool.submit(_worker, run): run for run in runs}
            pending = set(futures)
            try:
                while pending:
                    done, pending = concurrent.futures.wait(
                        pending,
                        timeout=0.2 if monitor is not None else None,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    if monitor is not None:
                        monitor.drain(channel)
                        monitor.tick()
                    for future in done:
                        collect(future, futures[future])
            except KeyboardInterrupt:
                # Graceful drain: cancel what never started, let the
                # in-flight runs finish during pool shutdown, keep
                # every completed outcome.
                interrupted = True
                for future in pending:
                    future.cancel()
        finally:
            pool.shutdown(wait=True)
        if interrupted:
            for future, run in futures.items():
                if run.run_id in collected:
                    continue
                if future.done() and not future.cancelled():
                    collect(future, run)
            if monitor is not None:
                monitor.drain(channel)
            return outcomes, restarts, True, 0
        # Degradation ladder, rungs 2 and 3: per-run quarantine pools,
        # then in-parent serial fallback once pools keep dying.
        attempts = 0
        breaks = 0
        falling_back = False
        try:
            for run in sorted(unfinished, key=lambda r: r.run_id):
                if falling_back:
                    fallback_runs += 1
                    outcome = _serial_fallback_run(spec, run, golden)
                else:
                    restarts += 1
                    attempts += 1
                    emit("quarantine", run_id=run.run_id)
                    outcome, broke = _quarantine_run(
                        spec, run, golden, channel
                    )
                    if broke:
                        breaks += 1
                        emit("pool_break", run_id=run.run_id)
                    if (
                        attempts >= SERIAL_FALLBACK_MIN_ATTEMPTS
                        and breaks >= SERIAL_FALLBACK_MIN_BREAKS
                        and breaks / attempts >= SERIAL_FALLBACK_THRESHOLD
                    ):
                        falling_back = True
                        emit(
                            "serial_fallback",
                            attempts=attempts,
                            pool_breaks=breaks,
                        )
                if monitor is not None:
                    monitor.drain(channel)
                outcomes.append(outcome)
                if progress is not None:
                    progress(outcome)
        except KeyboardInterrupt:
            interrupted = True
    finally:
        if manager is not None:
            manager.shutdown()
    return outcomes, restarts, interrupted, fallback_runs


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    progress: typing.Callable[[RunOutcome], None] | None = None,
    max_runs: int | None = None,
    monitor=None,
    journal_dir: "str | None" = None,
    resume_from: "str | None" = None,
    cache_dir: "str | None" = None,
) -> CampaignResult:
    """Plan and execute a whole campaign.

    :param workers: 1 = serial in-process; >1 = that many worker
        processes (see :func:`resolve_workers` for the CLI convention).
    :param progress: optional callback invoked with each outcome as it
        lands (completion order, not run order).
    :param max_runs: truncate the expanded run list (smoke testing).
    :param monitor: optional
        :class:`~repro.telemetry.progress.CampaignProgress` aggregator;
        receives worker heartbeats and per-outcome counters live.
    :param journal_dir: start a fresh crash-safe journal here; every
        outcome is fsync'd into it the moment it classifies.
    :param resume_from: directory of an existing journal to resume.
        The journal's spec hash must match this campaign
        (:class:`~repro.errors.JournalError` otherwise); journaled
        content outcomes are replayed without re-execution, missing
        and ``worker_error`` runs are re-enqueued, and further
        outcomes append to the same journal.
    :param cache_dir: root of a content-addressed result cache; the
        plan + golden and every content outcome are stored under the
        campaign hash, so an identical re-invocation is served with
        zero simulator builds or runs.
    """
    started = _time.perf_counter()
    content_hash = None
    journal = None
    cache_entry = None
    fingerprint = None
    prior: dict[int, RunOutcome] = {}

    if journal_dir is not None or resume_from is not None or cache_dir is not None:
        # Imported lazily so the journal-off hot path stays untouched.
        from .durable import (
            CampaignJournal,
            ResultCache,
            campaign_content_hash,
            campaign_fingerprint,
        )

        content_hash = campaign_content_hash(spec, max_runs)
        fingerprint = campaign_fingerprint(spec, max_runs)
        if cache_dir is not None:
            cache_entry = ResultCache(cache_dir).entry(content_hash)

    golden = None
    runs: list[RunSpec] = []
    if cache_entry is not None:
        plan = cache_entry.load_plan()
        if plan is not None:
            golden, runs = plan
    if golden is None:
        golden, runs = plan_campaign(spec)
        if max_runs is not None:
            runs = runs[:max_runs]
        if cache_entry is not None:
            cache_entry.store_plan(fingerprint, golden, runs)
    planned_runs = len(runs)

    resumed_outcomes: list[RunOutcome] = []
    if resume_from is not None:
        journal, prior, _truncated = CampaignJournal.open_resume(
            resume_from, spec, max_runs
        )
        valid_ids = {run.run_id for run in runs}
        for run_id, outcome in sorted(prior.items()):
            # Keep every journaled content/infrastructure outcome
            # except worker deaths: those are the quarantined runs the
            # resume retries (the first rung of the ladder).
            if run_id in valid_ids and outcome.classification != WORKER_ERROR:
                resumed_outcomes.append(outcome)
        kept = {outcome.run_id for outcome in resumed_outcomes}
        runs = [run for run in runs if run.run_id not in kept]
    elif journal_dir is not None:
        journal = CampaignJournal.create(
            journal_dir, spec, max_runs, total_runs=planned_runs
        )

    cache_hits = 0
    cache_misses = 0
    cached_outcomes: list[RunOutcome] = []
    if cache_entry is not None:
        remaining: list[RunSpec] = []
        for run in runs:
            outcome = cache_entry.load_outcome(run.run_id)
            if outcome is not None:
                cached_outcomes.append(outcome)
                cache_hits += 1
            else:
                remaining.append(run)
                cache_misses += 1
        runs = remaining

    if monitor is not None:
        monitor.begin(planned_runs)
        if resumed_outcomes:
            monitor.record_resumed(len(resumed_outcomes))
        monitor.record_cache(cache_hits, cache_misses)

    user_progress = progress

    def dispatch(
        outcome: RunOutcome,
        journaled: bool = False,
        from_cache: bool = False,
    ) -> None:
        if journal is not None and not journaled:
            journal.append_outcome(outcome)
        if cache_entry is not None and not from_cache:
            cache_entry.store_outcome(outcome)
        if monitor is not None:
            monitor.record_outcome(outcome)
            monitor.tick()
        if user_progress is not None:
            user_progress(outcome)

    def on_event(event: str, **fields) -> None:
        if journal is not None:
            journal.append_event(event, **fields)

    interrupted = False
    restarts = 0
    fallback_runs = 0
    try:
        for outcome in resumed_outcomes:
            dispatch(outcome, journaled=True)
        for outcome in cached_outcomes:
            dispatch(outcome, from_cache=True)
        if workers <= 1:
            executed, interrupted = _run_serial(
                spec, runs, golden, dispatch, monitor
            )
        else:
            executed, restarts, interrupted, fallback_runs = _run_parallel(
                spec, runs, golden, workers, dispatch, monitor, on_event
            )
        outcomes = resumed_outcomes + cached_outcomes + executed
        outcomes.sort(key=lambda o: o.run_id)
        if interrupted and journal is not None:
            journal.append_event(
                "interrupted",
                completed=len(outcomes),
                planned=planned_runs,
            )
    finally:
        if journal is not None:
            journal.close()
    if spec.flight_record_dir:
        _write_post_mortem_stubs(spec, outcomes)
    if monitor is not None:
        monitor.finish()
    return CampaignResult(
        spec,
        golden,
        outcomes,
        _time.perf_counter() - started,
        workers,
        pool_restarts=restarts,
        interrupted=interrupted,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        resumed=len(resumed_outcomes),
        serial_fallback_runs=fallback_runs,
        content_hash=content_hash,
        planned_runs=planned_runs,
    )


def _write_post_mortem_stubs(
    spec: CampaignSpec, outcomes: list[RunOutcome]
) -> None:
    """Header-only flight records for runs whose worker died.

    A hard-exited worker can't dump its own ring; the parent leaves a
    stub in its place so the record directory always has one file per
    run and post-mortem tooling can tell "no events" from "no file".
    """
    from ..telemetry.recorder import write_post_mortem_stub
    from .campaign import flight_record_path

    for outcome in outcomes:
        if outcome.classification != WORKER_ERROR:
            continue
        path = flight_record_path(spec.flight_record_dir, outcome.run_id)
        if os.path.exists(path):
            continue
        write_post_mortem_stub(path, {
            "run_id": outcome.run_id,
            "campaign": spec.name,
            "platform": spec.platform,
            "classification": outcome.classification,
            "detail": outcome.detail,
        })
