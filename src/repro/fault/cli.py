"""``python -m repro fault`` — run a fault-injection campaign."""

from __future__ import annotations

import argparse
import sys

from ..errors import JournalError
from .report import render_report, report_as_json
from .runner import resolve_workers, run_campaign
from .spec import PLATFORMS, demo_campaign_spec


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--platform", choices=PLATFORMS, default="pci",
        help="platform to attack (default pci)",
    )
    parser.add_argument(
        "--runs", type=int, default=60,
        help="approximate campaign size (default 60)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: half the cores, capped at 8; "
             "0 = serial in-process; the REPRO_MAX_WORKERS environment "
             "variable is a hard ceiling over both)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-run wall-clock timeout in seconds (default 30)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the full JSON report instead of the table",
    )
    parser.add_argument(
        "--canonical", action="store_true",
        help="with --json: emit only content fields (no wall clock, "
             "workers, cache counters), sorted keys — byte-identical "
             "across serial/parallel/resumed execution",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="list every run in the table report",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="also run the campaign lint rules (FLT001) before executing",
    )
    parser.add_argument(
        "--trace-spans", action="store_true",
        help="attach a span tracer to every run and report per-run "
             "span counts and mean latencies",
    )
    parser.add_argument(
        "--resilience", action="store_true",
        help="arm the recovery stack (guarded-call retry policies + "
             "protocol replay) on every run; faults the stack absorbs "
             "classify as 'recovered'",
    )
    parser.add_argument(
        "--synthesize", action="store_true",
        help="apply communication synthesis to every run's platform "
             "(golden and faulty alike)",
    )
    parser.add_argument(
        "--backend", choices=("interpreted", "compiled"),
        default="interpreted",
        help="execution backend for synthesized channels (compiled "
             "implies --synthesize; default interpreted)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="attach a communication scorecard probe to every run and "
             "report campaign-level utilization/throughput/latency "
             "digests (identical for serial and parallel execution)",
    )
    parser.add_argument(
        "--flight-record", metavar="DIR", default=None,
        help="dump every run's flight-recorder ring as "
             "DIR/run<NNN>.jsonl (replay with 'python -m repro "
             "telemetry')",
    )
    parser.add_argument(
        "--journal", metavar="DIR", default=None,
        help="keep a crash-safe journal of every outcome under DIR; "
             "an interrupted or killed campaign resumes with --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the campaign journaled under --journal DIR: "
             "replay completed outcomes, re-run only missing and "
             "quarantined runs, append to the same journal",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="content-addressed result cache root; an identical "
             "re-invocation is served from it with zero simulator runs",
    )
    parser.add_argument(
        "--inject-crash", metavar="IDS", default=None,
        help="chaos knob: comma-separated run ids whose workers "
             "hard-exit (exercises the self-healing pool, the journal "
             "and the resume path)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="render a live progress ticker (runs/s, ETA, "
             "classification breakdown, worker heartbeats) on stderr",
    )
    parser.add_argument(
        "--progress-json", metavar="PATH", default=None,
        help="mirror live campaign progress to PATH as JSON "
             "(rewritten on every tick; final state on completion)",
    )


def _build_monitor(args: argparse.Namespace):
    """A CampaignProgress wired to the ticker/JSON mirror, or None."""
    if not (args.live or args.progress_json):
        return None
    from ..telemetry.progress import CampaignProgress

    def on_tick(progress: CampaignProgress) -> None:
        if args.live:
            line = progress.render_ticker()
            if sys.stderr.isatty():
                sys.stderr.write("\r\x1b[2K" + line)
            else:
                sys.stderr.write(line + "\n")
            sys.stderr.flush()
        if args.progress_json:
            try:
                progress.write_json(args.progress_json)
            except OSError:
                pass

    return CampaignProgress(on_tick=on_tick)


def run(args: argparse.Namespace) -> int:
    seed = args.seed if args.seed is not None else 11
    synthesize = args.synthesize or args.backend == "compiled"
    if synthesize and args.platform == "functional":
        print(
            "fault: the functional platform has no clock to synthesize "
            "against; use --platform pci, wishbone, axi4lite or tlmgp"
        )
        return 2
    if args.resume and not args.journal:
        print("fault: --resume needs --journal DIR", file=sys.stderr)
        return 2
    spec = demo_campaign_spec(
        platform=args.platform, seed=seed, runs=args.runs
    )
    spec.wall_timeout = args.timeout
    spec.trace_spans = args.trace_spans
    spec.resilience = args.resilience
    spec.synthesize = synthesize
    spec.backend = args.backend
    spec.telemetry = args.telemetry
    spec.flight_record_dir = args.flight_record
    if args.inject_crash:
        try:
            spec.crash_run_ids = tuple(
                int(part) for part in args.inject_crash.split(",") if part
            )
        except ValueError:
            print(
                f"fault: --inject-crash wants comma-separated run ids, "
                f"got {args.inject_crash!r}",
                file=sys.stderr,
            )
            return 2
    if args.lint:
        from ..lint import lint_campaign

        report = lint_campaign(spec)
        print(report.render())
        if report.errors:
            return 1
    workers = resolve_workers(args.workers)
    monitor = _build_monitor(args)
    try:
        result = run_campaign(
            spec,
            workers=workers,
            max_runs=args.runs,
            monitor=monitor,
            journal_dir=None if args.resume else args.journal,
            resume_from=args.journal if args.resume else None,
            cache_dir=args.cache,
        )
    except JournalError as error:
        print(f"fault: {error}", file=sys.stderr)
        return 2
    if monitor is not None and args.live and sys.stderr.isatty():
        sys.stderr.write("\n")
    if args.json:
        print(report_as_json(result, canonical=args.canonical))
    else:
        print(render_report(result, verbose=args.verbose))
        if args.flight_record:
            print(f"\nflight records: {args.flight_record}/run*.jsonl "
                  "(replay with 'python -m repro telemetry <file>')")
    if result.interrupted:
        # The partial report above is real; the exit code still says
        # "cut short" the way shells expect (128 + SIGINT).
        return 130
    if any(
        o.classification in ("error", "worker_error")
        for o in result.outcomes
    ):
        return 1
    return 0
