"""Campaign reporting: coverage table and JSON document."""

from __future__ import annotations

import json
import typing

from .campaign import (
    BENIGN,
    CLASSIFICATIONS,
    DETECTED,
    RECOVERED,
    SILENT,
    classify_counts,
    detection_coverage,
)
from .runner import CampaignResult


def recovery_rate(outcomes: typing.Iterable) -> float | None:
    """``recovered / (recovered + detected + silent)``.

    The fraction of effective faults the resilience stack absorbed;
    ``None`` when no fault had an effect (or resilience was off and
    nothing recovered).
    """
    counts = classify_counts(outcomes)
    effective = counts[RECOVERED] + counts[DETECTED] + counts[SILENT]
    if not effective:
        return None
    return counts[RECOVERED] / effective


def recovery_stats(outcomes: typing.Iterable) -> dict:
    """Aggregate recovery-event counts and latency over all outcomes."""
    events = 0
    latencies = []
    for outcome in outcomes:
        events += outcome.recovery_events
        if outcome.recovery_events and outcome.recovery_latency:
            latencies.append(outcome.recovery_latency)
    return {
        "recovery_events": events,
        "mean_recovery_latency": (
            int(sum(latencies) / len(latencies)) if latencies else 0
        ),
        "max_recovery_latency": max(latencies) if latencies else 0,
    }


def _format_table(
    headers: typing.Sequence[str], rows: typing.Sequence[typing.Sequence]
) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(row: typing.Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), rule, *(line(r) for r in cells)])


def merged_telemetry(result: CampaignResult):
    """All per-run scorecards folded into one campaign-level
    :class:`~repro.telemetry.scorecard.CellScore`.

    Digest merging is associative and commutative, so the campaign
    numbers are identical whether the runs executed serially or across
    a process pool — and outcomes are sorted by run id anyway.
    """
    from ..telemetry.scorecard import CellScore

    shards = [
        CellScore.from_dict(outcome.score)
        for outcome in result.outcomes
        if getattr(outcome, "score", None)
    ]
    if not shards:
        return None
    total = CellScore(
        shards[0].bus, shards[0].level, f"campaign:{result.spec.name}"
    )
    total.cycle_fs = shards[0].cycle_fs
    for shard in shards:
        total.merge(shard)
    return total


def per_kind_breakdown(result: CampaignResult) -> dict:
    """``{fault kind: {classification: count}}`` over all outcomes."""
    breakdown: dict = {}
    for outcome in result.outcomes:
        row = breakdown.setdefault(
            outcome.kind, {c: 0 for c in CLASSIFICATIONS}
        )
        row[outcome.classification] += 1
    return breakdown


def render_report(result: CampaignResult, verbose: bool = False) -> str:
    """Human-readable campaign report."""
    counts = classify_counts(result.outcomes)
    coverage = detection_coverage(result.outcomes)
    rate = recovery_rate(result.outcomes)
    rows = []
    for kind, row in sorted(per_kind_breakdown(result).items()):
        effective = row[DETECTED] + row[SILENT]
        kind_coverage = (
            f"{row[DETECTED] / effective:6.1%}" if effective else "   n/a"
        )
        rows.append(
            [kind, sum(row.values()), row[DETECTED], row[SILENT],
             row[BENIGN], row[RECOVERED], kind_coverage]
        )
    restarts = getattr(result, "pool_restarts", 0)
    planned = getattr(result, "planned_runs", len(result.outcomes))
    lines = [
        f"fault campaign {result.spec.name!r} "
        f"(platform={result.spec.platform}, seed={result.spec.seed})",
        f"  runs: {len(result.outcomes)}  workers: {result.workers}  "
        f"wall: {result.wall_seconds:.2f}s  "
        f"({result.runs_per_second:.1f} runs/s)"
        + (f"  pool restarts: {restarts}" if restarts else ""),
    ]
    if getattr(result, "interrupted", False):
        lines.append(
            f"  INTERRUPTED: {len(result.outcomes)}/{planned} runs "
            "completed before the interrupt; resume with "
            "--journal DIR --resume"
        )
    durable_bits = []
    if getattr(result, "resumed", 0):
        durable_bits.append(f"resumed {result.resumed} journaled outcomes")
    if getattr(result, "cache_hits", 0) or getattr(result, "cache_misses", 0):
        durable_bits.append(
            f"cache {result.cache_hits} hits / "
            f"{result.cache_misses} misses"
        )
    if getattr(result, "serial_fallback_runs", 0):
        durable_bits.append(
            f"serial fallback absorbed {result.serial_fallback_runs} runs"
        )
    if durable_bits:
        lines.append("  durability: " + ", ".join(durable_bits))
    lines += [
        "",
        _format_table(
            ["fault", "runs", "detected", "silent", "benign", "recovered",
             "coverage"],
            rows,
        ),
        "",
    ]
    summary = "  ".join(f"{c}={counts[c]}" for c in CLASSIFICATIONS)
    lines.append(f"totals: {summary}")
    if coverage is None:
        lines.append("detection coverage: n/a (no effective faults)")
    else:
        lines.append(
            f"detection coverage: {coverage:.1%} "
            f"({counts[DETECTED]}/{counts[DETECTED] + counts[SILENT]} "
            "effective faults detected)"
        )
    if result.spec.resilience:
        stats = recovery_stats(result.outcomes)
        rate_text = "n/a" if rate is None else f"{rate:.1%}"
        lines.append(
            f"recovery: {counts[RECOVERED]} runs absorbed "
            f"({rate_text} of effective faults), "
            f"{stats['recovery_events']} recovery events, "
            f"mean latency {stats['mean_recovery_latency']} fs"
        )
    telemetry = merged_telemetry(result)
    if telemetry is not None:
        fs_per_ns = 1_000_000
        latency = telemetry.latency
        lines.append(
            f"telemetry: {telemetry.transactions} txns over "
            f"{len([o for o in result.outcomes if o.score])} scored runs, "
            f"util {telemetry.utilization:.1%}, "
            f"{telemetry.throughput:.3f} beats/cyc, "
            f"latency p50/p95/p99 = "
            f"{latency.p50 / fs_per_ns:.0f}/"
            f"{latency.p95 / fs_per_ns:.0f}/"
            f"{latency.p99 / fs_per_ns:.0f} ns"
        )
    if verbose:
        lines.append("")
        lines.append(
            _format_table(
                ["run", "fault", "target", "class", "detail"],
                [
                    [
                        f"{o.run_id:03d}", o.kind, o.target_path,
                        o.classification, o.detail[:60],
                    ]
                    for o in result.outcomes
                ],
            )
        )
    return "\n".join(lines)


def report_as_dict(result: CampaignResult, canonical: bool = False) -> dict:
    """JSON-ready document of the whole campaign.

    :param canonical: drop every machine- and schedule-dependent field
        (wall clock, throughput, worker count, pool restarts, cache and
        resume counters, the interrupted flag; per-outcome wall times
        are zeroed). Two canonical documents are byte-identical iff the
        campaigns produced the same *content* — the contract the
        durability tests and CI smoke assert across serial, parallel
        and interrupted-then-resumed execution.
    """
    document = {
        "campaign": result.spec.name,
        "platform": result.spec.platform,
        "seed": result.spec.seed,
        "runs": len(result.outcomes),
        "classifications": classify_counts(result.outcomes),
        "detection_coverage": detection_coverage(result.outcomes),
        "resilience": result.spec.resilience,
        "recovery_rate": recovery_rate(result.outcomes),
        "recovery": recovery_stats(result.outcomes),
        "telemetry": (
            None if (merged := merged_telemetry(result)) is None
            else merged.to_dict()
        ),
        "per_kind": per_kind_breakdown(result),
        "golden": {
            "horizon": result.golden.horizon,
            "transactions": sum(
                len(t) for t in result.golden.traces.values()
            ),
        },
        "outcomes": [o.to_dict(canonical=canonical) for o in result.outcomes],
    }
    if not canonical:
        document.update({
            "workers": result.workers,
            "wall_seconds": round(result.wall_seconds, 4),
            "runs_per_second": round(result.runs_per_second, 3),
            "pool_restarts": getattr(result, "pool_restarts", 0),
            "interrupted": getattr(result, "interrupted", False),
            "planned_runs": getattr(
                result, "planned_runs", len(result.outcomes)
            ),
            "resumed": getattr(result, "resumed", 0),
            "cache_hits": getattr(result, "cache_hits", 0),
            "cache_misses": getattr(result, "cache_misses", 0),
            "serial_fallback_runs": getattr(
                result, "serial_fallback_runs", 0
            ),
            "content_hash": getattr(result, "content_hash", None),
        })
    return document


def report_as_json(
    result: CampaignResult, indent: int = 2, canonical: bool = False
) -> str:
    return json.dumps(
        report_as_dict(result, canonical=canonical),
        indent=indent,
        sort_keys=canonical,
    )
