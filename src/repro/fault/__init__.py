"""repro.fault — fault-injection campaigns over the executable platforms.

The subsystem answers the verification-closure question the paper's
methodology raises but cannot answer statically: *would the platform's
runtime checkers actually notice if the synthesized communication
hardware misbehaved?* It injects kernel-level faults (pin, scheduling
and transaction layer) into unmodified application models, runs each
faulty platform against a golden reference, and reports detection
coverage.
"""

from ..errors import JournalError
from .campaign import (
    BENIGN,
    CLASSIFICATIONS,
    DETECTED,
    ERROR,
    RECOVERED,
    SILENT,
    TIMEOUT,
    WORKER_ERROR,
    GoldenReference,
    RunOutcome,
    build_campaign_platform,
    classify_counts,
    detection_coverage,
    execute_run,
    injectable_targets,
    plan_campaign,
    run_golden,
)
from .models import (
    FAULT_KINDS,
    BitFlipFault,
    CommandCorruptionFault,
    DelayedGrantFault,
    DroppedRequestFault,
    FaultInjectionError,
    FaultModel,
    StuckAtFault,
    TransientGlitchFault,
    make_fault,
)
from .durable import (
    CACHEABLE_CLASSIFICATIONS,
    CacheEntry,
    CampaignJournal,
    ResultCache,
    campaign_content_hash,
    campaign_fingerprint,
)
from .report import (
    per_kind_breakdown,
    recovery_rate,
    recovery_stats,
    render_report,
    report_as_dict,
    report_as_json,
)
from .runner import (
    CampaignResult,
    default_workers,
    resolve_workers,
    run_campaign,
)
from .spec import (
    PLATFORMS,
    CampaignSpec,
    FaultSpec,
    RunSpec,
    demo_campaign_spec,
    expand_campaign,
    match_targets,
)

__all__ = [
    "BENIGN",
    "CACHEABLE_CLASSIFICATIONS",
    "CLASSIFICATIONS",
    "DETECTED",
    "ERROR",
    "FAULT_KINDS",
    "PLATFORMS",
    "RECOVERED",
    "SILENT",
    "TIMEOUT",
    "WORKER_ERROR",
    "BitFlipFault",
    "CacheEntry",
    "CampaignJournal",
    "CampaignResult",
    "CampaignSpec",
    "CommandCorruptionFault",
    "DelayedGrantFault",
    "DroppedRequestFault",
    "FaultInjectionError",
    "FaultModel",
    "FaultSpec",
    "GoldenReference",
    "JournalError",
    "ResultCache",
    "RunOutcome",
    "RunSpec",
    "StuckAtFault",
    "TransientGlitchFault",
    "build_campaign_platform",
    "campaign_content_hash",
    "campaign_fingerprint",
    "classify_counts",
    "default_workers",
    "demo_campaign_spec",
    "detection_coverage",
    "execute_run",
    "expand_campaign",
    "injectable_targets",
    "make_fault",
    "match_targets",
    "per_kind_breakdown",
    "plan_campaign",
    "recovery_rate",
    "recovery_stats",
    "render_report",
    "report_as_dict",
    "report_as_json",
    "resolve_workers",
    "run_campaign",
    "run_golden",
]
