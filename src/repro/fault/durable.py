"""Durable fault campaigns: crash-safe journal, resume, result cache.

Long campaigns are multi-process jobs; a mid-campaign crash, OOM kill
or Ctrl-C must never throw away completed work. This module gives the
runner three durability primitives:

* :class:`CampaignJournal` — a crash-safe append-only JSONL journal.
  The first line is an fsync'd header binding the file to the
  campaign's **content hash** (spec + design builder id + seed +
  backend + repro version); every completed
  :class:`~repro.fault.campaign.RunOutcome` is then appended as one
  sorted-key JSON line wrapped in a CRC32 envelope and fsync'd, so a
  parent SIGKILL loses at most the line being written. On open for
  resume a torn tail line is detected and truncated; corruption
  anywhere *else* — a checksum mismatch mid-file, a missing header —
  refuses with :class:`~repro.errors.JournalError` rather than
  silently recomputing.

* :func:`campaign_content_hash` / :func:`campaign_fingerprint` — the
  spec-hash contract. Everything that determines campaign behaviour
  (every :class:`~repro.fault.spec.FaultSpec` line, platform/builder,
  seed, backend, workload knobs, the ``max_runs`` truncation) is folded
  into one canonical document hashed with
  :func:`~repro.resilience.checkpoint.stable_content_hash`. A journal
  or cache entry is only ever replayed against the exact campaign that
  wrote it.

* :class:`ResultCache` — a content-addressed result cache. One
  directory per campaign hash holds the pickled golden reference, the
  expanded run plan and one CRC-checked JSON document per content
  outcome, so re-running an identical campaign is a pure cache hit:
  zero simulator builds, zero runs. Infrastructure outcomes
  (``timeout``/``error``/``worker_error``) are machine artifacts, not
  content, and are deliberately never cached.

Journal line grammar (one JSON object per line, sorted keys)::

    {"crc": <crc32 of canonical payload JSON>, "payload": {...}}

with payload ``type`` one of ``header``, ``outcome`` or ``event``
(degradation-ladder markers: quarantine, pool break, serial fallback).
"""

from __future__ import annotations

import json
import os
import pickle
import typing
import zlib

from .._version import __version__
from ..errors import JournalError
from ..resilience.checkpoint import stable_content_hash
from .campaign import (
    BENIGN,
    DETECTED,
    RECOVERED,
    SILENT,
    GoldenReference,
    RunOutcome,
)
from .spec import CampaignSpec, RunSpec

#: Journal/cache on-disk format revision; bumped on incompatible change.
JOURNAL_FORMAT = 1

#: File name of the journal inside its ``--journal DIR``.
JOURNAL_NAME = "journal.jsonl"

#: Classifications worth caching: genuine campaign content. Timeouts,
#: infrastructure errors and worker deaths depend on the machine the
#: campaign happened to run on.
CACHEABLE_CLASSIFICATIONS = (DETECTED, SILENT, BENIGN, RECOVERED)


# -- spec-hash contract ----------------------------------------------------------


def spec_document(spec: CampaignSpec) -> dict:
    """Canonical plain-data form of every behaviour-affecting spec field.

    Observability knobs that cannot change an outcome's content
    (``flight_record_dir``, ``flight_record_capacity``) are deliberately
    excluded so turning telemetry dumps on does not invalidate a cache.
    """
    return {
        "name": spec.name,
        "platform": spec.platform,
        "seed": spec.seed,
        "n_apps": spec.n_apps,
        "commands_per_app": spec.commands_per_app,
        "max_time": spec.max_time,
        "wall_timeout": spec.wall_timeout,
        "address_span": spec.address_span,
        "write_fraction": spec.write_fraction,
        "think_time": spec.think_time,
        "trace_spans": spec.trace_spans,
        "resilience": spec.resilience,
        "crash_run_ids": sorted(spec.crash_run_ids),
        "synthesize": spec.synthesize,
        "backend": spec.backend,
        "telemetry": spec.telemetry,
        "faults": [fault.to_dict() for fault in spec.faults],
    }


def builder_id(spec: CampaignSpec) -> str:
    """The design builder a campaign's platforms come from."""
    return f"repro.flow.platforms.build_platform(bus={spec.platform!r})"


def campaign_fingerprint(
    spec: CampaignSpec, max_runs: "int | None" = None
) -> dict:
    """The full document the content hash is computed over."""
    return {
        "format": JOURNAL_FORMAT,
        "repro_version": __version__,
        "builder": builder_id(spec),
        "seed": spec.seed,
        "backend": spec.backend,
        "max_runs": max_runs,
        "spec": spec_document(spec),
    }


def campaign_content_hash(
    spec: CampaignSpec, max_runs: "int | None" = None
) -> str:
    """The campaign's content address (SHA-256 hex)."""
    return stable_content_hash(campaign_fingerprint(spec, max_runs))


# -- CRC32 line envelope ---------------------------------------------------------


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _crc_of(payload: dict) -> int:
    return zlib.crc32(_canonical(payload).encode("utf-8")) & 0xFFFFFFFF


def encode_line(payload: dict) -> str:
    """One journal/cache line: the payload inside its CRC32 envelope."""
    return _canonical({"crc": _crc_of(payload), "payload": payload})


def decode_line(line: str) -> dict:
    """Parse and checksum-verify one line; raises ``ValueError``."""
    document = json.loads(line)
    if not isinstance(document, dict) or "payload" not in document:
        raise ValueError("line is not a CRC envelope")
    payload = document["payload"]
    if not isinstance(payload, dict):
        raise ValueError("payload is not an object")
    if document.get("crc") != _crc_of(payload):
        raise ValueError("checksum mismatch")
    return payload


def journal_path(directory: str) -> str:
    return os.path.join(directory, JOURNAL_NAME)


# -- the journal -----------------------------------------------------------------


class CampaignJournal:
    """Crash-safe append-only journal of one campaign's outcomes.

    Use :meth:`create` for a fresh campaign and :meth:`open_resume` to
    continue an interrupted one; both leave the instance open for
    appending. Every append is flushed and fsync'd before returning —
    a journaled outcome survives any subsequent crash of the parent.
    """

    def __init__(self, path: str, content_hash: str) -> None:
        self.path = path
        self.content_hash = content_hash
        self._stream: typing.IO[str] | None = None
        #: Outcome lines appended by this process (not resumed ones).
        self.appended = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str,
        spec: CampaignSpec,
        max_runs: "int | None" = None,
        total_runs: int = 0,
    ) -> "CampaignJournal":
        """Start a fresh journal (truncating any previous one)."""
        os.makedirs(directory, exist_ok=True)
        journal = cls(
            journal_path(directory), campaign_content_hash(spec, max_runs)
        )
        journal._stream = open(journal.path, "w", encoding="utf-8")
        journal._append({
            "type": "header",
            "format": JOURNAL_FORMAT,
            "spec_hash": journal.content_hash,
            "campaign": spec.name,
            "platform": spec.platform,
            "seed": spec.seed,
            "backend": spec.backend,
            "total_runs": total_runs,
            "repro_version": __version__,
        })
        return journal

    @classmethod
    def open_resume(
        cls,
        directory: str,
        spec: CampaignSpec,
        max_runs: "int | None" = None,
    ) -> "tuple[CampaignJournal, dict[int, RunOutcome], bool]":
        """Open an existing journal for resumption.

        Returns ``(journal, outcomes-by-run-id, tail_truncated)``. The
        header's spec hash must match the campaign being resumed;
        anything else is refused with a clear :class:`JournalError` —
        resuming someone else's journal would merge unrelated results.
        """
        path = journal_path(directory)
        header, payloads, valid_bytes, truncated = _read_journal(path)
        expected = campaign_content_hash(spec, max_runs)
        found = header.get("spec_hash")
        if found != expected:
            raise JournalError(
                f"journal at {path} was written for a different campaign "
                f"(journal spec hash {str(found)[:12]}..., this campaign "
                f"{expected[:12]}...); refusing to resume — check the "
                "spec/seed/backend/--runs arguments, or start over "
                "without --resume"
            )
        if truncated:
            # Drop the torn tail on disk too, so the file we append to
            # is exactly the validated prefix.
            with open(path, "r+b") as stream:
                stream.truncate(valid_bytes)
        outcomes: dict[int, RunOutcome] = {}
        for payload in payloads:
            if payload.get("type") == "outcome":
                outcome = RunOutcome.from_dict(payload["outcome"])
                outcomes[outcome.run_id] = outcome
        journal = cls(path, expected)
        journal._stream = open(path, "a", encoding="utf-8")
        return journal, outcomes, truncated

    # -- appending -----------------------------------------------------------

    def _append(self, payload: dict) -> None:
        assert self._stream is not None
        self._stream.write(encode_line(payload) + "\n")
        self._stream.flush()
        os.fsync(self._stream.fileno())

    def append_outcome(self, outcome: RunOutcome) -> None:
        self._append({"type": "outcome", "outcome": outcome.to_dict()})
        self.appended += 1

    def append_event(self, event: str, **fields: object) -> None:
        """Degradation-ladder / lifecycle marker (quarantine, pool
        break, serial fallback, interrupt)."""
        payload: dict = {"type": "event", "event": event}
        payload.update(fields)
        self._append(payload)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __repr__(self) -> str:
        return (
            f"CampaignJournal({self.path}, "
            f"hash={self.content_hash[:12]}...)"
        )


def _read_journal(path: str) -> tuple[dict, list[dict], int, bool]:
    """Validate a journal file line by line.

    Returns ``(header, payloads, valid_byte_length, tail_truncated)``.
    The last line is allowed to be torn (unparseable, checksum-broken
    or missing its newline — the signature of a crash mid-write) and is
    dropped; the same damage anywhere else means the file was edited or
    the disk corrupted it, and the journal refuses.
    """
    if not os.path.exists(path):
        raise JournalError(
            f"no journal at {path}; run with --journal DIR (without "
            "--resume) to start one"
        )
    with open(path, "rb") as stream:
        raw = stream.read()
    if not raw.strip():
        raise JournalError(
            f"journal at {path} is empty — its header was never "
            "committed, so there is nothing to bind a resume to; start "
            "a fresh campaign without --resume"
        )
    lines = raw.split(b"\n")
    # A trailing newline leaves one empty chunk at the end; its absence
    # means the final line never finished writing.
    complete_tail = lines and lines[-1] == b""
    if complete_tail:
        lines = lines[:-1]
    payloads: list[dict] = []
    valid_bytes = 0
    truncated = False
    for index, line in enumerate(lines):
        last = index == len(lines) - 1
        try:
            if last and not complete_tail:
                raise ValueError("unterminated line")
            payload = decode_line(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            if last:
                truncated = True
                break
            raise JournalError(
                f"journal at {path} is corrupt at line {index + 1} "
                f"({error}); a non-tail line can only be damaged by "
                "external editing or disk corruption — refusing to "
                "resume from it"
            ) from None
        payloads.append(payload)
        valid_bytes += len(line) + 1
    if not payloads or payloads[0].get("type") != "header":
        raise JournalError(
            f"journal at {path} has no valid header line; refusing to "
            "resume"
        )
    if payloads[0].get("format") != JOURNAL_FORMAT:
        raise JournalError(
            f"journal at {path} uses format "
            f"{payloads[0].get('format')!r}; this version reads format "
            f"{JOURNAL_FORMAT}"
        )
    return payloads[0], payloads[1:], valid_bytes, truncated


# -- the content-addressed result cache ------------------------------------------


class ResultCache:
    """Root of a content-addressed campaign result cache.

    Layout: ``root/<campaign hash>/`` holding ``meta.json`` (the full
    fingerprint document), ``golden.pkl`` (pickled
    :class:`GoldenReference`), ``plan.json`` (the expanded run list)
    and ``run<NNNNN>.json`` — one CRC-enveloped document per cached
    outcome. Cache reads are best-effort: any damaged entry is treated
    as a miss and recomputed (the cache, unlike the journal, carries no
    partial-campaign state worth refusing over).
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def entry(self, content_hash: str) -> "CacheEntry":
        return CacheEntry(os.path.join(self.root, content_hash))


class CacheEntry:
    """One campaign's slice of the result cache."""

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def outcome_path(self, run_id: int) -> str:
        return self._path(f"run{run_id:05d}.json")

    # -- plan + golden -------------------------------------------------------

    def store_plan(
        self,
        fingerprint: dict,
        golden: GoldenReference,
        runs: typing.Sequence[RunSpec],
    ) -> None:
        os.makedirs(self.directory, exist_ok=True)
        _atomic_write_text(
            self._path("meta.json"),
            json.dumps(fingerprint, indent=2, sort_keys=True) + "\n",
        )
        plan = {
            "type": "plan",
            "runs": [
                {
                    "run_id": run.run_id,
                    "kind": run.kind,
                    "target_path": run.target_path,
                    "window": list(run.window) if run.window else None,
                    "params": run.params,
                }
                for run in runs
            ],
        }
        _atomic_write_text(self._path("plan.json"), encode_line(plan) + "\n")
        _atomic_write_bytes(
            self._path("golden.pkl"),
            pickle.dumps(
                {
                    "traces": golden.traces,
                    "image": golden.image,
                    "horizon": golden.horizon,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )

    def load_plan(
        self,
    ) -> "tuple[GoldenReference, list[RunSpec]] | None":
        """The cached golden reference and run plan, or ``None``."""
        try:
            with open(self._path("plan.json"), encoding="utf-8") as stream:
                plan = decode_line(stream.read().strip())
            with open(self._path("golden.pkl"), "rb") as stream:
                state = pickle.load(stream)
            golden = GoldenReference(
                state["traces"], state["image"], state["horizon"]
            )
            runs = [
                RunSpec(
                    int(doc["run_id"]),
                    str(doc["kind"]),
                    str(doc["target_path"]),
                    tuple(doc["window"]) if doc["window"] else None,
                    dict(doc["params"]),
                )
                for doc in plan["runs"]
            ]
        except (OSError, ValueError, KeyError, TypeError,
                pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        return golden, runs

    # -- outcomes ------------------------------------------------------------

    def store_outcome(self, outcome: RunOutcome) -> None:
        """Cache one content outcome (infrastructure outcomes are
        machine artifacts and are skipped)."""
        if outcome.classification not in CACHEABLE_CLASSIFICATIONS:
            return
        os.makedirs(self.directory, exist_ok=True)
        payload = {"type": "outcome", "outcome": outcome.to_dict()}
        try:
            _atomic_write_text(
                self.outcome_path(outcome.run_id),
                encode_line(payload) + "\n",
            )
        except OSError:
            pass  # a full disk must never fail the campaign

    def load_outcome(self, run_id: int) -> "RunOutcome | None":
        try:
            with open(self.outcome_path(run_id), encoding="utf-8") as stream:
                payload = decode_line(stream.read().strip())
            return RunOutcome.from_dict(payload["outcome"])
        except (OSError, ValueError, KeyError, TypeError):
            return None


def _atomic_write_text(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as stream:
        stream.write(text)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)


def _atomic_write_bytes(path: str, blob: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as stream:
        stream.write(blob)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)
