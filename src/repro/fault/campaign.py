"""Campaign execution: golden reference, run classification.

The engine builds the campaign's platform once *without* faults to
record the golden behaviour (application traces + final memory image +
end time), expands the spec against the platform's real hierarchy, and
then classifies each faulty run:

* ``detected`` — a verify checker, scoreboard or bus monitor fired
  (recorded through :meth:`~repro.kernel.simulator.Simulator
  .report_detection`), a :class:`~repro.errors.ReproError` was raised,
  or the run deadlocked and the watchdog reported blocked processes;
* ``silent`` — the run completed with no detection but its observable
  behaviour (traces or memory image) diverges from golden: undetected
  corruption, the number a campaign exists to measure;
* ``benign`` — the fault had no observable effect;
* ``recovered`` — the fault perturbed the run (it activated and either
  recovery machinery replayed/retried or a checker fired) but the
  resilience stack absorbed the damage: the run completed and its
  observable behaviour matches golden. Only reachable with
  ``spec.resilience`` on;
* ``timeout`` / ``error`` / ``worker_error`` — infrastructure outcomes
  (wall-clock budget, non-library exception, worker process death),
  kept out of the coverage ratio.
"""

from __future__ import annotations

import time as _time
import typing

import functools

from ..errors import RefinementError, ReproError
from ..flow.platforms import (
    PciPlatformConfig,
    PlatformBundle,
    build_platform,
)
from ..hdl.resolved import ResolvedSignal
from ..hdl.signal import Signal
from ..instrument.metrics import DetectionLog
from ..core.workload import generate_workload
from ..osss.global_object import GlobalObject
from ..resilience.watchdog import RunWatchdog
from ..trace.attribution import attribute
from ..trace.spans import SpanTracer
from .models import make_fault
from .spec import CampaignSpec, RunSpec, expand_campaign

#: Run classifications.
DETECTED = "detected"
SILENT = "silent"
BENIGN = "benign"
RECOVERED = "recovered"
TIMEOUT = "timeout"
ERROR = "error"
WORKER_ERROR = "worker_error"

CLASSIFICATIONS = (
    DETECTED, SILENT, BENIGN, RECOVERED, TIMEOUT, ERROR, WORKER_ERROR
)

#: One builder per attackable platform, all backed by the generic
#: :func:`~repro.flow.platforms.build_platform`.
_BUILDERS = {
    family: functools.partial(build_platform, bus=family)
    for family in ("pci", "wishbone", "axi4lite", "tlmgp", "functional")
}


class GoldenReference:
    """What the platform does when nothing is broken (picklable)."""

    def __init__(
        self,
        traces: dict,
        image: list,
        horizon: int,
    ) -> None:
        self.traces = traces
        self.image = image
        self.horizon = horizon

    def __repr__(self) -> str:
        transactions = sum(len(t) for t in self.traces.values())
        return f"GoldenReference({transactions} txns, horizon={self.horizon})"


class RunOutcome:
    """The classified result of one campaign run (picklable)."""

    def __init__(
        self,
        run_id: int,
        kind: str,
        target_path: str,
        window: "tuple[int, int] | None",
        classification: str,
        detail: str = "",
        activations: int = 0,
        detections: int = 0,
        wall_seconds: float = 0.0,
        sim_time: int = 0,
        spans_assembled: int = 0,
        span_mean_latency: int = 0,
        recovery_events: int = 0,
        recovery_latency: int = 0,
        score: "dict | None" = None,
    ) -> None:
        self.run_id = run_id
        self.kind = kind
        self.target_path = target_path
        self.window = window
        self.classification = classification
        self.detail = detail
        self.activations = activations
        self.detections = detections
        self.wall_seconds = wall_seconds
        self.sim_time = sim_time
        #: Populated when the campaign runs with ``trace_spans=True``.
        self.spans_assembled = spans_assembled
        self.span_mean_latency = span_mean_latency
        #: Populated when the campaign runs with ``resilience=True``:
        #: count of ``resilience.recovered`` probe events, and the mean
        #: fs between first failure sign and successful recovery.
        self.recovery_events = recovery_events
        self.recovery_latency = recovery_latency
        #: Per-run communication gauges as a picklable
        #: :meth:`~repro.telemetry.scorecard.CellScore.to_dict`
        #: document (``spec.telemetry`` campaigns only).
        self.score = score

    def __repr__(self) -> str:
        return (
            f"RunOutcome(run{self.run_id:03d} {self.kind}@{self.target_path}"
            f" -> {self.classification})"
        )

    def to_dict(self, canonical: bool = False) -> dict:
        """JSON-ready document of this outcome.

        :param canonical: zero the wall-clock field — the one
            machine-dependent value — so serial, parallel and
            interrupted-then-resumed campaigns serialize byte-identically.
        """
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "target": self.target_path,
            "window": list(self.window) if self.window else None,
            "classification": self.classification,
            "detail": self.detail,
            "activations": self.activations,
            "detections": self.detections,
            "wall_seconds": 0.0 if canonical else round(self.wall_seconds, 6),
            "sim_time": self.sim_time,
            "spans_assembled": self.spans_assembled,
            "span_mean_latency": self.span_mean_latency,
            "recovery_events": self.recovery_events,
            "recovery_latency": self.recovery_latency,
            "telemetry": self.score,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "RunOutcome":
        """Rebuild an outcome from :meth:`to_dict` (journal replay and
        result-cache hits travel through this)."""
        window = document.get("window")
        return cls(
            int(document["run_id"]),
            str(document["kind"]),
            str(document["target"]),
            tuple(window) if window else None,
            str(document["classification"]),
            detail=str(document.get("detail", "")),
            activations=int(document.get("activations", 0)),
            detections=int(document.get("detections", 0)),
            wall_seconds=float(document.get("wall_seconds", 0.0)),
            sim_time=int(document.get("sim_time", 0)),
            spans_assembled=int(document.get("spans_assembled", 0)),
            span_mean_latency=int(document.get("span_mean_latency", 0)),
            recovery_events=int(document.get("recovery_events", 0)),
            recovery_latency=int(document.get("recovery_latency", 0)),
            score=document.get("telemetry"),
        )


def build_campaign_platform(spec: CampaignSpec) -> PlatformBundle:
    """A fresh platform instance for one run of *spec*."""
    workloads = [
        generate_workload(
            seed,
            spec.commands_per_app,
            address_span=spec.address_span,
            write_fraction=spec.write_fraction,
        )
        for seed in spec.workload_seeds()
    ]
    config = PciPlatformConfig(
        monitor_strict=False, app_think_time=spec.think_time
    )
    if spec.resilience:
        from ..resilience import ResilienceConfig

        config.resilience = ResilienceConfig.default(spec.seed)
    synthesize = getattr(spec, "synthesize", False)
    if synthesize:
        # Lowered channels, per-spec backend; applies to golden, probe
        # and faulty builds alike so the comparison stays like-for-like.
        from ..synthesis.tool import SynthesisConfig

        return _BUILDERS[spec.platform](
            workloads, config, synthesize=True,
            synthesis_config=SynthesisConfig(
                backend=getattr(spec, "backend", "interpreted")
            ),
        )
    return _BUILDERS[spec.platform](workloads, config)


def injectable_targets(bundle: PlatformBundle) -> tuple[list, list]:
    """``(signal_paths, channel_paths)`` of everything a fault can hit."""
    signals: list = []
    channels: list = []
    sim = bundle.handle.sim
    for path, obj in sim.iter_named():
        if isinstance(obj, (Signal, ResolvedSignal)):
            signals.append(path)
        elif isinstance(obj, GlobalObject):
            channels.append(path)
    return signals, channels


def run_golden(spec: CampaignSpec) -> GoldenReference:
    """Build and run the platform fault-free; record the reference."""
    bundle = build_campaign_platform(spec)
    result = bundle.run(spec.max_time)
    image = bundle.memory.dump(0, spec.address_span // 4)
    return GoldenReference(result.traces, image, bundle.handle.sim.time)


def plan_campaign(
    spec: CampaignSpec,
) -> tuple[GoldenReference, list[RunSpec]]:
    """Golden reference + the expanded deterministic run list."""
    golden = run_golden(spec)
    probe = build_campaign_platform(spec)
    signal_paths, channel_paths = injectable_targets(probe)
    runs = expand_campaign(spec, signal_paths, channel_paths, golden.horizon)
    return golden, runs


def execute_run(
    spec: CampaignSpec,
    run: RunSpec,
    golden: GoldenReference,
) -> RunOutcome:
    """Build, infect, run and classify one campaign run.

    The per-run wall-clock budget is enforced by an in-sim
    :class:`~repro.resilience.watchdog.RunWatchdog` — portable (no
    SIGALRM, works off the main thread) and composable with the stall
    supervision the resilience mode adds on top.
    """
    started = _time.perf_counter()
    bundle = build_campaign_platform(spec)
    sim = bundle.handle.sim
    sim.elaborate()
    # The classifier is a bus subscriber like any other observer: it
    # collects ``detection`` probes instead of scraping simulator state.
    detections = DetectionLog().attach(sim.probes)
    # Span tracing works inside pool workers exactly like detections do:
    # the worker rebuilds the platform and re-attaches subscribers, so
    # serial and parallel campaigns produce identical span statistics.
    tracer = (
        SpanTracer(causal=False).attach(sim.probes)
        if spec.trace_spans else None
    )
    recovery_log = None
    if spec.resilience:
        from ..resilience import RecoveryLog

        recovery_log = RecoveryLog().attach(sim.probes)
    # Communication telemetry rides the same per-run bus the classifier
    # does, so worker processes score runs exactly like the serial path.
    score_probe = None
    if getattr(spec, "telemetry", False):
        from ..telemetry.scorecard import ScorecardProbe

        cycle_fs = (
            bundle.clock.period if bundle.clock is not None else 0
        )
        score_probe = ScorecardProbe(cycle_fs).attach(sim.probes)
    recorder = None
    if getattr(spec, "flight_record_dir", None):
        from ..telemetry.recorder import FlightRecorder

        recorder = FlightRecorder(
            spec.flight_record_capacity
        ).attach(sim.probes)
        recorder.record(
            "run.start",
            run_id=run.run_id,
            fault=run.kind,
            target=run.target_path,
            window=list(run.window) if run.window else None,
        )
    # Wall budget is always enforced; communication-stall supervision
    # only arms with resilience on, so baseline campaigns classify
    # exactly as they did under the old whole-run alarm.
    watchdog = RunWatchdog(
        sim,
        wall_budget=spec.wall_timeout or None,
        stall_strikes=5 if spec.resilience else 0,
        action="stop",
    )
    fault = make_fault(run.kind, run.target_path, run.window, **run.params)
    classification = ERROR
    detail = ""
    try:
        fault.arm(sim)
        result = bundle.run(spec.max_time)
    except RefinementError as error:
        if watchdog.fired and watchdog.reason == "wall":
            classification = TIMEOUT
            detail = f"wall-clock budget of {spec.wall_timeout}s exhausted"
        else:
            # The deadlock watchdog: applications never finished.
            # Blocked guarded-method calls say who was starved.
            blocked = sim.blocked_processes()
            classification = DETECTED
            stuck = ", ".join(
                f"{b.client}->{b.method}" for b in blocked[:3]
            ) or str(error)
            label = (
                "stall watchdog"
                if watchdog.fired and watchdog.reason == "stall"
                else "deadlock watchdog"
            )
            detail = f"{label}: {stuck}"
    except ReproError as error:
        classification = DETECTED
        detail = f"{type(error).__name__}: {error}"
    except Exception as error:  # noqa: BLE001 - infrastructure failure
        classification = ERROR
        detail = f"{type(error).__name__}: {error}"
    else:
        image = bundle.memory.dump(0, spec.address_span // 4)
        recoveries = (
            recovery_log.recoveries if recovery_log is not None else 0
        )
        behaviour_matches = (
            result.traces == golden.traces and image == golden.image
        )
        if behaviour_matches and recoveries and fault.activations:
            # The fault struck and the resilience stack absorbed it: the
            # run may well have raised detections on the way (a parity
            # violation the replay then papered over), but the observable
            # behaviour is golden.
            classification = RECOVERED
            detail = (
                f"{recoveries} recoveries absorbed "
                f"{fault.activations} activations"
            )
        elif detections:
            first = detections.records[0]
            classification = DETECTED
            detail = f"{first.source}: {first.message}"
        elif result.traces != golden.traces:
            classification = SILENT
            detail = "application traces diverge from golden"
        elif image != golden.image:
            classification = SILENT
            detail = "memory image diverges from golden"
        else:
            classification = BENIGN
            detail = (
                "no observable effect"
                if fault.activations
                else "fault never activated"
            )
    finally:
        watchdog.cancel()
    spans_assembled = 0
    span_mean_latency = 0
    if tracer is not None:
        report = attribute(tracer.finalize())
        spans_assembled = len(report)
        span_mean_latency = int(report.mean_latency)
    recovery_events = 0
    recovery_latency = 0
    if recovery_log is not None:
        recovery_events = recovery_log.recoveries
        latencies = recovery_log.recovery_latencies()
        if latencies:
            recovery_latency = int(sum(latencies) / len(latencies))
    score = None
    if score_probe is not None:
        level = (
            spec.backend if spec.synthesize else "functional"
        )
        if spec.synthesize and spec.backend == "interpreted":
            level = "synthesized"
        score = score_probe.score(
            spec.platform, level, run.label
        ).to_dict()
    if recorder is not None:
        recorder.record(
            "run.end",
            run_id=run.run_id,
            classification=classification,
            detail=detail,
        )
        recorder.detach()
        _dump_flight_record(spec, run, recorder, classification, detail)
    return RunOutcome(
        run.run_id,
        run.kind,
        run.target_path,
        run.window,
        classification,
        detail,
        activations=fault.activations,
        detections=len(detections),
        wall_seconds=_time.perf_counter() - started,
        sim_time=sim.time,
        spans_assembled=spans_assembled,
        span_mean_latency=span_mean_latency,
        recovery_events=recovery_events,
        recovery_latency=recovery_latency,
        score=score,
    )


def flight_record_path(directory: str, run_id: int) -> str:
    """The JSONL path one run's flight record dumps to."""
    import os

    return os.path.join(directory, f"run{run_id:03d}.jsonl")


def _dump_flight_record(
    spec: CampaignSpec,
    run: RunSpec,
    recorder,
    classification: str,
    detail: str,
) -> None:
    """Serialize one run's ring; best-effort (telemetry never fails a
    run over a full disk)."""
    import os

    try:
        os.makedirs(spec.flight_record_dir, exist_ok=True)
        recorder.dump(
            flight_record_path(spec.flight_record_dir, run.run_id),
            header={
                "run_id": run.run_id,
                "label": run.label,
                "campaign": spec.name,
                "platform": spec.platform,
                "classification": classification,
                "detail": detail,
            },
        )
    except OSError:
        pass


def classify_counts(outcomes: typing.Iterable[RunOutcome]) -> dict:
    counts = {c: 0 for c in CLASSIFICATIONS}
    for outcome in outcomes:
        counts[outcome.classification] += 1
    return counts


def detection_coverage(outcomes: typing.Iterable[RunOutcome]) -> float | None:
    """``detected / (detected + silent)``; ``None`` with no effective faults."""
    counts = classify_counts(outcomes)
    effective = counts[DETECTED] + counts[SILENT]
    if not effective:
        return None
    return counts[DETECTED] / effective
