"""Fault models: kernel-level interceptors that perturb a running design.

Each model targets one design object by hierarchical path and corrupts
its behaviour inside a time window ``[start, end)``. The injection is a
*kernel-level* interceptor — the signal's update hook or the shared
state space's submit/descriptor hooks are wrapped on the instance — so
application and interface models need zero changes to be testable under
fault.

The models mirror the classic hardware fault taxonomy:

* :class:`StuckAtFault` / :class:`BitFlipFault` /
  :class:`TransientGlitchFault` — pin-level faults on
  :class:`~repro.hdl.signal.Signal` and
  :class:`~repro.hdl.resolved.ResolvedSignal` wires;
* :class:`DelayedGrantFault` / :class:`DroppedRequestFault` — scheduling
  faults on OSSS arbiters and guarded methods (the channel stops
  granting, or silently loses a request);
* :class:`CommandCorruptionFault` — transaction-layer corruption of the
  command stream flowing into the PCI / Wishbone interface channel.
"""

from __future__ import annotations

import typing

from ..errors import ReproError
from ..hdl.bitvector import LogicVector
from ..hdl.resolved import ResolvedSignal
from ..hdl.signal import Signal
from ..instrument.probes import FAULT_ACTIVATE
from ..kernel.event import Event
from ..kernel.simulator import Simulator
from ..osss.global_object import GlobalObject
from ..osss.guarded_method import GuardedMethodDescriptor


class FaultInjectionError(ReproError):
    """A fault model could not be built or armed."""


#: Target categories a fault kind can attach to.
SIGNAL_TARGET = "signal"
CHANNEL_TARGET = "channel"


class FaultModel:
    """Base class: one fault on one target, active in one time window.

    :param target_path: hierarchical name of the design object.
    :param window: ``(start, end)`` femtoseconds; ``None`` means always
        active.
    """

    kind: str = "base"
    target_kind: str = SIGNAL_TARGET

    def __init__(
        self,
        target_path: str,
        window: "tuple[int, int] | None" = None,
    ) -> None:
        if window is not None and window[1] < window[0]:
            raise FaultInjectionError(
                f"bad fault window {window!r}: end before start"
            )
        self.target_path = target_path
        self.window = window
        #: How many times the fault actually perturbed the design.
        self.activations = 0
        self._sim: Simulator | None = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.target_path}, window={self.window})"

    def describe(self) -> str:
        window = "always" if self.window is None else \
            f"[{self.window[0]}, {self.window[1]})"
        return f"{self.kind} on {self.target_path} {window}"

    # -- helpers ------------------------------------------------------------

    def _record_activation(self) -> None:
        """Count one perturbation and publish it as a ``fault.activate``
        probe when the target simulator carries a bus."""
        self.activations += 1
        sim = self._sim
        if sim is not None:
            probes = sim._probes
            if probes is not None:
                probes.emit(FAULT_ACTIVATE, sim.time, self)

    def _in_window(self) -> bool:
        if self.window is None:
            return True
        assert self._sim is not None
        return self.window[0] <= self._sim.time < self.window[1]

    def _at(self, time: int, action: typing.Callable[[], None]) -> None:
        """Schedule *action* at absolute simulation *time* (or now)."""
        assert self._sim is not None
        scheduler = self._sim.scheduler
        event = Event(scheduler, f"fault.{self.kind}.{self.target_path}")
        event.add_callback(action)
        event.notify_after(max(0, time - scheduler.time))

    def _resolve(self, sim: Simulator, expected: type | tuple) -> object:
        target = sim.lookup(self.target_path)
        if not isinstance(target, expected):
            raise FaultInjectionError(
                f"fault {self.kind!r} cannot target "
                f"{type(target).__name__} {self.target_path!r}"
            )
        return target

    # -- interface ------------------------------------------------------------

    def arm(self, sim: Simulator) -> None:
        """Install the interceptor; must be called before the run."""
        raise NotImplementedError


# -- pin-level signal faults ---------------------------------------------------


def _signal_width(signal: "Signal | ResolvedSignal") -> int | None:
    return signal.width


def _override_value(signal: "Signal | ResolvedSignal", value: object) -> None:
    """Set a committed value out of band, firing edges and tracers."""
    if isinstance(signal, Signal):
        signal.force(value)
        return
    # ResolvedSignal has no force(): commit directly, as its update would.
    if not isinstance(value, LogicVector):
        value = LogicVector(signal.width, value)
    if value == signal._value:
        return
    signal._value = value
    if signal._changed is not None:
        signal._changed.notify_delta()
    signal._sim._notify_trace(signal, value)


class SignalFault(FaultModel):
    """Common machinery for faults on signal commits."""

    target_kind = SIGNAL_TARGET

    def _hook_update(
        self,
        signal: "Signal | ResolvedSignal",
        wrapper_factory: typing.Callable[[typing.Callable[[], None]],
                                         typing.Callable[[], None]],
    ) -> None:
        original = signal._perform_update
        signal._perform_update = wrapper_factory(original)  # type: ignore[method-assign]


class StuckAtFault(SignalFault):
    """The wire holds a constant value for the whole window.

    :param value: the stuck level (int, coerced to the signal width).
    """

    kind = "stuck_at"

    def __init__(
        self,
        target_path: str,
        window: "tuple[int, int] | None" = None,
        value: int = 0,
    ) -> None:
        super().__init__(target_path, window)
        self.value = value

    def arm(self, sim: Simulator) -> None:
        self._sim = sim
        signal = typing.cast(
            "Signal | ResolvedSignal",
            self._resolve(sim, (Signal, ResolvedSignal)),
        )
        stuck: object = self.value
        if signal.width is not None:
            stuck = LogicVector(signal.width, self.value)

        def wrapper(original: typing.Callable[[], None]):
            def patched() -> None:
                if not self._in_window():
                    original()
                    return
                # Hold the line: drop the staged/resolved commit entirely.
                if isinstance(signal, Signal):
                    signal._has_next = False
                    signal._delta_writer = None
                self._record_activation()
                _override_value(signal, stuck)
            return patched

        self._hook_update(signal, wrapper)

        def clamp() -> None:
            self._record_activation()
            _override_value(signal, stuck)

        def release() -> None:
            # Re-resolve / leave the stuck value for plain signals (a
            # stuck-at that heals keeps its last level until redriven).
            signal._request_update()

        start = 0 if self.window is None else self.window[0]
        self._at(start, clamp)
        if self.window is not None:
            self._at(self.window[1], release)


class BitFlipFault(SignalFault):
    """One bit of the first commit inside the window is inverted."""

    kind = "bit_flip"

    def __init__(
        self,
        target_path: str,
        window: "tuple[int, int] | None" = None,
        bit: int = 0,
    ) -> None:
        super().__init__(target_path, window)
        self.bit = bit

    def _flip(self, value: object, width: int | None) -> object | None:
        """Corrupted copy of *value*, or ``None`` when it cannot flip."""
        if isinstance(value, LogicVector):
            if not value.is_fully_defined:
                return None
            width = value.width
            return LogicVector(width, value.to_int() ^ (1 << (self.bit % width)))
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return value ^ (1 << self.bit)
        return None

    def arm(self, sim: Simulator) -> None:
        self._sim = sim
        signal = typing.cast(
            "Signal | ResolvedSignal",
            self._resolve(sim, (Signal, ResolvedSignal)),
        )

        def wrapper(original: typing.Callable[[], None]):
            def patched() -> None:
                original()
                if self.activations or not self._in_window():
                    return
                flipped = self._flip(signal.read(), signal.width)
                if flipped is None:
                    return
                self._record_activation()
                _override_value(signal, flipped)
            return patched

        self._hook_update(signal, wrapper)


class TransientGlitchFault(SignalFault):
    """The wire is forced to a value for a short duration, then restored.

    :param value: the glitch level.
    :param duration: femtoseconds the glitch lasts (defaults to the
        whole window).
    """

    kind = "glitch"

    def __init__(
        self,
        target_path: str,
        window: "tuple[int, int] | None" = None,
        value: int = 1,
        duration: "int | None" = None,
    ) -> None:
        if window is None:
            raise FaultInjectionError("a glitch fault needs a time window")
        super().__init__(target_path, window)
        self.value = value
        self.duration = (
            duration if duration is not None else window[1] - window[0]
        )

    def arm(self, sim: Simulator) -> None:
        self._sim = sim
        signal = typing.cast(
            "Signal | ResolvedSignal",
            self._resolve(sim, (Signal, ResolvedSignal)),
        )
        glitch: object = self.value
        if signal.width is not None:
            glitch = LogicVector(signal.width, self.value)
        saved: dict[str, object] = {}

        def strike() -> None:
            saved["value"] = signal.read()
            self._record_activation()
            _override_value(signal, glitch)

        def restore() -> None:
            if isinstance(signal, ResolvedSignal):
                signal._request_update()  # re-resolve from live drivers
            elif "value" in saved:
                _override_value(signal, saved["value"])

        assert self.window is not None
        self._at(self.window[0], strike)
        self._at(self.window[0] + self.duration, restore)


# -- guarded-method / arbitration faults ---------------------------------------


class _StalledDescriptor:
    """A guarded-method view whose guard never opens (grant withheld)."""

    def __init__(self, wrapped: GuardedMethodDescriptor) -> None:
        self._wrapped = wrapped
        self.func = wrapped.func
        self.guard = wrapped.guard
        self.__name__ = wrapped.__name__

    def guard_true(self, state: object) -> bool:
        return False

    def invoke(self, state: object, *args: object, **kwargs: object) -> object:
        return self._wrapped.invoke(state, *args, **kwargs)


class ChannelFault(FaultModel):
    """Common machinery for faults on a shared state space."""

    target_kind = CHANNEL_TARGET

    def _space(self, sim: Simulator):
        handle = typing.cast(
            GlobalObject, self._resolve(sim, GlobalObject)
        )
        return handle._root().space


class DelayedGrantFault(ChannelFault):
    """The channel's arbiter withholds every grant during the window.

    Callers queue up; when the window closes the backlog drains. A
    window that outlives the run turns the delay into a deadlock, which
    the run watchdog reports through ``blocked_processes``.
    """

    kind = "delayed_grant"

    def arm(self, sim: Simulator) -> None:
        self._sim = sim
        space = self._space(sim)
        original = space.descriptor

        def patched(method: str):
            descriptor = original(method)
            if self._in_window():
                self._record_activation()
                return _StalledDescriptor(descriptor)
            return descriptor

        space.descriptor = patched  # type: ignore[method-assign]
        if self.window is not None:
            # Wake the server when the window closes so the backlog drains.
            self._at(self.window[1], space.touch)


class DroppedRequestFault(ChannelFault):
    """Requests vanish: completed towards the caller, never executed.

    :param method: only drop calls to this guarded method (``None``
        drops any).
    :param max_drops: stop dropping after this many requests.
    """

    kind = "dropped_request"

    def __init__(
        self,
        target_path: str,
        window: "tuple[int, int] | None" = None,
        method: str | None = None,
        max_drops: int = 1,
    ) -> None:
        super().__init__(target_path, window)
        self.method = method
        self.max_drops = max_drops

    def arm(self, sim: Simulator) -> None:
        self._sim = sim
        space = self._space(sim)
        original = space.submit

        def patched(request) -> None:
            if (
                self.activations < self.max_drops
                and self._in_window()
                and (self.method is None or request.method == self.method)
            ):
                self._record_activation()
                request.result = None
                request.completed = True
                request.complete_time = sim.time
                request.done_event.notify_delta()
                return
            original(request)

        space.submit = patched  # type: ignore[method-assign]


class CommandCorruptionFault(ChannelFault):
    """Transaction-layer corruption of commands entering the channel.

    Intercepts ``put_command`` submissions and XORs the command's
    address or first data word with a mask — the bus-level effect of a
    corrupted request path between application and interface element.

    :param field: ``"address"`` or ``"data"``.
    :param mask: XOR mask (addresses stay word-aligned: the low two bits
        of the mask are cleared).
    :param max_corruptions: stop corrupting after this many commands.
    """

    kind = "command_corruption"

    def __init__(
        self,
        target_path: str,
        window: "tuple[int, int] | None" = None,
        field: str = "data",
        mask: int = 1,
        max_corruptions: int = 1,
    ) -> None:
        super().__init__(target_path, window)
        if field not in ("address", "data"):
            raise FaultInjectionError(f"unknown corruption field {field!r}")
        self.field = field
        self.mask = mask
        self.max_corruptions = max_corruptions

    def _corrupt(self, command):
        from ..core.command import CommandType

        if self.field == "address":
            address = (command.address ^ (self.mask & ~0x3)) & 0xFFFF_FFFC
            data = list(command.data) or None
        else:
            if command.is_write:
                data = list(command.data)
                data[0] = (data[0] ^ self.mask) & 0xFFFF_FFFF
            else:
                return None  # reads carry no data to corrupt
            address = command.address
        if address == command.address and data == command.data:
            return None
        return CommandType(
            command.kind,
            address,
            data=data if command.is_write else None,
            count=command.count if command.is_read else 1,
            byte_enables=command.byte_enables,
        )

    def arm(self, sim: Simulator) -> None:
        self._sim = sim
        space = self._space(sim)
        original = space.submit

        def patched(request) -> None:
            if (
                self.activations < self.max_corruptions
                and self._in_window()
                and request.method == "put_command"
                and request.args
            ):
                corrupted = self._corrupt(request.args[0])
                if corrupted is not None:
                    self._record_activation()
                    request.args = (corrupted,) + tuple(request.args[1:])
            original(request)

        space.submit = patched  # type: ignore[method-assign]


#: Registry: fault kind tag -> model class.
FAULT_KINDS: dict[str, type[FaultModel]] = {
    cls.kind: cls
    for cls in (
        StuckAtFault,
        BitFlipFault,
        TransientGlitchFault,
        DelayedGrantFault,
        DroppedRequestFault,
        CommandCorruptionFault,
    )
}


def make_fault(
    kind: str,
    target_path: str,
    window: "tuple[int, int] | None" = None,
    **params: typing.Any,
) -> FaultModel:
    """Build a fault model from its registry tag."""
    try:
        cls = FAULT_KINDS[kind]
    except KeyError:
        raise FaultInjectionError(
            f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}"
        ) from None
    return cls(target_path, window, **params)
