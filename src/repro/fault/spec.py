"""Declarative fault-campaign specifications and their expansion.

A :class:`CampaignSpec` says *what to attack* (fault kinds + target
globs + optional time windows), *on which platform*, and *with which
seed*; :func:`expand_campaign` turns it into a flat, deterministic list
of :class:`RunSpec` objects — one concrete fault per run. Everything is
plain picklable data so run specs travel into worker processes
unchanged.
"""

from __future__ import annotations

import fnmatch
import typing

from ..core.workload import _Lcg
from ..kernel.simtime import NS
from .models import CHANNEL_TARGET, FAULT_KINDS, FaultInjectionError

#: Platforms a campaign can run against (the bus families of
#: :func:`repro.flow.build_platform`).
PLATFORMS = ("pci", "wishbone", "axi4lite", "tlmgp", "functional")


class FaultSpec:
    """One line of a campaign: a fault kind aimed at a target glob.

    :param kind: a tag from :data:`~repro.fault.models.FAULT_KINDS`.
    :param target: ``fnmatch`` glob over hierarchical paths; every match
        becomes its own set of runs.
    :param window: optional fixed ``(start, end)`` fs window. When
        omitted, each run draws a window from the campaign seed so the
        same fault lands at different times across repetitions.
    :param repeats: runs per matched target.
    :param params: extra keyword arguments for the fault model
        (``value``, ``bit``, ``field``, ``mask``, ...). ``bit=None`` or
        ``mask=None`` draw per-run values from the seed.
    """

    def __init__(
        self,
        kind: str,
        target: str,
        window: "tuple[int, int] | None" = None,
        repeats: int = 1,
        params: "dict[str, object] | None" = None,
    ) -> None:
        if kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}"
            )
        if repeats < 1:
            raise FaultInjectionError(f"repeats must be >= 1, got {repeats}")
        self.kind = kind
        self.target = target
        self.window = window
        self.repeats = repeats
        self.params = dict(params or {})

    @property
    def target_kind(self) -> str:
        return FAULT_KINDS[self.kind].target_kind

    def to_dict(self) -> dict:
        """Plain-data form, stable enough to content-hash (the durable
        layer folds every fault line into the campaign spec hash)."""
        return {
            "kind": self.kind,
            "target": self.target,
            "window": list(self.window) if self.window else None,
            "repeats": self.repeats,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }

    def __repr__(self) -> str:
        return f"FaultSpec({self.kind} @ {self.target!r} x{self.repeats})"


class CampaignSpec:
    """A whole campaign: platform + workload + fault lines + seed.

    The workload knobs mirror :func:`~repro.core.workload
    .generate_workload`; each application ``i`` gets the workload seeded
    with ``seed + i``.
    """

    def __init__(
        self,
        name: str,
        faults: typing.Sequence[FaultSpec],
        platform: str = "pci",
        seed: int = 11,
        n_apps: int = 2,
        commands_per_app: int = 6,
        max_time: int = 200_000 * NS,
        wall_timeout: float = 60.0,
        address_span: int = 0x100,
        write_fraction: float = 0.6,
        think_time: int = 0,
        trace_spans: bool = False,
        resilience: bool = False,
        crash_run_ids: typing.Sequence[int] = (),
        synthesize: bool = False,
        backend: str = "interpreted",
        telemetry: bool = False,
        flight_record_dir: "str | None" = None,
        flight_record_capacity: int = 512,
    ) -> None:
        if platform not in PLATFORMS:
            raise FaultInjectionError(
                f"unknown platform {platform!r}; known: {PLATFORMS}"
            )
        if not faults:
            raise FaultInjectionError("a campaign needs at least one FaultSpec")
        if backend not in ("interpreted", "compiled"):
            raise FaultInjectionError(
                f"unknown backend {backend!r}; expected 'interpreted' or "
                "'compiled'"
            )
        if backend == "compiled" and not synthesize:
            raise FaultInjectionError(
                "backend='compiled' needs synthesize=True: the compiled "
                "core only exists for synthesized channels"
            )
        if synthesize and platform == "functional":
            raise FaultInjectionError(
                "the functional platform has no clock to synthesize "
                "against; use a clocked platform (pci, wishbone, "
                "axi4lite or tlmgp)"
            )
        self.name = name
        self.faults = list(faults)
        self.platform = platform
        self.seed = seed
        self.n_apps = n_apps
        self.commands_per_app = commands_per_app
        self.max_time = max_time
        self.wall_timeout = wall_timeout
        self.address_span = address_span
        self.write_fraction = write_fraction
        #: fs between an application's commands; >0 leaves idle bus
        #: cycles so idle-time faults are exercised too.
        self.think_time = think_time
        #: attach a SpanTracer to every run (golden and faulty) and
        #: report per-run span counts/latencies on the outcomes. The
        #: spec is picklable, so parallel workers trace identically.
        self.trace_spans = trace_spans
        #: arm the resilience stack (guarded-call retry policies seeded
        #: from the campaign seed + protocol replay in the interface
        #: element) on every platform the campaign builds — golden and
        #: faulty alike, so traces stay comparable. Runs whose damage
        #: the stack absorbs classify as ``recovered``.
        self.resilience = resilience
        #: chaos knob for the self-healing runner: pool workers
        #: hard-exit (``os._exit``) before executing these run ids, so
        #: tests can prove completed results survive a worker crash.
        #: The serial runner classifies them ``worker_error`` directly,
        #: keeping serial and parallel reports identical.
        self.crash_run_ids = tuple(crash_run_ids)
        #: apply communication synthesis to every platform the campaign
        #: builds (golden, probe and faulty runs alike, so traces stay
        #: comparable), and pick the execution backend for the lowered
        #: channels: "interpreted" or "compiled" (repro.compile).
        self.synthesize = synthesize
        self.backend = backend
        #: attach a communication ScorecardProbe to every run and carry
        #: the per-run gauges (as a picklable dict) on the outcomes;
        #: reports merge them into campaign-level digests that are
        #: identical for serial and process-pool execution.
        self.telemetry = telemetry
        #: when set, every run dumps its flight-recorder ring (the last
        #: ``flight_record_capacity`` structured events) as
        #: ``run<NNN>.jsonl`` under this directory — including runs that
        #: crash or misbehave, which is the whole point.
        self.flight_record_dir = flight_record_dir
        self.flight_record_capacity = flight_record_capacity

    def workload_seeds(self) -> list[int]:
        return [self.seed + i for i in range(self.n_apps)]

    def __repr__(self) -> str:
        return (
            f"CampaignSpec({self.name}: {len(self.faults)} fault specs on "
            f"{self.platform}, seed={self.seed})"
        )


class RunSpec:
    """One concrete faulty run, fully determined and picklable."""

    def __init__(
        self,
        run_id: int,
        kind: str,
        target_path: str,
        window: "tuple[int, int] | None",
        params: dict,
    ) -> None:
        self.run_id = run_id
        self.kind = kind
        self.target_path = target_path
        self.window = window
        self.params = params

    @property
    def label(self) -> str:
        return f"run{self.run_id:03d}:{self.kind}@{self.target_path}"

    def __repr__(self) -> str:
        return f"RunSpec({self.label}, window={self.window})"


def match_targets(
    pattern: str, candidates: typing.Iterable[str]
) -> list[str]:
    """Sorted candidate paths matching an ``fnmatch`` glob."""
    return sorted(
        path for path in candidates if fnmatch.fnmatchcase(path, pattern)
    )


def _rand_below(rng: _Lcg, bound: int) -> int:
    """A seeded draw in ``[0, bound)`` for bounds past the LCG's 31 bits.

    Horizons are femtosecond counts, far beyond ``next_int``'s 31-bit
    range — a single draw would silently pin every window to the first
    couple of microseconds of the run.
    """
    if bound <= 0x7FFFFFFF:
        return rng.next_int(bound)
    high = rng.next_int(0x7FFFFFFF)
    low = rng.next_int(0x7FFFFFFF)
    return ((high << 31) | low) % bound


def _draw_window(
    rng: _Lcg, horizon: int, kind: str
) -> tuple[int, int]:
    """A seeded window inside ``[0, 1.5 * horizon)``.

    Starts are drawn past the golden end time on purpose: a fault that
    arms after all traffic has drained must classify as *benign*, and
    the campaign should exercise that path.
    """
    start = _rand_below(rng, max(1, (3 * horizon) // 2))
    span = max(1, horizon // 4)
    if kind == "glitch":
        span = max(1, horizon // 50)
    return (start, start + span)


def _draw_params(rng: _Lcg, kind: str, params: dict) -> dict:
    """Fill seed-drawn parameter values left unset in the spec."""
    drawn = dict(params)
    if kind == "bit_flip" and drawn.get("bit") is None:
        drawn["bit"] = rng.next_int(32)
    if kind == "command_corruption" and drawn.get("mask") is None:
        drawn["mask"] = 1 << rng.next_int(30)
    return {k: v for k, v in drawn.items() if v is not None}


def expand_campaign(
    spec: CampaignSpec,
    signal_paths: typing.Iterable[str],
    channel_paths: typing.Iterable[str],
    horizon: int,
) -> list[RunSpec]:
    """Expand a campaign into its deterministic run list.

    :param signal_paths: hierarchical names of every injectable signal
        on the platform (from a probe build).
    :param channel_paths: hierarchical names of every global-object
        handle.
    :param horizon: the golden run's end time (fs), the reference for
        seeded window placement.
    :raises FaultInjectionError: when a fault line matches nothing —
        a silently empty campaign is always a spec bug.
    """
    signal_paths = list(signal_paths)
    channel_paths = list(channel_paths)
    runs: list[RunSpec] = []
    run_id = 0
    for fault_index, fault in enumerate(spec.faults):
        candidates = (
            channel_paths
            if fault.target_kind == CHANNEL_TARGET
            else signal_paths
        )
        matched = match_targets(fault.target, candidates)
        if not matched:
            raise FaultInjectionError(
                f"campaign {spec.name!r}: fault line {fault!r} matches no "
                f"{fault.target_kind} target"
            )
        for target_index, path in enumerate(matched):
            for repeat in range(fault.repeats):
                # One private stream per run: reordering fault lines or
                # adding targets never perturbs other runs' draws.
                rng = _Lcg(
                    spec.seed
                    ^ (0x9E3779B1 * (fault_index + 1))
                    ^ (0x85EBCA77 * (target_index + 1))
                    ^ (0xC2B2AE35 * (repeat + 1))
                )
                window = fault.window
                if window is None:
                    window = _draw_window(rng, horizon, fault.kind)
                runs.append(
                    RunSpec(
                        run_id,
                        fault.kind,
                        path,
                        window,
                        _draw_params(rng, fault.kind, fault.params),
                    )
                )
                run_id += 1
    return runs


def demo_campaign_spec(
    platform: str = "pci",
    seed: int = 11,
    runs: int = 60,
) -> CampaignSpec:
    """The stock demo campaign on the Figure-4 platform.

    Six fault lines spanning all three interception layers (pin, OSSS
    scheduling, transaction), scaled so the total expansion is close to
    *runs*. On the PCI platform the pin lines target the AD bus (silent
    data corruption — PAR is regenerated from the corrupted wire, so
    parity cannot catch it), spurious FRAME# assertions (the monitor's
    address-phase rules catch idle-time strikes) and DEVSEL# stuck
    deasserted (missing target: master aborts, TRDY#-without-DEVSEL#
    violations, or lost commands).
    """
    if platform == "pci":
        pin_lines = [
            FaultSpec("bit_flip", "top.bus.ad", params={"bit": None}),
            FaultSpec("glitch", "top.bus.frame_n", params={"value": 0}),
            FaultSpec("stuck_at", "top.bus.devsel_n", params={"value": 1}),
        ]
    elif platform == "wishbone":
        pin_lines = [
            FaultSpec("bit_flip", "top.bus.dat_w", params={"bit": None}),
            FaultSpec("glitch", "top.bus.ack", params={"value": 1}),
            FaultSpec("stuck_at", "top.bus.ack", params={"value": 0}),
        ]
    elif platform == "axi4lite":
        pin_lines = [
            FaultSpec("bit_flip", "top.bus.wdata", params={"bit": None}),
            FaultSpec("glitch", "top.bus.bvalid", params={"value": 1}),
            FaultSpec("stuck_at", "top.bus.arready", params={"value": 0}),
        ]
    else:
        # The functional and generic-payload platforms have no wires;
        # only the channel layer is attackable.
        pin_lines = []
    channel = "top.interface.channel"
    channel_lines = [
        FaultSpec("command_corruption", channel,
                  params={"field": "data", "mask": None}),
        FaultSpec("dropped_request", channel,
                  params={"method": "put_command"}),
        FaultSpec("delayed_grant", channel),
    ]
    faults = pin_lines + channel_lines
    repeats = max(1, runs // len(faults))
    for fault in faults:
        fault.repeats = repeats
    return CampaignSpec(
        name=f"demo-{platform}",
        faults=faults,
        platform=platform,
        seed=seed,
        think_time=0 if platform == "functional" else 240 * NS,
    )
