"""Transaction-level interfaces.

The design flow's *functional models of the IPs* (paper, Section 3) offer
a transaction-level interface based on function calls. These are the
protocol-free contracts those models implement; the pin-accurate PCI
substrate implements the same operations over wires.
"""

from __future__ import annotations

import typing

from ..errors import ProtocolError

#: Byte-enable mask selecting all four bytes of a 32-bit word.
ALL_BYTES = 0xF


class TlmTarget:
    """A memory-mapped, word-addressed transaction-level target.

    Addresses are byte addresses aligned to 4; data are 32-bit ints.
    Implementations must be zero-time (pure function calls) — timing
    belongs to the communication layer, not to the functional model.
    """

    def read_word(self, address: int) -> int:
        raise NotImplementedError

    def write_word(self, address: int, data: int, byte_enables: int = ALL_BYTES) -> None:
        raise NotImplementedError

    # Burst helpers with sensible defaults in terms of the word ops.

    def read_burst(self, address: int, count: int) -> list[int]:
        return [self.read_word(address + 4 * i) for i in range(count)]

    def write_burst(self, address: int, data: typing.Sequence[int]) -> None:
        for offset, word in enumerate(data):
            self.write_word(address + 4 * offset, word)


def check_word_address(address: int) -> int:
    """Validate a 32-bit word-aligned byte address."""
    if not 0 <= address < 2**32:
        raise ProtocolError(f"address {address:#x} outside 32-bit space")
    if address % 4:
        raise ProtocolError(f"address {address:#x} is not word aligned")
    return address


def check_word_data(data: int) -> int:
    """Validate a 32-bit data word."""
    if not 0 <= data < 2**32:
        raise ProtocolError(f"data {data:#x} does not fit in 32 bits")
    return data


def apply_byte_enables(old: int, new: int, byte_enables: int) -> int:
    """Merge *new* into *old* under a 4-bit byte-enable mask."""
    if not 0 <= byte_enables <= ALL_BYTES:
        raise ProtocolError(f"byte enables {byte_enables:#x} exceed 4 bits")
    result = old
    for lane in range(4):
        if byte_enables & (1 << lane):
            mask = 0xFF << (8 * lane)
            result = (result & ~mask) | (new & mask)
    return result & 0xFFFFFFFF
