"""Address-map routing for transaction-level targets.

A :class:`AddressRouter` is itself a :class:`~repro.tlm.interfaces.
TlmTarget`, so a functional bus interface can treat "everything behind
the bus" as a single target while memories and peripherals keep their
own local address spaces.
"""

from __future__ import annotations

import typing

from ..errors import ProtocolError
from .interfaces import ALL_BYTES, TlmTarget


class AddressRange:
    """A half-open [base, base+size) window mapped to one target."""

    def __init__(self, base: int, size: int, target: TlmTarget, name: str = "") -> None:
        if size <= 0 or base % 4 or size % 4:
            raise ProtocolError(
                f"bad address range base={base:#x} size={size:#x}"
            )
        self.base = base
        self.size = size
        self.target = target
        self.name = name or type(target).__name__

    def __repr__(self) -> str:
        return f"AddressRange({self.name}: {self.base:#x}+{self.size:#x})"

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.base + other.size and other.base < self.base + self.size


class AddressRouter(TlmTarget):
    """Routes word accesses to the target whose window matches."""

    def __init__(self) -> None:
        self._ranges: list[AddressRange] = []

    def add_target(
        self, base: int, size: int, target: TlmTarget, name: str = ""
    ) -> AddressRange:
        """Map [base, base+size) to *target*; windows must not overlap."""
        entry = AddressRange(base, size, target, name)
        for existing in self._ranges:
            if existing.overlaps(entry):
                raise ProtocolError(
                    f"address range {entry!r} overlaps {existing!r}"
                )
        self._ranges.append(entry)
        return entry

    @property
    def ranges(self) -> tuple[AddressRange, ...]:
        return tuple(self._ranges)

    def decode(self, address: int) -> AddressRange:
        for entry in self._ranges:
            if entry.contains(address):
                return entry
        raise ProtocolError(f"no target decodes address {address:#x}")

    def read_word(self, address: int) -> int:
        entry = self.decode(address)
        return entry.target.read_word(address - entry.base)

    def write_word(self, address: int, data: int, byte_enables: int = ALL_BYTES) -> None:
        entry = self.decode(address)
        entry.target.write_word(address - entry.base, data, byte_enables)

    def read_burst(self, address: int, count: int) -> list[int]:
        entry = self.decode(address)
        if not entry.contains(address + 4 * (count - 1)):
            raise ProtocolError(
                f"burst of {count} words at {address:#x} crosses out of {entry!r}"
            )
        return entry.target.read_burst(address - entry.base, count)

    def write_burst(self, address: int, data: typing.Sequence[int]) -> None:
        entry = self.decode(address)
        if data and not entry.contains(address + 4 * (len(data) - 1)):
            raise ProtocolError(
                f"burst of {len(data)} words at {address:#x} crosses out of {entry!r}"
            )
        entry.target.write_burst(address - entry.base, data)
