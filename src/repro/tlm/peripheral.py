"""Functional peripheral models (the "peripherals" IP of Figure 2).

Two representative register-block peripherals, used by the examples and
benches as targets behind the bus interface:

* :class:`StatusRegisterBlock` — a generic control/status/data register
  file, the minimal thing a driver-style application talks to;
* :class:`DmaPeripheral` — a tiny DMA engine whose register programming
  triggers a word copy inside a backing memory, so a test can observe a
  side effect beyond plain storage.
"""

from __future__ import annotations

from ..errors import ProtocolError
from .interfaces import ALL_BYTES, TlmTarget, check_word_data
from .memory import Memory


class StatusRegisterBlock(TlmTarget):
    """A small register file: CONTROL, STATUS, DATA, SCRATCH.

    Register map (word offsets):

    == ========= =================================================
    0  CONTROL   bit0 = enable; bit1 = clear-status (self-clearing)
    1  STATUS    bit0 = enabled; bit7..4 = write counter (wraps)
    2  DATA      last datum written; reads return it bit-inverted
    3  SCRATCH   plain read/write storage
    == ========= =================================================
    """

    CONTROL, STATUS, DATA, SCRATCH = 0x0, 0x4, 0x8, 0xC

    def __init__(self) -> None:
        self.enabled = False
        self.write_counter = 0
        self.data = 0
        self.scratch = 0

    def read_word(self, address: int) -> int:
        offset = address & 0xF
        if offset == self.CONTROL:
            return 1 if self.enabled else 0
        if offset == self.STATUS:
            return (self.write_counter & 0xF) << 4 | (1 if self.enabled else 0)
        if offset == self.DATA:
            return self.data ^ 0xFFFFFFFF
        if offset == self.SCRATCH:
            return self.scratch
        raise ProtocolError(f"register block: bad offset {offset:#x}")

    def write_word(self, address: int, data: int, byte_enables: int = ALL_BYTES) -> None:
        check_word_data(data)
        offset = address & 0xF
        if offset == self.CONTROL:
            self.enabled = bool(data & 1)
            if data & 2:
                self.write_counter = 0
        elif offset == self.DATA:
            self.data = data
            self.write_counter = (self.write_counter + 1) & 0xF
        elif offset == self.SCRATCH:
            self.scratch = data
        elif offset == self.STATUS:
            raise ProtocolError("STATUS register is read-only")
        else:
            raise ProtocolError(f"register block: bad offset {offset:#x}")


class DmaPeripheral(TlmTarget):
    """A zero-time DMA engine programmed through four registers.

    Register map (word offsets): 0 SRC, 4 DST, 8 LEN (words),
    0xC START/STATUS — writing 1 performs the copy immediately and sets
    the done bit; reading returns bit0 = done.

    :param memory: the backing :class:`~repro.tlm.memory.Memory` the
        copy operates on.
    """

    SRC, DST, LEN, START = 0x0, 0x4, 0x8, 0xC

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self.src = 0
        self.dst = 0
        self.length = 0
        self.done = False
        self.copies_performed = 0

    def read_word(self, address: int) -> int:
        offset = address & 0xF
        if offset == self.SRC:
            return self.src
        if offset == self.DST:
            return self.dst
        if offset == self.LEN:
            return self.length
        if offset == self.START:
            return 1 if self.done else 0
        raise ProtocolError(f"dma: bad offset {offset:#x}")

    def write_word(self, address: int, data: int, byte_enables: int = ALL_BYTES) -> None:
        check_word_data(data)
        offset = address & 0xF
        if offset == self.SRC:
            self.src = data
        elif offset == self.DST:
            self.dst = data
        elif offset == self.LEN:
            self.length = data
        elif offset == self.START:
            if data & 1:
                self._copy()
        else:
            raise ProtocolError(f"dma: bad offset {offset:#x}")

    def _copy(self) -> None:
        words = self.memory.dump(self.src, self.length)
        self.memory.load(self.dst, words)
        self.done = True
        self.copies_performed += 1
