"""Transaction-level modeling substrate: channels, functional IP models."""

from .channels import ReqRspChannel, TlmFifo
from .interfaces import (
    ALL_BYTES,
    TlmTarget,
    apply_byte_enables,
    check_word_address,
    check_word_data,
)
from .memory import Memory, RomMemory
from .peripheral import DmaPeripheral, StatusRegisterBlock
from .router import AddressRange, AddressRouter

__all__ = [
    "ALL_BYTES",
    "AddressRange",
    "AddressRouter",
    "DmaPeripheral",
    "Memory",
    "ReqRspChannel",
    "RomMemory",
    "StatusRegisterBlock",
    "TlmFifo",
    "TlmTarget",
    "apply_byte_enables",
    "check_word_address",
    "check_word_data",
]
