"""Transaction-level modeling substrate: channels, functional IP models."""

from .channels import ReqRspChannel, TlmFifo
from .interfaces import (
    ALL_BYTES,
    TlmTarget,
    apply_byte_enables,
    check_word_address,
    check_word_data,
)
from .memory import Memory, RomMemory
from .peripheral import DmaPeripheral, StatusRegisterBlock
from .router import AddressRange, AddressRouter

#: Generic-payload names resolved lazily: generic_payload pulls in the
#: interface-element stack (repro.core), which itself imports
#: tlm.interfaces — an eager import here would close that cycle while
#: this package is still initialising.
_GENERIC_PAYLOAD_NAMES = (
    "GP_ADDRESS_ERROR",
    "GP_GENERIC_ERROR",
    "GP_INCOMPLETE",
    "GP_OK",
    "GP_READ",
    "GP_STATUSES",
    "GP_WRITE",
    "GenericPayload",
    "GpTargetSocket",
    "TlmGpBusInterface",
    "TlmGpFunctionalInterface",
)


def __getattr__(name: str):
    if name in _GENERIC_PAYLOAD_NAMES:
        from . import generic_payload

        return getattr(generic_payload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALL_BYTES",
    "AddressRange",
    "AddressRouter",
    "DmaPeripheral",
    "GP_ADDRESS_ERROR",
    "GP_GENERIC_ERROR",
    "GP_INCOMPLETE",
    "GP_OK",
    "GP_READ",
    "GP_STATUSES",
    "GP_WRITE",
    "GenericPayload",
    "GpTargetSocket",
    "Memory",
    "ReqRspChannel",
    "RomMemory",
    "StatusRegisterBlock",
    "TlmFifo",
    "TlmGpBusInterface",
    "TlmGpFunctionalInterface",
    "TlmTarget",
    "apply_byte_enables",
    "check_word_address",
    "check_word_data",
]
