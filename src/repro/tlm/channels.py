"""Transaction-level channels: bounded FIFO and request/response pairs.

These give functional system models SystemC-2.x-style ``tlm_fifo``
communication: blocking ``put``/``get`` generators usable from module
threads with ``yield from``.
"""

from __future__ import annotations

import typing
from collections import deque

from ..errors import SimulationError
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END
from ..kernel.event import Event
from ..kernel.simulator import Simulator


class TlmFifo:
    """A bounded FIFO with blocking put/get for thread processes.

    :param capacity: maximum queued items; ``None`` = unbounded.
    """

    def __init__(
        self, sim: Simulator, name: str = "fifo", capacity: int | None = None
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"fifo capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self._data_available = Event(sim.scheduler, f"{name}.data_available")
        self._space_available = Event(sim.scheduler, f"{name}.space_available")
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    # -- non-blocking ---------------------------------------------------------

    def try_put(self, item: object) -> bool:
        if self.is_full:
            return False
        self._items.append(item)
        self.total_put += 1
        self._data_available.notify()
        return True

    def try_get(self) -> tuple[bool, object]:
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.total_got += 1
        self._space_available.notify()
        return True, item

    def peek(self) -> object:
        if not self._items:
            raise SimulationError(f"peek on empty fifo {self.name!r}")
        return self._items[0]

    # -- blocking (yield from) ----------------------------------------------------

    def put(self, item: object):
        """Blocking put: ``yield from fifo.put(item)``."""
        while not self.try_put(item):
            yield self._space_available

    def get(self):
        """Blocking get: ``item = yield from fifo.get()``."""
        while True:
            ok, item = self.try_get()
            if ok:
                return item
            yield self._data_available


class ReqRspChannel:
    """A paired request/response channel for master/slave TLM models."""

    def __init__(self, sim: Simulator, name: str = "reqrsp", capacity: int = 1) -> None:
        self.sim = sim
        self.name = name
        self.requests = TlmFifo(sim, f"{name}.req", capacity)
        self.responses = TlmFifo(sim, f"{name}.rsp", capacity)

    def transport(self, request: object):
        """Master side: send *request*, block for the matching response."""
        probes = self.sim._probes
        if probes is not None:
            probes.emit(TRANSACTION_BEGIN, self.sim.time, self.name, request)
        yield from self.requests.put(request)
        response = yield from self.responses.get()
        if probes is not None:
            # The end probe carries the *request* payload so begin/end
            # pair up for duration accounting.
            probes.emit(TRANSACTION_END, self.sim.time, self.name, request)
        return response

    def serve(self, handler: typing.Callable[[object], object]):
        """Slave side: forever pop requests and push ``handler(request)``."""
        while True:
            request = yield from self.requests.get()
            yield from self.responses.put(handler(request))
