"""Transaction-level channels: bounded FIFO and request/response pairs.

These give functional system models SystemC-2.x-style ``tlm_fifo``
communication: blocking ``put``/``get`` generators usable from module
threads with ``yield from``.
"""

from __future__ import annotations

import typing
from collections import deque

from ..errors import SimulationError
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END, new_txn_id
from ..kernel.event import Event
from ..kernel.simulator import Simulator


class TlmTransaction:
    """Probe payload wrapping one ``transport`` round-trip.

    User requests are arbitrary objects (ints, dicts, ...), so the
    channel cannot stamp a transaction id on them directly; this wrapper
    gives every round-trip a stable :attr:`txn_id` while keeping the
    original request reachable. The same wrapper instance is emitted at
    both the begin and the end probe.
    """

    __slots__ = ("txn_id", "request", "corr_id")

    def __init__(self, request: object) -> None:
        self.txn_id = new_txn_id()
        self.request = request
        self.corr_id = getattr(request, "corr_id", None)

    def __repr__(self) -> str:
        return f"TlmTransaction(#{self.txn_id}, {self.request!r})"


class TlmFifo:
    """A bounded FIFO with blocking put/get for thread processes.

    :param capacity: maximum queued items; ``None`` = unbounded.
    """

    def __init__(
        self, sim: Simulator, name: str = "fifo", capacity: int | None = None
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"fifo capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self._data_available = Event(sim.scheduler, f"{name}.data_available")
        self._space_available = Event(sim.scheduler, f"{name}.space_available")
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    # -- non-blocking ---------------------------------------------------------

    def try_put(self, item: object) -> bool:
        if self.is_full:
            return False
        self._items.append(item)
        self.total_put += 1
        self._data_available.notify()
        return True

    def try_get(self) -> tuple[bool, object]:
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.total_got += 1
        self._space_available.notify()
        return True, item

    def peek(self) -> object:
        if not self._items:
            raise SimulationError(f"peek on empty fifo {self.name!r}")
        return self._items[0]

    # -- blocking (yield from) ----------------------------------------------------

    def put(self, item: object):
        """Blocking put: ``yield from fifo.put(item)``."""
        while not self.try_put(item):
            yield self._space_available

    def get(self):
        """Blocking get: ``item = yield from fifo.get()``."""
        while True:
            ok, item = self.try_get()
            if ok:
                return item
            yield self._data_available


class ReqRspChannel:
    """A paired request/response channel for master/slave TLM models."""

    def __init__(self, sim: Simulator, name: str = "reqrsp", capacity: int = 1) -> None:
        self.sim = sim
        self.name = name
        self.requests = TlmFifo(sim, f"{name}.req", capacity)
        self.responses = TlmFifo(sim, f"{name}.rsp", capacity)

    def transport(self, request: object):
        """Master side: send *request*, block for the matching response."""
        probes = self.sim._probes
        if probes is not None:
            # The same wrapper is emitted at begin and end, carrying a
            # stable txn_id, so subscribers pair the probes reliably
            # even across layers.
            transaction = TlmTransaction(request)
            probes.emit(TRANSACTION_BEGIN, self.sim.time, self.name, transaction)
        yield from self.requests.put(request)
        response = yield from self.responses.get()
        if probes is not None:
            probes.emit(TRANSACTION_END, self.sim.time, self.name, transaction)
        return response

    def serve(self, handler: typing.Callable[[object], object]):
        """Slave side: forever pop requests and push ``handler(request)``."""
        while True:
            request = yield from self.requests.get()
            yield from self.responses.put(handler(request))
