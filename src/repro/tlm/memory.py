"""Functional memory models (the "memories" IP of the paper's Figure 2)."""

from __future__ import annotations

import typing

from ..errors import ProtocolError
from .interfaces import (
    ALL_BYTES,
    TlmTarget,
    apply_byte_enables,
    check_word_address,
    check_word_data,
)


class Memory(TlmTarget):
    """Sparse word-addressed RAM.

    :param size_bytes: capacity; accesses beyond it raise
        :class:`~repro.errors.ProtocolError`.
    :param fill: value returned for never-written words.
    """

    def __init__(self, size_bytes: int = 1 << 20, fill: int = 0) -> None:
        if size_bytes <= 0 or size_bytes % 4:
            raise ProtocolError(
                f"memory size must be a positive multiple of 4, got {size_bytes}"
            )
        check_word_data(fill)
        self.size_bytes = size_bytes
        self.fill = fill
        self._words: dict[int, int] = {}
        self.read_count = 0
        self.write_count = 0

    def _check_range(self, address: int) -> int:
        check_word_address(address)
        if address >= self.size_bytes:
            raise ProtocolError(
                f"address {address:#x} beyond memory size {self.size_bytes:#x}"
            )
        return address

    def read_word(self, address: int) -> int:
        self._check_range(address)
        self.read_count += 1
        return self._words.get(address // 4, self.fill)

    def write_word(self, address: int, data: int, byte_enables: int = ALL_BYTES) -> None:
        self._check_range(address)
        check_word_data(data)
        self.write_count += 1
        if byte_enables == ALL_BYTES:
            self._words[address // 4] = data
            return
        old = self._words.get(address // 4, self.fill)
        self._words[address // 4] = apply_byte_enables(old, data, byte_enables)

    # -- test/bench conveniences ----------------------------------------------

    def load(self, address: int, words: typing.Sequence[int]) -> None:
        """Bulk-initialise memory contents (no access counting)."""
        self._check_range(address)
        for offset, word in enumerate(words):
            check_word_data(word)
            self._words[address // 4 + offset] = word

    def dump(self, address: int, count: int) -> list[int]:
        """Read *count* words without access counting."""
        self._check_range(address)
        return [self._words.get(address // 4 + i, self.fill) for i in range(count)]

    @property
    def words_written(self) -> int:
        return len(self._words)


class RomMemory(Memory):
    """Read-only memory: writes raise :class:`ProtocolError`."""

    def __init__(
        self,
        contents: typing.Sequence[int],
        size_bytes: int | None = None,
        fill: int = 0,
    ) -> None:
        size = size_bytes if size_bytes is not None else max(4, 4 * len(contents))
        super().__init__(size, fill)
        self.load(0, contents)

    def write_word(self, address: int, data: int, byte_enables: int = ALL_BYTES) -> None:
        raise ProtocolError(f"write to ROM at {address:#x}")
