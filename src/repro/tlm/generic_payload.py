"""TLM-2.0-style generic payload and blocking-transport socket.

Klingauf-style transaction-level communication: instead of per-protocol
wires, initiator and target exchange one *generic payload* object
through a ``b_transport`` call that returns an annotated delay. This
module provides the payload, a target socket adapting any
:class:`~repro.tlm.interfaces.TlmTarget`, and the library interface
element that lets applications swap a whole pin-level bus for a single
function call — the highest rung of the refinement ladder.
"""

from __future__ import annotations

from ..core.command import CommandType, DataType
from ..core.functional_interface import FunctionalBusInterface
from ..errors import ProtocolError
from ..hdl.module import Module
from ..iface.element import InterfaceElement
from ..iface.params import IfaceParams
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END, new_txn_id
from ..kernel.process import Timeout
from ..kernel.simulator import Simulator
from ..osss.arbiter import Arbiter
from .interfaces import ALL_BYTES, TlmTarget

#: Generic-payload commands.
GP_READ = "read"
GP_WRITE = "write"

#: Generic-payload response statuses (subset of the TLM-2.0 set).
GP_INCOMPLETE = "incomplete"
GP_OK = "ok"
GP_ADDRESS_ERROR = "address_error"
GP_GENERIC_ERROR = "generic_error"

GP_STATUSES = (GP_INCOMPLETE, GP_OK, GP_ADDRESS_ERROR, GP_GENERIC_ERROR)


class GenericPayload:
    """One transaction object passed by reference through the socket.

    :param command: :data:`GP_READ` or :data:`GP_WRITE`.
    :param address: word-aligned byte start address.
    :param data: words to write, or the container reads fill in.
    :param byte_enable: per-byte lane mask applied to each word.
    """

    def __init__(
        self,
        command: str,
        address: int,
        data=None,
        byte_enable: int = ALL_BYTES,
        count: int = 1,
    ) -> None:
        if command not in (GP_READ, GP_WRITE):
            raise ProtocolError(f"bad generic-payload command {command!r}")
        self.command = command
        self.address = address
        self.byte_enable = byte_enable
        if command == GP_WRITE:
            if not data:
                raise ProtocolError("write payload needs data")
            self.data = list(data)
            self.count = len(self.data)
        else:
            if data is not None:
                raise ProtocolError("read payload must not carry data")
            if count < 1:
                raise ProtocolError("read count must be >= 1")
            self.data = []
            self.count = count
        self.response_status = GP_INCOMPLETE
        #: Ignorable extensions, keyed by name (TLM-2.0 style).
        self.extensions: dict = {}
        #: Correlation id inherited from the issuing CommandType.
        self.corr_id: str | None = None
        #: Stable id for transaction.begin/end probe pairing.
        self.txn_id: int | None = None

    @property
    def is_write(self) -> bool:
        return self.command == GP_WRITE

    @property
    def is_response_ok(self) -> bool:
        return self.response_status == GP_OK

    @classmethod
    def read(cls, address: int, count: int = 1,
             byte_enable: int = ALL_BYTES) -> "GenericPayload":
        return cls(GP_READ, address, count=count, byte_enable=byte_enable)

    @classmethod
    def write(cls, address: int, data,
              byte_enable: int = ALL_BYTES) -> "GenericPayload":
        words = [data] if isinstance(data, int) else list(data)
        return cls(GP_WRITE, address, data=words, byte_enable=byte_enable)

    def __repr__(self) -> str:
        return (f"GenericPayload({self.command} @{self.address:#010x} "
                f"x{self.count} [{self.response_status}])")


class GpTargetSocket:
    """Blocking-transport target socket over a :class:`TlmTarget`.

    ``b_transport`` performs the payload against the target, sets the
    response status in place, and returns the annotated delay in fs
    (accept latency plus a per-word cost) — the caller decides whether
    to consume it with a wait.
    """

    def __init__(self, target: TlmTarget, accept_latency: int = 0,
                 word_latency: int = 0) -> None:
        if accept_latency < 0 or word_latency < 0:
            raise ProtocolError("socket latencies must be >= 0")
        self.target = target
        self.accept_latency = accept_latency
        self.word_latency = word_latency
        self.transports = 0
        self.words_transferred = 0

    def b_transport(self, payload: GenericPayload) -> int:
        self.transports += 1
        try:
            if payload.is_write:
                for offset, word in enumerate(payload.data):
                    self.target.write_word(
                        payload.address + 4 * offset, word,
                        payload.byte_enable,
                    )
            else:
                payload.data = [
                    self.target.read_word(payload.address + 4 * i)
                    for i in range(payload.count)
                ]
            payload.response_status = GP_OK
            self.words_transferred += payload.count
        except ProtocolError:
            payload.response_status = GP_ADDRESS_ERROR
        except Exception:
            payload.response_status = GP_GENERIC_ERROR
        return self.accept_latency + self.word_latency * payload.count


def _to_generic_payload(command: CommandType) -> GenericPayload:
    if command.is_write:
        payload = GenericPayload.write(
            command.address, command.data, byte_enable=command.byte_enables
        )
    else:
        payload = GenericPayload.read(
            command.address, count=command.count,
            byte_enable=command.byte_enables,
        )
    payload.corr_id = command.corr_id
    return payload


class TlmGpBusInterface(InterfaceElement):
    """Generic-payload interface element (transaction abstraction).

    The bus side is one ``b_transport`` call into a
    :class:`GpTargetSocket`; the annotated delay is consumed with a
    single wait, so loosely-timed platforms keep approximate timing
    without any wire activity.
    """

    BUS_NAME = "tlmgp"
    ABSTRACTION = "transaction"

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        socket: GpTargetSocket,
        arbiter: Arbiter | None = None,
        response_capacity: int | None = None,
        params: IfaceParams | None = None,
    ) -> None:
        super().__init__(parent, name, arbiter, params, response_capacity)
        self.socket = socket
        self.payloads_failed = 0
        self.thread(self._dispatch, "dispatch")

    def _dispatch(self):
        while True:
            epoch, command = yield from self.channel.call("get_command")
            payload = _to_generic_payload(command)
            payload.txn_id = new_txn_id()
            probes = self.sim._probes
            if probes is not None:
                probes.emit(TRANSACTION_BEGIN, self.sim.time, self.path, payload)
            delay = self.socket.b_transport(payload)
            if delay:
                yield Timeout(delay)
            if probes is not None:
                probes.emit(TRANSACTION_END, self.sim.time, self.path, payload)
            self.commands_serviced += 1
            if not payload.is_response_ok:
                self.payloads_failed += 1
            if command.is_read:
                response = DataType(
                    payload.data, "ok" if payload.is_response_ok
                    else payload.response_status
                )
                response.corr_id = payload.corr_id
                yield from self.channel.call("put_response", epoch, response)


class TlmGpFunctionalInterface(FunctionalBusInterface):
    """The functional element re-tagged for the tlmgp library slot."""

    BUS_NAME = "tlmgp"
    ABSTRACTION = "functional"
