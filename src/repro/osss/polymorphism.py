"""Hardware-oriented polymorphism (the SystemC+ late-binding feature).

Software polymorphism over an open class set cannot be synthesized; the
ODETTE flow therefore bounds the set of concrete classes a polymorphic
variable may hold. Storage becomes a tagged union (tag register + the
union of the variants' state) and a late-bound call becomes a multiplexer
over the variants' method implementations.

:class:`PolymorphicVar` gives the behavioural semantics;
:func:`repro.synthesis.poly_synth.synthesize_dispatch` lowers the
dispatch to RTL.
"""

from __future__ import annotations

import math
import typing

from ..errors import SimulationError


class PolymorphicVar:
    """A variable restricted to a closed set of classes under one base.

    :param base: the common base class declaring the callable interface.
    :param variants: the complete, ordered set of concrete classes this
        variable may hold. Order fixes the hardware tag encoding.
    """

    def __init__(
        self,
        base: type,
        variants: typing.Sequence[type],
        name: str = "poly",
    ) -> None:
        if not variants:
            raise SimulationError(f"{name}: a polymorphic var needs >= 1 variant")
        seen: list[type] = []
        for variant in variants:
            if not issubclass(variant, base):
                raise SimulationError(
                    f"{name}: {variant.__name__} is not a subclass of "
                    f"{base.__name__}"
                )
            if variant in seen:
                raise SimulationError(
                    f"{name}: duplicate variant {variant.__name__}"
                )
            seen.append(variant)
        self.base = base
        self.variants: tuple[type, ...] = tuple(variants)
        self.name = name
        self._value: object | None = None

    def __repr__(self) -> str:
        held = type(self._value).__name__ if self._value is not None else "<empty>"
        return f"PolymorphicVar({self.name}, holds {held})"

    # -- storage ------------------------------------------------------------

    @property
    def is_valid(self) -> bool:
        return self._value is not None

    @property
    def value(self) -> object:
        if self._value is None:
            raise SimulationError(f"{self.name}: read of an unassigned variable")
        return self._value

    @property
    def tag(self) -> int:
        """Hardware tag: index of the held class in the variant order."""
        return self.variants.index(type(self.value))

    @property
    def tag_bits(self) -> int:
        """Register width needed for the tag."""
        return max(1, math.ceil(math.log2(len(self.variants))))

    def assign(self, obj: object) -> None:
        """Store *obj*; its exact class must be one of the variants."""
        if type(obj) not in self.variants:
            raise SimulationError(
                f"{self.name}: cannot hold a {type(obj).__name__}; the "
                f"bounded set is {[v.__name__ for v in self.variants]}"
            )
        self._value = obj

    def clear(self) -> None:
        self._value = None

    # -- dispatch -------------------------------------------------------------

    def call(self, method: str, *args: object, **kwargs: object) -> object:
        """Late-bound method call on the held object.

        The method must be declared on the *base* class: the synthesized
        dispatcher only knows the common interface.
        """
        if not hasattr(self.base, method):
            raise SimulationError(
                f"{self.name}: {method!r} is not part of the "
                f"{self.base.__name__} interface"
            )
        target = getattr(self.value, method)
        return target(*args, **kwargs)

    def dispatch_table(self, method: str) -> dict[int, typing.Callable]:
        """tag -> unbound implementation, i.e. the multiplexer contents."""
        if not hasattr(self.base, method):
            raise SimulationError(
                f"{self.name}: {method!r} is not part of the "
                f"{self.base.__name__} interface"
            )
        table: dict[int, typing.Callable] = {}
        for index, variant in enumerate(self.variants):
            implementation = getattr(variant, method)
            table[index] = implementation
        return table

    def interface_methods(self) -> tuple[str, ...]:
        """Public callables of the base class (the synthesizable interface)."""
        names = []
        for name in dir(self.base):
            if name.startswith("_"):
                continue
            if callable(getattr(self.base, name)):
                names.append(name)
        return tuple(sorted(names))
