"""Global objects — the SystemC+ shared-object communication primitive.

Per the paper (Figure 1): a class with guarded methods is instantiated
in several modules; the instances are *connected*, after which they
share one state space. A method invoked through any connected instance
mutates that shared state; concurrent invocations are queued and
scheduled by a user-defined algorithm; a false guard suspends the caller
until the state changes.

Usage inside a module thread::

    self.channel = GlobalObject(self, "channel", BusChannel)
    ...
    def _run(self):
        result = yield from self.channel.call("put_command", command)
        # or, equivalently, the attribute sugar:
        result = yield from self.channel.put_command(command)
"""

from __future__ import annotations

import typing

from ..errors import ArbitrationError, GuardTimeoutError, SimulationError
from ..instrument.probes import (
    METHOD_CALL,
    METHOD_COMPLETE,
    METHOD_GRANT,
    METHOD_GUARD_BLOCK,
    METHOD_QUEUE,
    RESILIENCE_GIVEUP,
    RESILIENCE_RECOVERED,
    RESILIENCE_RETRY,
    RESILIENCE_TIMEOUT,
    emit_resilience,
)
from ..kernel.event import AnyOf, Event
from ..kernel.process import Timeout
from ..kernel.simulator import Simulator
from .arbiter import Arbiter, FcfsArbiter
from .guarded_method import GuardedMethodDescriptor, guarded_methods_of
from .request import MethodRequest, RequestStats

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hdl.module import Module


class SharedStateSpace:
    """The single state + request queue + server behind a connection group."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cls: type,
        args: tuple,
        kwargs: dict,
        arbiter: Arbiter,
        service_time: int = 0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.cls = cls
        self.state = cls(*args, **kwargs)
        self.arbiter = arbiter
        self.service_time = service_time
        self.methods: dict[str, GuardedMethodDescriptor] = guarded_methods_of(cls)
        self.pending: list[MethodRequest] = []
        #: method name (or ``"*"``) -> retry policy, consulted by
        #: :meth:`GlobalObject.call` when no explicit timeout is given.
        #: Policies are duck-typed (see :mod:`repro.resilience.policy`)
        #: so this layer stays free of resilience imports.
        self.retry_policies: dict[str, object] = {}
        self.stats = RequestStats()
        self.busy = False
        self._activity = Event(sim.scheduler, f"{name}.activity")
        self.server = sim.scheduler.spawn(self._serve, f"{name}.server")

    def __repr__(self) -> str:
        return f"SharedStateSpace({self.name}, {self.cls.__name__})"

    # -- method resolution --------------------------------------------------

    def descriptor(self, method: str) -> GuardedMethodDescriptor:
        """The guarded-method descriptor for *method*.

        Plain (unguarded) public methods of the shared class are also
        callable through the channel; they behave as guard-``true``.
        """
        try:
            return self.methods[method]
        except KeyError:
            pass
        attr = getattr(self.cls, method, None)
        if callable(attr) and not method.startswith("_"):
            descriptor = GuardedMethodDescriptor(attr, None)
            self.methods[method] = descriptor
            return descriptor
        raise SimulationError(
            f"{self.cls.__name__} has no callable method {method!r}"
        )

    def guard_true(self, method: str) -> bool:
        return self.descriptor(method).guard_true(self.state)

    # -- request handling ------------------------------------------------------

    def submit(self, request: MethodRequest) -> None:
        descriptor = self.descriptor(request.method)  # validate early
        self.pending.append(request)
        self.stats.total_requests += 1
        probes = self.sim._probes
        if probes is not None:
            now = self.sim.scheduler.time
            probes.emit(METHOD_CALL, now, self, request)
            if self.busy or len(self.pending) > 1 or \
                    not descriptor.guard_true(self.state):
                probes.emit(METHOD_QUEUE, now, self, request)
        self._activity.notify()

    def cancel(self, request: MethodRequest) -> None:
        request.cancelled = True
        try:
            self.pending.remove(request)
        except ValueError:
            pass

    def touch(self) -> None:
        """Force guard re-evaluation after out-of-band state mutation."""
        self._activity.notify()

    def try_execute(self, client: str, method: str, *args: object, **kwargs: object):
        """Non-blocking call: execute now if possible.

        :returns: ``(True, result)`` when the object was idle, nothing was
            queued ahead, and the guard held; ``(False, None)`` otherwise.
        """
        if self.busy or self.pending:
            return False, None
        descriptor = self.descriptor(method)
        if not descriptor.guard_true(self.state):
            return False, None
        result = descriptor.invoke(self.state, *args, **kwargs)
        probes = self.sim._probes
        if probes is not None:
            now = self.sim.scheduler.time
            request = MethodRequest(
                client=client, method=method, args=args, kwargs=kwargs,
                arrival_time=now, done_event=None,  # type: ignore[arg-type]
            )
            request.grant_time = now
            request.complete_time = now
            request.completed = True
            request.result = result
            probes.emit(METHOD_CALL, now, self, request)
            probes.emit(METHOD_GRANT, now, self, request)
            probes.emit(METHOD_COMPLETE, now, self, request)
        self._activity.notify()
        return True, result

    # -- server process -----------------------------------------------------------

    def _serve(self):
        scheduler = self.sim.scheduler
        while True:
            eligible = [
                request
                for request in self.pending
                if self.descriptor(request.method).guard_true(self.state)
            ]
            if not eligible:
                if self.pending:
                    probes = self.sim._probes
                    if probes is not None:
                        probes.emit(
                            METHOD_GUARD_BLOCK,
                            scheduler.time,
                            self,
                            tuple(self.pending),
                        )
                yield self._activity
                continue
            request = self.arbiter.select(eligible)
            if request not in self.pending:
                raise ArbitrationError(
                    f"{self.name}: arbiter {self.arbiter.kind!r} selected a "
                    f"request that is not pending: {request!r}"
                )
            self.pending.remove(request)
            self.busy = True
            request.grant_time = scheduler.time
            self.stats.record_grant(request, scheduler.time)
            probes = self.sim._probes
            if probes is not None:
                probes.emit(METHOD_GRANT, scheduler.time, self, request)
            if self.service_time > 0:
                yield Timeout(self.service_time)
            if request.cancelled:
                # The caller gave up (timeout/retry) while the call sat
                # in service; executing it now would let an abandoned
                # call take effect — possibly twice, after a resubmit.
                self.busy = False
                yield Timeout(0)
                continue
            descriptor = self.descriptor(request.method)
            try:
                request.result = descriptor.invoke(
                    self.state, *request.args, **request.kwargs
                )
            except Exception as error:  # delivered to the caller
                request.error = error
            request.completed = True
            request.complete_time = scheduler.time
            self.stats.record_completion(request)
            probes = self.sim._probes
            if probes is not None:
                probes.emit(METHOD_COMPLETE, scheduler.time, self, request)
            self.busy = False
            request.done_event.notify_delta()
            # One serviced call per delta: callers observe each state step.
            yield Timeout(0)


class GlobalObject:
    """A module-local handle on a (possibly connected) shared object.

    :param parent: the owning module.
    :param name: instance name within the module.
    :param cls: the shared class (with guarded methods). All handles in a
        connection group must use the same class.
    :param args / kwargs: constructor arguments for the shared state.
    :param arbiter: scheduling algorithm (default FCFS). At most one
        handle in a connection group may specify a non-default arbiter.
    :param service_time: fs consumed by each serviced call (0 = untimed
        behavioural model; the synthesized version derives its own timing
        from the clock).
    """

    def __init__(
        self,
        parent: "Module",
        name: str,
        cls: type,
        *args: object,
        arbiter: Arbiter | None = None,
        service_time: int = 0,
        **kwargs: object,
    ) -> None:
        self.module = parent
        self.sim = parent.sim
        self.name = name
        self.path = f"{parent.path}.{name}"
        self.cls = cls
        self._explicit_arbiter = arbiter
        self._space: SharedStateSpace | None = SharedStateSpace(
            self.sim,
            self.path,
            cls,
            args,
            kwargs,
            arbiter or FcfsArbiter(),
            service_time,
        )
        self._group_parent: "GlobalObject | None" = None
        #: Set by the communication synthesizer: calls are then served by
        #: the RT-level channel instead of the behavioural server.
        self._lowered: typing.Any = None
        self.sim.register_named(self.path, self)
        if not hasattr(parent, "_global_objects"):
            parent._global_objects = []  # type: ignore[attr-defined]
        parent._global_objects.append(self)  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return f"GlobalObject({self.path}, {self.cls.__name__})"

    # -- connection group (union-find) ----------------------------------------

    def _root(self) -> "GlobalObject":
        node = self
        while node._group_parent is not None:
            node = node._group_parent
        # Path compression.
        walker = self
        while walker._group_parent is not None:
            nxt = walker._group_parent
            walker._group_parent = node
            walker = nxt
        return node

    def connect(self, *others: "GlobalObject") -> "GlobalObject":
        """Merge this handle's state space with each of *others*.

        Returns ``self`` so connections can be chained.
        """
        for other in others:
            self._connect_one(other)
        return self

    def _connect_one(self, other: "GlobalObject") -> None:
        my_root = self._root()
        their_root = other._root()
        if my_root is their_root:
            return
        # Identical classes connect freely; otherwise one class must be a
        # subclass of the other (e.g. a blocking application port on a
        # non-blocking channel), and the derived class's space survives.
        derived: "GlobalObject | None" = None
        if my_root.cls is not their_root.cls:
            if issubclass(my_root.cls, their_root.cls):
                derived = my_root
            elif issubclass(their_root.cls, my_root.cls):
                derived = their_root
            else:
                raise SimulationError(
                    f"cannot connect {self.path} ({my_root.cls.__name__}) "
                    f"with {other.path} ({their_root.cls.__name__}): "
                    "unrelated classes"
                )
        my_space = my_root._space
        their_space = their_root._space
        assert my_space is not None and their_space is not None
        if my_space.stats.total_requests or their_space.stats.total_requests:
            raise SimulationError(
                f"cannot connect {self.path} and {other.path} after "
                "communication has started"
            )
        if my_root._explicit_arbiter is not None and \
                their_root._explicit_arbiter is not None:
            raise ArbitrationError(
                f"both {my_root.path} and {their_root.path} specify an "
                "arbiter; a connection group takes exactly one"
            )
        keep, drop = my_root, their_root
        if derived is not None:
            # The derived class's state space must survive.
            keep = derived
            drop = their_root if derived is my_root else my_root
        elif their_root._explicit_arbiter is not None:
            # Prefer the space whose handle carries the explicit arbiter.
            keep, drop = their_root, my_root
        drop_space = drop._space
        keep_space = keep._space
        assert drop_space is not None and keep_space is not None
        if drop._explicit_arbiter is not None and \
                keep._explicit_arbiter is None:
            # Carry the dropped handle's arbiter into the surviving space.
            keep_space.arbiter = drop._explicit_arbiter
        # Retry policies attached before the connect survive the merge;
        # the surviving space's own entries win on conflicts.
        for method, policy in drop_space.retry_policies.items():
            keep_space.retry_policies.setdefault(method, policy)
        drop_space.server.kill()
        drop._space = None
        drop._group_parent = keep

    @property
    def space(self) -> SharedStateSpace:
        """The shared state space of this handle's connection group."""
        root = self._root()
        assert root._space is not None
        return root._space

    @property
    def state(self) -> object:
        """The shared object instance itself (read access for guards/tests)."""
        return self.space.state

    @property
    def stats(self) -> RequestStats:
        return self.space.stats

    # -- calling ------------------------------------------------------------------

    def call(
        self,
        method: str,
        *args: object,
        timeout: int | None = None,
        client: str | None = None,
        priority: int = 0,
        **kwargs: object,
    ):
        """Blocking guarded-method call; use from a thread as
        ``result = yield from handle.call("name", ...)``.

        :param timeout: optional fs bound; :class:`GuardTimeoutError` is
            raised in the calling process if the call does not complete.
        :param client: override the client id used for arbitration
            (defaults to this handle's hierarchical path).
        """
        lowered = self._root()._lowered
        if lowered is not None:
            result = yield from lowered.client_call(
                self, method, args, kwargs,
                timeout=timeout, client=client, priority=priority,
            )
            return result
        space = self.space
        if timeout is None and space.retry_policies:
            policy = space.retry_policies.get(method) \
                or space.retry_policies.get("*")
            if policy is not None:
                result = yield from self._call_with_policy(
                    space, policy, method, args, kwargs, client, priority
                )
                return result
        scheduler = self.sim.scheduler
        done = Event(scheduler, f"{self.path}.{method}.done")
        request = MethodRequest(
            client=client or self.path,
            method=method,
            args=args,
            kwargs=kwargs,
            arrival_time=scheduler.time,
            done_event=done,
            priority=priority,
        )
        space.submit(request)
        if timeout is None:
            yield done
        else:
            expiry = Event(scheduler, f"{self.path}.{method}.timeout")
            expiry.notify_after(timeout)
            yield AnyOf(done, expiry)
            if not request.completed:
                space.cancel(request)
                raise GuardTimeoutError(
                    f"call {self.path}.{method} timed out after {timeout} fs"
                )
        if request.error is not None:
            raise request.error
        return request.result

    def _call_with_policy(
        self,
        space: SharedStateSpace,
        policy: typing.Any,
        method: str,
        args: tuple,
        kwargs: dict,
        client: str | None,
        priority: int,
    ):
        """Bounded attempts with per-attempt deadlines and backoff.

        *policy* is duck-typed: ``max_attempts``, ``attempt_timeout(n)``
        and ``backoff_schedule(*keys)`` — see
        :class:`~repro.resilience.policy.RetryPolicy`. A guard that
        never fires becomes a :class:`~repro.errors.GuardTimeoutError`
        in the caller instead of a hung process; recovery activity is
        published as ``resilience.*`` probes.
        """
        scheduler = self.sim.scheduler
        client_id = client or self.path
        backoffs = policy.backoff_schedule(client_id, method, scheduler.time)
        max_attempts = policy.max_attempts
        timed_out = False
        for attempt in range(1, max_attempts + 1):
            done = Event(scheduler, f"{self.path}.{method}.done")
            request = MethodRequest(
                client=client_id,
                method=method,
                args=args,
                kwargs=kwargs,
                arrival_time=scheduler.time,
                done_event=done,
                priority=priority,
            )
            space.submit(request)
            deadline = policy.attempt_timeout(attempt)
            expiry = Event(scheduler, f"{self.path}.{method}.deadline")
            expiry.notify_after(deadline)
            yield AnyOf(done, expiry)
            if request.completed:
                if request.error is not None:
                    raise request.error
                if timed_out:
                    emit_resilience(
                        self.sim, RESILIENCE_RECOVERED, self.path, method,
                        attempt, "guard timeout",
                    )
                return request.result
            timed_out = True
            space.cancel(request)
            emit_resilience(
                self.sim, RESILIENCE_TIMEOUT, self.path, method, attempt,
                f"no completion within {deadline} fs",
            )
            if attempt == max_attempts:
                break
            delay = backoffs[attempt - 1]
            if delay:
                yield Timeout(delay)
            emit_resilience(
                self.sim, RESILIENCE_RETRY, self.path, method, attempt + 1,
            )
        emit_resilience(
            self.sim, RESILIENCE_GIVEUP, self.path, method, max_attempts,
            "attempts exhausted",
        )
        raise GuardTimeoutError(
            f"call {self.path}.{method} gave up after {max_attempts} "
            f"attempts (policy {policy!r})"
        )

    def set_retry_policy(
        self, policy: typing.Any, *methods: str
    ) -> "GlobalObject":
        """Attach *policy* to this handle's connection group.

        With no *methods*, the policy covers every method that has no
        explicit policy of its own (the ``"*"`` slot). Returns ``self``
        for chaining.
        """
        for method in methods or ("*",):
            self.space.retry_policies[method] = policy
        return self

    def retry_policy_for(self, method: str) -> typing.Any:
        """The policy :meth:`call` would apply to *method* (or None)."""
        policies = self.space.retry_policies
        return policies.get(method) or policies.get("*")

    def try_call(self, method: str, *args: object, **kwargs: object):
        """Non-blocking variant: ``(granted, result)``, never suspends."""
        if self._root()._lowered is not None:
            raise SimulationError(
                f"{self.path}: non-blocking try_call is not available on a "
                "synthesized channel"
            )
        return self.space.try_execute(self.path, method, *args, **kwargs)

    def __getattr__(self, name: str):
        # Attribute sugar: handle.put_command(cmd) builds the call generator.
        # Only method names of the shared class are forwarded.
        if name.startswith("_"):
            raise AttributeError(name)
        attr = getattr(self.cls, name, None)
        if callable(attr) or isinstance(attr, GuardedMethodDescriptor):
            def caller(*args: object, **kwargs: object):
                return self.call(name, *args, **kwargs)

            caller.__name__ = name
            return caller
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r} and "
            f"{self.cls.__name__} has no method of that name"
        )


def connect(*handles: GlobalObject) -> GlobalObject:
    """Connect every handle into one group; returns the first handle."""
    if not handles:
        raise SimulationError("connect() needs at least one handle")
    first = handles[0]
    first.connect(*handles[1:])
    return first
