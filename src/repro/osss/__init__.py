"""OSSS / SystemC+ layer: global objects, guarded methods, arbitration,
hardware polymorphism — the language extension the ODETTE project adds on
top of the synthesisable SystemC subset."""

from .arbiter import (
    ARBITER_FACTORIES,
    Arbiter,
    FcfsArbiter,
    RandomArbiter,
    RoundRobinArbiter,
    StaticPriorityArbiter,
    make_arbiter,
)
from .global_object import GlobalObject, SharedStateSpace, connect
from .guarded_method import (
    GuardedMethodDescriptor,
    guarded_method,
    guarded_methods_of,
    is_guarded,
)
from .polymorphism import PolymorphicVar
from .request import MethodRequest, RequestStats

__all__ = [
    "ARBITER_FACTORIES",
    "Arbiter",
    "FcfsArbiter",
    "GlobalObject",
    "GuardedMethodDescriptor",
    "MethodRequest",
    "PolymorphicVar",
    "RandomArbiter",
    "RequestStats",
    "RoundRobinArbiter",
    "SharedStateSpace",
    "StaticPriorityArbiter",
    "connect",
    "guarded_method",
    "guarded_methods_of",
    "is_guarded",
    "make_arbiter",
]
