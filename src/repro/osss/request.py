"""Method-call requests queued at a shared object.

When a process invokes a guarded method of a global object, the call is
reified as a :class:`MethodRequest` and queued at the shared state space.
The arbiter sees requests (never raw processes), which is also the unit
the synthesis tool lowers to a request/grant signal pair.
"""

from __future__ import annotations

import itertools

from ..kernel.event import Event

_sequence = itertools.count()


class MethodRequest:
    """One pending (or completed) guarded-method invocation."""

    def __init__(
        self,
        client: str,
        method: str,
        args: tuple,
        kwargs: dict,
        arrival_time: int,
        done_event: Event,
        priority: int = 0,
    ) -> None:
        self.client = client
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.arrival_time = arrival_time
        self.priority = priority
        self.seq = next(_sequence)
        self.done_event = done_event
        self.result: object = None
        self.error: BaseException | None = None
        self.completed = False
        #: Set when the caller abandoned the request (timeout/retry); a
        #: cancelled request that was already granted is *not* executed,
        #: so an abandoned-then-retried call cannot take effect twice.
        self.cancelled = False
        self.grant_time: int | None = None
        self.complete_time: int | None = None

    def __repr__(self) -> str:
        state = (
            "done" if self.completed
            else "cancelled" if self.cancelled
            else "pending"
        )
        return f"MethodRequest({self.client}->{self.method}, {state})"

    @property
    def wait_time(self) -> int:
        """Femtoseconds between arrival and grant (0 if never granted)."""
        if self.grant_time is None:
            return 0
        return self.grant_time - self.arrival_time


def correlation_id_of(request: MethodRequest) -> str | None:
    """Correlation id carried by a method request, if any.

    Guarded-method calls themselves are not correlated; the id rides on
    the application payloads they move (a ``CommandType`` argument on
    ``put_command``, a ``DataType`` result from ``app_data_get``, or the
    ``(epoch, command)`` tuple ``get_command`` returns). This scans the
    arguments and the result for the first object exposing a non-None
    ``corr_id``.
    """
    candidates = list(request.args)
    result = request.result
    if isinstance(result, tuple):
        candidates.extend(result)
    elif result is not None:
        candidates.append(result)
    for value in candidates:
        corr_id = getattr(value, "corr_id", None)
        if corr_id is not None:
            return corr_id
    return None


class RequestStats:
    """Aggregated servicing statistics of one shared state space."""

    def __init__(self) -> None:
        self.total_requests = 0
        self.total_completed = 0
        self.wait_times: list[int] = []
        self.grants_by_client: dict[str, int] = {}
        self.grant_log: list[tuple[int, str, str]] = []

    def record_grant(self, request: MethodRequest, time: int) -> None:
        self.grant_log.append((time, request.client, request.method))
        self.grants_by_client[request.client] = (
            self.grants_by_client.get(request.client, 0) + 1
        )

    def record_completion(self, request: MethodRequest) -> None:
        self.total_completed += 1
        self.wait_times.append(request.wait_time)

    @property
    def mean_wait_time(self) -> float:
        if not self.wait_times:
            return 0.0
        return sum(self.wait_times) / len(self.wait_times)

    @property
    def max_wait_time(self) -> int:
        return max(self.wait_times) if self.wait_times else 0

    def fairness_index(self) -> float:
        """Jain's fairness index over per-client grant counts (1.0 = fair)."""
        counts = list(self.grants_by_client.values())
        if not counts:
            return 1.0
        numerator = sum(counts) ** 2
        denominator = len(counts) * sum(c * c for c in counts)
        return numerator / denominator if denominator else 1.0
