"""Scheduling algorithms for concurrent guarded-method calls.

The paper: *"if different modules invoke at the same time the execution
of a guarded method of a shared global object, the calls are queued and
scheduled according to a user defined algorithm."* An :class:`Arbiter`
is that algorithm. The same object later parameterises the synthesized
RT-level arbiter FSM, so every arbiter carries a ``kind`` tag the
synthesis backend understands.
"""

from __future__ import annotations

import typing

from ..errors import ArbitrationError
from .request import MethodRequest


class Arbiter:
    """Base scheduling policy: pick one of the eligible requests."""

    #: Tag used by the synthesis backend to pick an RTL implementation.
    kind = "base"

    def select(self, eligible: typing.Sequence[MethodRequest]) -> MethodRequest:
        """Choose which request to service next.

        :param eligible: non-empty; pending requests whose guard is true.
        """
        raise NotImplementedError

    def _check(self, eligible: typing.Sequence[MethodRequest]) -> None:
        if not eligible:
            raise ArbitrationError(f"{type(self).__name__}: empty eligible set")


class FcfsArbiter(Arbiter):
    """First come, first served; ties broken by submission order."""

    kind = "fcfs"

    def select(self, eligible: typing.Sequence[MethodRequest]) -> MethodRequest:
        self._check(eligible)
        return min(eligible, key=lambda r: (r.arrival_time, r.seq))


class RoundRobinArbiter(Arbiter):
    """Rotating priority over client names.

    After granting client *c*, every other client gets priority over *c*
    in the next arbitration, which bounds starvation.
    """

    kind = "round_robin"

    def __init__(self) -> None:
        self._order: list[str] = []

    def _rank(self, client: str) -> int:
        if client not in self._order:
            self._order.append(client)
        return self._order.index(client)

    def select(self, eligible: typing.Sequence[MethodRequest]) -> MethodRequest:
        self._check(eligible)
        chosen = min(eligible, key=lambda r: (self._rank(r.client), r.seq))
        # Move the granted client to the back of the rotation.
        self._order.remove(chosen.client)
        self._order.append(chosen.client)
        return chosen


class StaticPriorityArbiter(Arbiter):
    """Fixed client priorities; lower number wins. Ties are FCFS.

    :param priorities: client name -> priority. Unlisted clients get
        *default_priority*.
    """

    kind = "static_priority"

    def __init__(
        self,
        priorities: typing.Mapping[str, int] | None = None,
        default_priority: int = 100,
    ) -> None:
        self.priorities = dict(priorities or {})
        self.default_priority = default_priority

    def priority_of(self, client: str) -> int:
        return self.priorities.get(client, self.default_priority)

    def select(self, eligible: typing.Sequence[MethodRequest]) -> MethodRequest:
        self._check(eligible)
        return min(
            eligible,
            key=lambda r: (self.priority_of(r.client), r.arrival_time, r.seq),
        )


class RandomArbiter(Arbiter):
    """Seeded pseudo-random selection (deterministic for a given seed)."""

    kind = "random"

    def __init__(self, seed: int = 0) -> None:
        # A tiny explicit LCG keeps runs reproducible without global RNG state.
        self._state = seed & 0xFFFFFFFF

    def _next(self) -> int:
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state

    def select(self, eligible: typing.Sequence[MethodRequest]) -> MethodRequest:
        self._check(eligible)
        ordered = sorted(eligible, key=lambda r: r.seq)
        return ordered[self._next() % len(ordered)]


#: Registry used by configuration files / benchmarks.
ARBITER_FACTORIES: dict[str, typing.Callable[[], Arbiter]] = {
    "fcfs": FcfsArbiter,
    "round_robin": RoundRobinArbiter,
    "static_priority": StaticPriorityArbiter,
    "random": RandomArbiter,
}


def make_arbiter(kind: str, **kwargs: typing.Any) -> Arbiter:
    """Build an arbiter by its ``kind`` tag."""
    try:
        factory = ARBITER_FACTORIES[kind]
    except KeyError:
        raise ArbitrationError(
            f"unknown arbiter kind {kind!r}; known: {sorted(ARBITER_FACTORIES)}"
        ) from None
    return factory(**kwargs)  # type: ignore[call-arg]
