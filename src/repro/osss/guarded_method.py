"""Guarded methods — the SystemC+ ``GUARDED_METHOD`` macro as a decorator.

The paper declares, e.g.::

    GUARDED_METHOD(void, putCommand(CommandType& command), !isPendingCommand)

Here that becomes::

    class BusChannel:
        def __init__(self):
            self.pending_command = None

        @guarded_method(lambda self: self.pending_command is None)
        def put_command(self, command):
            self.pending_command = command

The guard is a predicate over the shared object's state. A caller whose
guard evaluates false is suspended until the state changes and the guard
becomes true (the *blocking* semantics the paper exploits).
"""

from __future__ import annotations

import typing

from ..errors import SimulationError

GuardPredicate = typing.Callable[[typing.Any], bool]


class GuardedMethodDescriptor:
    """Marks a shared-object method as guarded and stores its guard."""

    def __init__(self, func: typing.Callable, guard: GuardPredicate | None) -> None:
        self.func = func
        self.guard = guard
        self.__name__ = func.__name__
        self.__doc__ = func.__doc__

    def __set_name__(self, owner: type, name: str) -> None:
        self.__name__ = name

    def __get__(self, instance: object, owner: type | None = None):
        if instance is None:
            return self
        # Direct invocation (outside a channel) behaves like the plain
        # method — convenient in unit tests of the object's functionality.
        return self.func.__get__(instance, owner)

    def guard_true(self, state: object) -> bool:
        """Evaluate the guard against *state* (unguarded methods are open).

        Guards should return ``bool``, but 0/1-like results (``0``,
        ``1``, numpy-ish scalars, single-bit ints) are coerced — the
        SystemC+ macro takes any expression convertible to ``bool``.
        Anything that is not clearly a truth value still raises: a guard
        returning, say, a list or a signal object is a bug, and
        ``bool()`` on it would silently hide that. The lint rule GRD004
        flags coercible guards statically instead of at runtime.
        """
        if self.guard is None:
            return True
        result = self.guard(state)
        if isinstance(result, bool):
            return result
        try:
            as_int = int(result)
        except (TypeError, ValueError):
            as_int = None
        if as_int is not None and as_int in (0, 1) and result == as_int:
            return bool(as_int)
        raise SimulationError(
            f"guard of {self.__name__!r} returned {result!r}, expected bool"
        )

    def invoke(self, state: object, *args: object, **kwargs: object) -> object:
        return self.func(state, *args, **kwargs)


def guarded_method(guard: GuardPredicate | None = None):
    """Decorator factory: mark a method as a guarded method.

    :param guard: predicate over ``self`` (the shared state); ``None``
        means always callable (guard ``true`` in the paper's ``reset``).
    """

    def decorate(func: typing.Callable) -> GuardedMethodDescriptor:
        return GuardedMethodDescriptor(func, guard)

    return decorate


def guarded_methods_of(cls: type) -> dict[str, GuardedMethodDescriptor]:
    """All guarded methods declared on *cls* (including inherited ones)."""
    found: dict[str, GuardedMethodDescriptor] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            if isinstance(attr, GuardedMethodDescriptor):
                found[name] = attr
    return found


def is_guarded(cls: type, name: str) -> bool:
    return name in guarded_methods_of(cls)
