"""The Figure 2 design flow driver and the canonical example platforms."""

from .design_flow import DesignFlow, FlowReport, FlowStage
from .platforms import (
    PciPlatformConfig,
    PlatformBundle,
    build_functional_platform,
    build_pci_platform,
    build_wishbone_platform,
    standard_flow_builders,
)

__all__ = [
    "DesignFlow",
    "FlowReport",
    "FlowStage",
    "PciPlatformConfig",
    "PlatformBundle",
    "build_functional_platform",
    "build_pci_platform",
    "build_wishbone_platform",
    "standard_flow_builders",
]
