"""The Figure 2 design flow driver and the canonical example platforms."""

from .design_flow import DesignFlow, FlowReport, FlowStage
from .platforms import (
    BUS_FAMILIES,
    PciPlatformConfig,
    PlatformBundle,
    build_axi4lite_platform,
    build_functional_platform,
    build_pci_platform,
    build_platform,
    build_tlmgp_platform,
    build_wishbone_platform,
    standard_flow_builders,
)

__all__ = [
    "BUS_FAMILIES",
    "DesignFlow",
    "FlowReport",
    "FlowStage",
    "PciPlatformConfig",
    "PlatformBundle",
    "build_axi4lite_platform",
    "build_functional_platform",
    "build_pci_platform",
    "build_platform",
    "build_tlmgp_platform",
    "build_wishbone_platform",
    "standard_flow_builders",
]
