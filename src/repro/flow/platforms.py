"""Canonical executable platforms for the paper's PCI example.

Both platforms host the same IPs (a memory and a register-block
peripheral) behind the same address map, and the same applications —
only the bus interface element differs, which is exactly the paper's
refinement claim. Examples, tests and benches build their systems
through these helpers instead of hand-wiring testbenches.

Address map::

    0x0000_0000 .. +mem_size   memory
    peripheral_base .. +0x10   status register block
"""

from __future__ import annotations

import typing

from ..core.application import Application
from ..core.command import CommandType
from ..core.functional_interface import FunctionalBusInterface
from ..core.pci_interface import PciBusInterface
from ..core.refinement import PlatformHandle
from ..errors import RefinementError
from ..hdl.clock import Clock
from ..hdl.module import Module
from ..kernel.simtime import NS
from ..kernel.simulator import Simulator
from ..osss.arbiter import Arbiter
from ..pci.arbiter import PciCentralArbiter
from ..pci.monitor import PciMonitor
from ..pci.signals import PciBus
from ..pci.target import PciTarget
from ..tlm.memory import Memory
from ..tlm.peripheral import StatusRegisterBlock
from ..tlm.router import AddressRouter


class PciPlatformConfig:
    """Shared knobs of the example platforms."""

    def __init__(
        self,
        clock_period: int = 30 * NS,
        mem_size: int = 1 << 16,
        peripheral_base: int = 0x0001_0000,
        decode_latency: int = 1,
        wait_states: int = 0,
        retry_count: int = 0,
        disconnect_after: int | None = None,
        word_latency: int = 0,
        arbiter: Arbiter | None = None,
        response_capacity: int = 4,
        monitor_strict: bool = True,
        app_think_time: int = 0,
        resilience: object | None = None,
        backend: str = "interpreted",
    ) -> None:
        if backend not in ("interpreted", "compiled"):
            raise RefinementError(
                f"unknown backend {backend!r}; expected 'interpreted' or "
                "'compiled'"
            )
        self.clock_period = clock_period
        self.mem_size = mem_size
        self.peripheral_base = peripheral_base
        self.decode_latency = decode_latency
        self.wait_states = wait_states
        self.retry_count = retry_count
        self.disconnect_after = disconnect_after
        self.word_latency = word_latency
        self.arbiter = arbiter
        self.response_capacity = response_capacity
        self.monitor_strict = monitor_strict
        #: fs of local work each application simulates between commands
        #: (0 = back-to-back traffic; >0 leaves idle bus cycles).
        self.app_think_time = app_think_time
        #: Optional :class:`repro.resilience.ResilienceConfig`; when set,
        #: builders wire call-level retry + protocol replay onto the
        #: interface element (applications stay untouched). None keeps
        #: the recovery-free fast path — the shipping default.
        self.resilience = resilience
        #: Execution backend for synthesized channels: "interpreted"
        #: (the generator-based RTL channel) or "compiled" (the
        #: generated-code core from repro.compile). Takes effect when a
        #: builder runs with synthesize=True; an explicit
        #: synthesis_config passed to the builder wins over this knob.
        self.backend = backend


def _maybe_apply_resilience(interface, config: "PciPlatformConfig") -> None:
    """Arm the interface element when the config carries a resilience
    configuration (applied after synthesis, so lowered channels are
    handled: call-level policies only take effect on behavioural
    channels, protocol replay works at every refinement level)."""
    if config.resilience is None:
        return
    from ..resilience import apply_resilience

    apply_resilience(interface, config.resilience)


class PlatformBundle:
    """A built platform plus handles on its interesting pieces."""

    def __init__(
        self,
        handle: PlatformHandle,
        top: Module,
        memory: Memory,
        peripheral: StatusRegisterBlock,
        interface,
        monitor=None,
        clock: Clock | None = None,
        synthesis: object | None = None,
        bus: PciBus | None = None,
    ) -> None:
        self.handle = handle
        self.top = top
        self.memory = memory
        self.peripheral = peripheral
        self.interface = interface
        #: Bus monitor (PciMonitor or WishboneMonitor), when present.
        self.monitor = monitor
        self.clock = clock
        self.synthesis = synthesis
        self.bus = bus

    def run(self, max_time: int):
        return self.handle.run(max_time)


def build_functional_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    label: str = "functional",
) -> PlatformBundle:
    """The high-level executable model: TLM interface, functional IPs."""
    config = config or PciPlatformConfig()
    sim = Simulator()

    class FunctionalTop(Module):
        def __init__(self, parent: Simulator, name: str) -> None:
            super().__init__(parent, name)
            self.memory = Memory(config.mem_size)
            self.peripheral = StatusRegisterBlock()
            router = AddressRouter()
            router.add_target(0, config.mem_size, self.memory, "mem")
            router.add_target(config.peripheral_base, 0x10, self.peripheral, "regs")
            self.interface = FunctionalBusInterface(
                self,
                "interface",
                router,
                word_latency=config.word_latency,
                arbiter=config.arbiter,
                response_capacity=config.response_capacity,
            )
            self.apps = [
                Application(self, f"app{i}", commands, self.interface,
                            think_time=config.app_think_time)
                for i, commands in enumerate(workloads)
            ]

    top = FunctionalTop(sim, "top")
    interface = top.interface
    _maybe_apply_resilience(top.interface, config)
    handle = PlatformHandle(
        sim, top.apps, label,
        quiesce=lambda: (
            interface.channel_state.commands_put == interface.commands_serviced
        ),
        quiesce_poll=NS,
    )
    return PlatformBundle(
        handle, top, top.memory, top.peripheral, top.interface
    )


def build_pci_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    synthesize: bool = False,
    label: str | None = None,
    synthesis_config: object | None = None,
) -> PlatformBundle:
    """The implementation model: pin-accurate PCI interface + targets.

    :param synthesize: apply communication synthesis to every
        global-object channel before returning (the paper's step 2).
    """
    config = config or PciPlatformConfig()
    sim = Simulator()

    class PciTop(Module):
        def __init__(self, parent: Simulator, name: str) -> None:
            super().__init__(parent, name)
            self.clock = Clock(self, "clock", period=config.clock_period)
            self.bus = PciBus(self, "bus", n_masters=1)
            self.pci_arbiter = PciCentralArbiter(
                self, "pci_arbiter", self.bus, self.clock.clk
            )
            self.memory = Memory(config.mem_size)
            self.peripheral = StatusRegisterBlock()
            self.mem_target = PciTarget(
                self, "mem_target", self.bus, self.clock.clk, self.memory,
                base=0, size=config.mem_size,
                decode_latency=config.decode_latency,
                wait_states=config.wait_states,
                retry_count=config.retry_count,
                disconnect_after=config.disconnect_after,
            )
            self.reg_target = PciTarget(
                self, "reg_target", self.bus, self.clock.clk, self.peripheral,
                base=config.peripheral_base, size=0x10,
                decode_latency=config.decode_latency,
            )
            self.monitor = PciMonitor(
                self, "monitor", self.bus, self.clock.clk,
                strict=config.monitor_strict,
            )
            self.interface = PciBusInterface(
                self,
                "interface",
                self.bus,
                self.clock.clk,
                arbiter=config.arbiter,
                response_capacity=config.response_capacity,
            )
            self.apps = [
                Application(self, f"app{i}", commands, self.interface,
                            think_time=config.app_think_time)
                for i, commands in enumerate(workloads)
            ]

    top = PciTop(sim, "top")
    synthesis = None
    if synthesize:
        from ..synthesis.tool import SynthesisConfig, synthesize_communication

        if synthesis_config is None:
            synthesis_config = SynthesisConfig(backend=config.backend)
        synthesis = synthesize_communication(
            sim, top.clock.clk, synthesis_config  # type: ignore[arg-type]
        )
    if label is None:
        label = "post_synthesis" if synthesize else "pin_accurate"
    interface = top.interface
    _maybe_apply_resilience(top.interface, config)
    handle = PlatformHandle(
        sim, top.apps, label,
        quiesce=lambda: (
            interface.channel_state.commands_put == interface.commands_serviced
        ),
        quiesce_poll=config.clock_period,
    )
    return PlatformBundle(
        handle, top, top.memory, top.peripheral, top.interface,
        monitor=top.monitor, clock=top.clock, synthesis=synthesis,
        bus=top.bus,
    )


def build_wishbone_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    synthesize: bool = False,
    label: str | None = None,
    synthesis_config: object | None = None,
) -> PlatformBundle:
    """The same system behind the library's Wishbone interface element.

    Identical IPs and address map to the PCI platforms; only the bus and
    its interface element differ — the "pick a different IP from the
    library" move.
    """
    from ..wishbone.interface import WishboneBusInterface
    from ..wishbone.monitor import WishboneMonitor
    from ..wishbone.signals import WishboneBus
    from ..wishbone.slave import WishboneSlave

    config = config or PciPlatformConfig()
    sim = Simulator()

    class WishboneTop(Module):
        def __init__(self, parent: Simulator, name: str) -> None:
            super().__init__(parent, name)
            self.clock = Clock(self, "clock", period=config.clock_period)
            self.bus = WishboneBus(self, "bus")
            self.memory = Memory(config.mem_size)
            self.peripheral = StatusRegisterBlock()
            self.mem_slave = WishboneSlave(
                self, "mem_slave", self.bus, self.clock.clk, self.memory,
                base=0, size=config.mem_size,
                ack_latency=config.wait_states,
            )
            self.reg_slave = WishboneSlave(
                self, "reg_slave", self.bus, self.clock.clk, self.peripheral,
                base=config.peripheral_base, size=0x10,
            )
            self.monitor = WishboneMonitor(
                self, "monitor", self.bus, self.clock.clk,
                strict=config.monitor_strict,
            )
            self.interface = WishboneBusInterface(
                self,
                "interface",
                self.bus,
                self.clock.clk,
                arbiter=config.arbiter,
                response_capacity=config.response_capacity,
            )
            self.apps = [
                Application(self, f"app{i}", commands, self.interface,
                            think_time=config.app_think_time)
                for i, commands in enumerate(workloads)
            ]

    top = WishboneTop(sim, "top")
    synthesis = None
    if synthesize:
        from ..synthesis.tool import SynthesisConfig, synthesize_communication

        if synthesis_config is None:
            synthesis_config = SynthesisConfig(backend=config.backend)
        synthesis = synthesize_communication(
            sim, top.clock.clk, synthesis_config  # type: ignore[arg-type]
        )
    if label is None:
        label = "wishbone_post_synthesis" if synthesize else "wishbone"
    interface = top.interface
    _maybe_apply_resilience(top.interface, config)
    handle = PlatformHandle(
        sim, top.apps, label,
        quiesce=lambda: (
            interface.channel_state.commands_put == interface.commands_serviced
        ),
        quiesce_poll=config.clock_period,
    )
    return PlatformBundle(
        handle, top, top.memory, top.peripheral, top.interface,
        monitor=top.monitor, clock=top.clock, synthesis=synthesis,
    )


def standard_flow_builders(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
):
    """(functional_builder, implementation_builder) for :class:`DesignFlow`."""
    if not workloads:
        raise RefinementError("standard platforms need at least one workload")

    def functional_builder():
        return build_functional_platform(workloads, config).handle

    def implementation_builder(synthesize: bool, backend: str = "interpreted"):
        synthesis_config = None
        if synthesize:
            from ..synthesis.tool import SynthesisConfig

            synthesis_config = SynthesisConfig(backend=backend)
        bundle = build_pci_platform(
            workloads, config, synthesize=synthesize,
            synthesis_config=synthesis_config,
        )
        return bundle.handle, bundle.synthesis

    return functional_builder, implementation_builder
