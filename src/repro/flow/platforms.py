"""Canonical executable platforms, one per bus family.

Every platform hosts the same IPs (a memory and a register-block
peripheral) behind the same address map, and the same applications —
only the bus interface element differs, which is exactly the paper's
refinement claim. Examples, tests and benches build their systems
through :func:`build_platform` (or the per-family wrappers) instead of
hand-wiring testbenches.

Address map::

    0x0000_0000 .. +mem_size   memory
    peripheral_base .. +0x10   status register block

The bus families (:data:`BUS_FAMILIES`):

``functional``
    TLM interface straight into the functional IP models (no wires).
``pci``
    The paper's example: multiplexed tri-state PCI with central arbiter.
``wishbone``
    Classic-cycle Wishbone B3.
``axi4lite``
    Five-channel VALID/READY AXI4-Lite.
``tlmgp``
    TLM-2.0-style generic payload through a blocking-transport socket.
"""

from __future__ import annotations

import typing

from ..core.application import Application
from ..core.command import CommandType
from ..core.functional_interface import FunctionalBusInterface
from ..core.pci_interface import PciBusInterface
from ..core.refinement import PlatformHandle
from ..errors import RefinementError
from ..hdl.clock import Clock
from ..hdl.module import Module
from ..iface.params import IfaceParams
from ..kernel.simtime import NS
from ..kernel.simulator import Simulator
from ..osss.arbiter import Arbiter
from ..pci.arbiter import PciCentralArbiter
from ..pci.monitor import PciMonitor
from ..pci.signals import PciBus
from ..pci.target import PciTarget
from ..tlm.memory import Memory
from ..tlm.peripheral import StatusRegisterBlock
from ..tlm.router import AddressRouter

#: Every bus family :func:`build_platform` can elaborate.
BUS_FAMILIES = ("functional", "pci", "wishbone", "axi4lite", "tlmgp")


class PciPlatformConfig:
    """Shared knobs of the example platforms.

    (The name is historical — the same config drives every bus family;
    family-specific knobs like ``wait_states`` map onto the nearest
    analogue of each substrate.)
    """

    def __init__(
        self,
        clock_period: int = 30 * NS,
        mem_size: int = 1 << 16,
        peripheral_base: int = 0x0001_0000,
        decode_latency: int = 1,
        wait_states: int = 0,
        retry_count: int = 0,
        disconnect_after: int | None = None,
        word_latency: int = 0,
        arbiter: Arbiter | None = None,
        response_capacity: int | None = None,
        monitor_strict: bool = True,
        app_think_time: int = 0,
        resilience: object | None = None,
        backend: str = "interpreted",
        params: IfaceParams | None = None,
    ) -> None:
        if backend not in ("interpreted", "compiled"):
            raise RefinementError(
                f"unknown backend {backend!r}; expected 'interpreted' or "
                "'compiled'"
            )
        self.clock_period = clock_period
        self.mem_size = mem_size
        self.peripheral_base = peripheral_base
        self.decode_latency = decode_latency
        self.wait_states = wait_states
        self.retry_count = retry_count
        self.disconnect_after = disconnect_after
        self.word_latency = word_latency
        self.arbiter = arbiter
        #: Structural parameters of the interface element (widths, burst
        #: bound, response-FIFO depth). An explicit ``response_capacity``
        #: argument overrides the one inside ``params`` — the historical
        #: spelling of the only knob that predates IfaceParams.
        if params is None:
            params = IfaceParams(
                response_capacity=(
                    4 if response_capacity is None else response_capacity
                )
            )
        elif response_capacity is not None:
            params = params.with_response_capacity(response_capacity)
        self.params = params
        #: Legacy mirror of ``params.response_capacity``.
        self.response_capacity = params.response_capacity
        self.monitor_strict = monitor_strict
        #: fs of local work each application simulates between commands
        #: (0 = back-to-back traffic; >0 leaves idle bus cycles).
        self.app_think_time = app_think_time
        #: Optional :class:`repro.resilience.ResilienceConfig`; when set,
        #: builders wire call-level retry + protocol replay onto the
        #: interface element (applications stay untouched). None keeps
        #: the recovery-free fast path — the shipping default.
        self.resilience = resilience
        #: Execution backend for synthesized channels: "interpreted"
        #: (the generator-based RTL channel) or "compiled" (the
        #: generated-code core from repro.compile). Takes effect when a
        #: builder runs with synthesize=True; an explicit
        #: synthesis_config passed to the builder wins over this knob.
        self.backend = backend


def _maybe_apply_resilience(interface, config: "PciPlatformConfig") -> None:
    """Arm the interface element when the config carries a resilience
    configuration (applied after synthesis, so lowered channels are
    handled: call-level policies only take effect on behavioural
    channels, protocol replay works at every refinement level)."""
    if config.resilience is None:
        return
    from ..resilience import apply_resilience

    apply_resilience(interface, config.resilience)


class PlatformBundle:
    """A built platform plus handles on its interesting pieces."""

    def __init__(
        self,
        handle: PlatformHandle,
        top: Module,
        memory: Memory,
        peripheral: StatusRegisterBlock,
        interface,
        monitor=None,
        clock: Clock | None = None,
        synthesis: object | None = None,
        bus=None,
    ) -> None:
        self.handle = handle
        self.top = top
        self.memory = memory
        self.peripheral = peripheral
        self.interface = interface
        #: Bus monitor (PciMonitor/WishboneMonitor/AxiLiteMonitor), when
        #: the family has wires to watch.
        self.monitor = monitor
        self.clock = clock
        self.synthesis = synthesis
        self.bus = bus

    def run(self, max_time: int):
        return self.handle.run(max_time)


# -- per-family structural elaboration ---------------------------------------
#
# Each attach function wires the family's substrate onto *top* in a FIXED
# creation order (modules, signals and processes register in creation
# order, and waveform byte-stability — fig4.vcd — depends on it). All of
# them leave ``top.interface`` behind; clocked families also set
# ``top.clock``/``top.bus``/``top.monitor``.


def _attach_functional(top: Module, config: PciPlatformConfig,
                       element_cls: type) -> None:
    top.memory = Memory(config.mem_size)
    top.peripheral = StatusRegisterBlock()
    router = AddressRouter()
    router.add_target(0, config.mem_size, top.memory, "mem")
    router.add_target(config.peripheral_base, 0x10, top.peripheral, "regs")
    top.interface = element_cls(
        top,
        "interface",
        router,
        word_latency=config.word_latency,
        arbiter=config.arbiter,
        params=config.params,
    )


def _attach_pci(top: Module, config: PciPlatformConfig,
                element_cls: type) -> None:
    top.clock = Clock(top, "clock", period=config.clock_period)
    top.bus = PciBus(top, "bus", n_masters=1,
                     ad_width=config.params.data_width)
    top.pci_arbiter = PciCentralArbiter(
        top, "pci_arbiter", top.bus, top.clock.clk
    )
    top.memory = Memory(config.mem_size)
    top.peripheral = StatusRegisterBlock()
    top.mem_target = PciTarget(
        top, "mem_target", top.bus, top.clock.clk, top.memory,
        base=0, size=config.mem_size,
        decode_latency=config.decode_latency,
        wait_states=config.wait_states,
        retry_count=config.retry_count,
        disconnect_after=config.disconnect_after,
    )
    top.reg_target = PciTarget(
        top, "reg_target", top.bus, top.clock.clk, top.peripheral,
        base=config.peripheral_base, size=0x10,
        decode_latency=config.decode_latency,
    )
    top.monitor = PciMonitor(
        top, "monitor", top.bus, top.clock.clk,
        strict=config.monitor_strict,
    )
    top.interface = element_cls(
        top,
        "interface",
        top.bus,
        top.clock.clk,
        arbiter=config.arbiter,
        params=config.params,
    )


def _attach_wishbone(top: Module, config: PciPlatformConfig,
                     element_cls: type) -> None:
    from ..wishbone.monitor import WishboneMonitor
    from ..wishbone.signals import WishboneBus
    from ..wishbone.slave import WishboneSlave

    top.clock = Clock(top, "clock", period=config.clock_period)
    top.bus = WishboneBus(top, "bus",
                          data_width=config.params.data_width,
                          addr_width=config.params.addr_width)
    top.memory = Memory(config.mem_size)
    top.peripheral = StatusRegisterBlock()
    top.mem_slave = WishboneSlave(
        top, "mem_slave", top.bus, top.clock.clk, top.memory,
        base=0, size=config.mem_size,
        ack_latency=config.wait_states,
    )
    top.reg_slave = WishboneSlave(
        top, "reg_slave", top.bus, top.clock.clk, top.peripheral,
        base=config.peripheral_base, size=0x10,
    )
    top.monitor = WishboneMonitor(
        top, "monitor", top.bus, top.clock.clk,
        strict=config.monitor_strict,
    )
    top.interface = element_cls(
        top,
        "interface",
        top.bus,
        top.clock.clk,
        arbiter=config.arbiter,
        params=config.params,
    )


def _attach_axi4lite(top: Module, config: PciPlatformConfig,
                     element_cls: type) -> None:
    from ..axi.monitor import AxiLiteMonitor
    from ..axi.signals import AxiLiteBus
    from ..axi.slave import AxiLiteSlave

    top.clock = Clock(top, "clock", period=config.clock_period)
    top.bus = AxiLiteBus(top, "bus",
                         data_width=config.params.data_width,
                         addr_width=config.params.addr_width)
    top.memory = Memory(config.mem_size)
    top.peripheral = StatusRegisterBlock()
    top.mem_slave = AxiLiteSlave(
        top, "mem_slave", top.bus, top.clock.clk, top.memory,
        base=0, size=config.mem_size,
        accept_latency=config.wait_states,
    )
    top.reg_slave = AxiLiteSlave(
        top, "reg_slave", top.bus, top.clock.clk, top.peripheral,
        base=config.peripheral_base, size=0x10,
    )
    top.monitor = AxiLiteMonitor(
        top, "monitor", top.bus, top.clock.clk,
        strict=config.monitor_strict,
    )
    top.interface = element_cls(
        top,
        "interface",
        top.bus,
        top.clock.clk,
        arbiter=config.arbiter,
        params=config.params,
    )


def _attach_tlmgp(top: Module, config: PciPlatformConfig,
                  element_cls: type) -> None:
    from ..tlm.generic_payload import GpTargetSocket

    # A clock so the channel can still be synthesized (the generic
    # payload itself never touches wires).
    top.clock = Clock(top, "clock", period=config.clock_period)
    top.memory = Memory(config.mem_size)
    top.peripheral = StatusRegisterBlock()
    router = AddressRouter()
    router.add_target(0, config.mem_size, top.memory, "mem")
    router.add_target(config.peripheral_base, 0x10, top.peripheral, "regs")
    top.socket = GpTargetSocket(
        router,
        accept_latency=config.decode_latency * config.clock_period,
        word_latency=config.word_latency,
    )
    top.interface = element_cls(
        top,
        "interface",
        top.socket,
        arbiter=config.arbiter,
        params=config.params,
    )


_FAMILY_ATTACH = {
    "functional": _attach_functional,
    "pci": _attach_pci,
    "wishbone": _attach_wishbone,
    "axi4lite": _attach_axi4lite,
    "tlmgp": _attach_tlmgp,
}


def _default_element(bus: str) -> type:
    if bus == "functional":
        return FunctionalBusInterface
    if bus == "pci":
        return PciBusInterface
    if bus == "wishbone":
        from ..wishbone.interface import WishboneBusInterface

        return WishboneBusInterface
    if bus == "axi4lite":
        from ..axi.interface import AxiLiteBusInterface

        return AxiLiteBusInterface
    if bus == "tlmgp":
        from ..tlm.generic_payload import TlmGpBusInterface

        return TlmGpBusInterface
    raise RefinementError(
        f"unknown bus family {bus!r}; expected one of {BUS_FAMILIES}"
    )


def _family_of_element(element_cls: type) -> str:
    """The platform topology an interface-element class plugs into."""
    abstraction = getattr(element_cls, "ABSTRACTION", "abstract")
    if abstraction == "functional":
        return "functional"
    if abstraction == "transaction":
        return "tlmgp"
    bus = getattr(element_cls, "BUS_NAME", "abstract")
    if bus not in BUS_FAMILIES:
        raise RefinementError(
            f"{element_cls.__name__} targets unknown bus {bus!r}"
        )
    return bus


def _default_label(bus: str, synthesize: bool) -> str:
    if bus == "functional":
        return "functional"
    if bus == "pci":
        return "post_synthesis" if synthesize else "pin_accurate"
    return f"{bus}_post_synthesis" if synthesize else bus


class _PlatformTop(Module):
    """Generic top module: one family substrate + the applications."""

    def __init__(
        self,
        parent: Simulator,
        name: str,
        config: PciPlatformConfig,
        workloads: typing.Sequence[typing.Sequence[CommandType]],
        family: str,
        element_cls: type,
    ) -> None:
        super().__init__(parent, name)
        _FAMILY_ATTACH[family](self, config, element_cls)
        self.apps = [
            Application(self, f"app{i}", commands, self.interface,
                        think_time=config.app_think_time)
            for i, commands in enumerate(workloads)
        ]


def build_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    bus: str = "pci",
    synthesize: bool = False,
    label: str | None = None,
    synthesis_config: object | None = None,
    element: type | None = None,
) -> PlatformBundle:
    """Build the example system behind any library interface element.

    :param bus: a :data:`BUS_FAMILIES` name selecting the substrate and
        its default element.
    :param element: an explicit interface-element class; overrides *bus*
        (the family is derived from the element's tags), which is the
        "pick a different IP from the library" move.
    :param synthesize: apply communication synthesis to every
        global-object channel before returning (the paper's step 2).
        Rejected for the functional family — there is nothing to lower.
    """
    config = config or PciPlatformConfig()
    if element is not None:
        family = _family_of_element(element)
    else:
        family = bus
        if family not in BUS_FAMILIES:
            raise RefinementError(
                f"unknown bus family {family!r}; expected one of "
                f"{BUS_FAMILIES}"
            )
        element = _default_element(family)
    if synthesize and family == "functional":
        raise RefinementError(
            "the functional platform has no channel to synthesize; pick a "
            "pin-level or transaction family"
        )
    sim = Simulator()
    top = _PlatformTop(sim, "top", config, workloads, family, element)
    synthesis = None
    if synthesize:
        from ..synthesis.tool import SynthesisConfig, synthesize_communication

        if synthesis_config is None:
            synthesis_config = SynthesisConfig(
                backend=config.backend,
                data_width=config.params.data_width,
            )
        synthesis = synthesize_communication(
            sim, top.clock.clk, synthesis_config  # type: ignore[arg-type]
        )
    if label is None:
        label = _default_label(family, synthesize)
    interface = top.interface
    _maybe_apply_resilience(interface, config)
    clock = getattr(top, "clock", None)
    handle = PlatformHandle(
        sim, top.apps, label,
        quiesce=lambda: (
            interface.channel_state.commands_put == interface.commands_serviced
        ),
        quiesce_poll=config.clock_period if clock is not None else NS,
    )
    return PlatformBundle(
        handle, top, top.memory, top.peripheral, interface,
        monitor=getattr(top, "monitor", None),
        clock=clock,
        synthesis=synthesis,
        bus=getattr(top, "bus", None),
    )


def build_functional_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    label: str = "functional",
) -> PlatformBundle:
    """The high-level executable model: TLM interface, functional IPs."""
    return build_platform(workloads, config, bus="functional", label=label)


def build_pci_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    synthesize: bool = False,
    label: str | None = None,
    synthesis_config: object | None = None,
) -> PlatformBundle:
    """The implementation model: pin-accurate PCI interface + targets."""
    return build_platform(
        workloads, config, bus="pci", synthesize=synthesize, label=label,
        synthesis_config=synthesis_config,
    )


def build_wishbone_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    synthesize: bool = False,
    label: str | None = None,
    synthesis_config: object | None = None,
) -> PlatformBundle:
    """The same system behind the library's Wishbone interface element."""
    return build_platform(
        workloads, config, bus="wishbone", synthesize=synthesize, label=label,
        synthesis_config=synthesis_config,
    )


def build_axi4lite_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    synthesize: bool = False,
    label: str | None = None,
    synthesis_config: object | None = None,
) -> PlatformBundle:
    """The same system behind the library's AXI4-Lite interface element."""
    return build_platform(
        workloads, config, bus="axi4lite", synthesize=synthesize, label=label,
        synthesis_config=synthesis_config,
    )


def build_tlmgp_platform(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    synthesize: bool = False,
    label: str | None = None,
    synthesis_config: object | None = None,
) -> PlatformBundle:
    """The same system behind the generic-payload interface element."""
    return build_platform(
        workloads, config, bus="tlmgp", synthesize=synthesize, label=label,
        synthesis_config=synthesis_config,
    )


def standard_flow_builders(
    workloads: typing.Sequence[typing.Sequence[CommandType]],
    config: PciPlatformConfig | None = None,
    bus: str = "pci",
):
    """(functional_builder, implementation_builder) for :class:`DesignFlow`."""
    if not workloads:
        raise RefinementError("standard platforms need at least one workload")

    def functional_builder():
        return build_functional_platform(workloads, config).handle

    def implementation_builder(synthesize: bool, backend: str = "interpreted"):
        synthesis_config = None
        if synthesize:
            from ..synthesis.tool import SynthesisConfig

            synthesis_config = SynthesisConfig(backend=backend)
        bundle = build_platform(
            workloads, config, bus=bus, synthesize=synthesize,
            synthesis_config=synthesis_config,
        )
        return bundle.handle, bundle.synthesis

    return functional_builder, implementation_builder
