"""The end-to-end design flow of the paper's Figure 2.

Stages::

    specifications
        -> functional system model        (units under design + functional
                                           IPs + stimuli generators)
        -> validation by simulation
        -> static design-rule lint        (structural + guard analysis)
        -> communication refinement       (library interface swap)
        -> implementation model           (pin-accurate bus interface)
        -> communication synthesis        (the ODETTE tool)
        -> post-synthesis netlist analysis (driver/loop/FSM/race checks)
        -> post-synthesis validation      (re-simulate, check consistency)

The lint stage runs the static design rules (:mod:`repro.lint`) over
freshly-built functional and implementation models *before* synthesis is
attempted: error-severity findings abort the flow with a
:class:`~repro.errors.SynthesisError` instead of letting a broken design
reach the synthesizer.

:class:`DesignFlow` drives the stages over user-supplied platform
builders and records a :class:`FlowReport` with every intermediate
result — the programmatic equivalent of walking Figure 2 top to bottom.
"""

from __future__ import annotations

import inspect
import time
import typing

from ..core.refinement import PlatformHandle, RunResult
from ..errors import RefinementError, SynthesisError
from ..instrument.probes import FLOW_STAGE, ProbeBus, default_bus
from ..lint import LintConfig, LintReport, lint_design
from ..verify.consistency import ConsistencyReport, check_traces

#: Signature of the functional-model builder.
FunctionalBuilder = typing.Callable[[], PlatformHandle]
#: Signature of the implementation-model builder; the flag selects
#: whether communication synthesis is applied. Returns the platform and
#: the synthesis result (None when not synthesizing).
ImplementationBuilder = typing.Callable[
    [bool], tuple[PlatformHandle, typing.Optional[object]]
]


class FlowStage:
    """Record of one executed flow stage."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.status = "pending"
        self.wall_seconds = 0.0
        self.detail = ""

    def __repr__(self) -> str:
        return f"FlowStage({self.name}: {self.status})"


class FlowReport:
    """Everything the flow produced, stage by stage."""

    def __init__(self, design_name: str) -> None:
        self.design_name = design_name
        self.stages: list[FlowStage] = []
        self.functional_result: RunResult | None = None
        self.implementation_result: RunResult | None = None
        self.post_synthesis_result: RunResult | None = None
        self.refinement_check: ConsistencyReport | None = None
        self.synthesis_check: ConsistencyReport | None = None
        self.synthesis_result: object | None = None
        self.lint_report: LintReport | None = None
        #: :class:`~repro.analyze.AnalysisReport` of the synthesized
        #: netlists (None when the analysis stage did not run).
        self.analysis_report: object | None = None

    @property
    def succeeded(self) -> bool:
        return all(stage.status == "ok" for stage in self.stages)

    def summary(self) -> str:
        lines = [f"design flow report: {self.design_name}"]
        for stage in self.stages:
            lines.append(
                f"  [{stage.status:>4}] {stage.name} "
                f"({stage.wall_seconds:.3f}s){': ' + stage.detail if stage.detail else ''}"
            )
        return "\n".join(lines)


class DesignFlow:
    """Drives the Figure 2 flow over a pair of platform builders.

    :param specification: free-form description; must at least name the
        design (checked as the flow's first stage).
    :param functional_builder: builds the high-level executable model.
    :param implementation_builder: builds the implementation model, with
        or without communication synthesis applied.
    :param lint_config: policy for the static design-rule stage
        (suppressions, strictness); default policy when ``None``.
    :param probe_bus: bus that receives a ``flow.stage`` probe per
        finished stage; falls back to the process-wide default bus.
    :param backend: execution backend for the synthesized channels,
        ``"interpreted"`` (default) or ``"compiled"``. Forwarded to the
        implementation builder's ``backend`` keyword when it accepts
        one (:func:`~repro.flow.platforms.standard_flow_builders` does);
        asking for a non-default backend from a builder without the
        keyword is an error rather than a silent fallback.
    """

    def __init__(
        self,
        specification: typing.Mapping[str, object],
        functional_builder: FunctionalBuilder,
        implementation_builder: ImplementationBuilder,
        lint_config: LintConfig | None = None,
        probe_bus: ProbeBus | None = None,
        backend: str = "interpreted",
    ) -> None:
        if backend not in ("interpreted", "compiled"):
            raise RefinementError(
                f"unknown backend {backend!r}; expected 'interpreted' or "
                "'compiled'"
            )
        self.specification = dict(specification)
        self.functional_builder = functional_builder
        self.implementation_builder = implementation_builder
        self.lint_config = lint_config
        self._probe_bus = probe_bus
        self.backend = backend

    def _build_implementation(
        self, synthesize: bool
    ) -> tuple[PlatformHandle, typing.Optional[object]]:
        """Call the implementation builder, forwarding the backend
        choice when the builder can take it."""
        if not synthesize or self.backend == "interpreted":
            return self.implementation_builder(synthesize)
        try:
            accepts_backend = "backend" in inspect.signature(
                self.implementation_builder
            ).parameters
        except (TypeError, ValueError):
            accepts_backend = False
        if not accepts_backend:
            raise RefinementError(
                f"backend {self.backend!r} requested but the "
                "implementation builder takes no 'backend' keyword"
            )
        return self.implementation_builder(  # type: ignore[call-arg]
            synthesize, backend=self.backend
        )

    def run(self, max_time: int) -> FlowReport:
        """Execute every stage; raises on hard failures."""
        name = str(self.specification.get("name", "unnamed-design"))
        report = FlowReport(name)

        with _stage(report, self._probe_bus, "check specifications") as stage:
            if "name" not in self.specification:
                raise RefinementError("specification must carry a 'name'")
            stage.detail = ", ".join(sorted(self.specification))

        with _stage(report, self._probe_bus, "build + simulate functional model") as stage:
            report.functional_result = self.functional_builder().run(max_time)
            stage.detail = repr(report.functional_result)

        with _stage(report, self._probe_bus, "static design-rule lint") as stage:
            # Fresh builds: the stage-2 platforms have already been run,
            # and lint analyses a built-but-not-run design.
            lint = LintReport("flow")
            lint.extend(lint_design(
                self.functional_builder().sim, self.lint_config,
                label="functional",
            ))
            platform, __ = self._build_implementation(False)
            lint.extend(lint_design(
                platform.sim, self.lint_config, label="implementation",
            ))
            report.lint_report = lint
            stage.detail = lint.summary_line()
            if lint.has_errors:
                raise SynthesisError(
                    "design-rule violations block synthesis:\n" + lint.render()
                )

        with _stage(report, self._probe_bus, "refine communication (library swap)") as stage:
            platform, __ = self._build_implementation(False)
            report.implementation_result = platform.run(max_time)
            stage.detail = repr(report.implementation_result)

        with _stage(report, self._probe_bus, "validate refinement") as stage:
            assert report.functional_result and report.implementation_result
            report.refinement_check = check_traces(
                report.functional_result.traces,
                report.implementation_result.traces,
                "functional",
                "implementation",
            )
            report.refinement_check.require_consistent()
            stage.detail = f"{report.refinement_check.compared_items} items equal"

        with _stage(report, self._probe_bus, "communication synthesis") as stage:
            platform, synthesis = self._build_implementation(True)
            report.synthesis_result = synthesis
            report.post_synthesis_result = platform.run(max_time)
            stage.detail = (
                f"backend={self.backend} {report.post_synthesis_result!r}"
            )

        with _stage(report, self._probe_bus, "post-synthesis netlist analysis") as stage:
            # Gate: the synthesized netlists must pass the dataflow
            # analyses (driver conflicts, comb loops, FSM liveness,
            # X-prop, shared-state races) before the design goes on to
            # the consistency check.
            from ..analyze import analyze_design

            analysis = analyze_design(
                synthesis, platform.sim, self.lint_config,
                label="post-synthesis",
            )
            report.analysis_report = analysis
            stage.detail = analysis.summary_line()
            if analysis.has_errors:
                raise SynthesisError(
                    "netlist analysis violations block the flow:\n"
                    + analysis.lint.render()
                )

        with _stage(report, self._probe_bus, "post-synthesis validation") as stage:
            assert report.implementation_result and report.post_synthesis_result
            report.synthesis_check = check_traces(
                report.implementation_result.traces,
                report.post_synthesis_result.traces,
                "pre-synthesis",
                "post-synthesis",
            )
            report.synthesis_check.require_consistent()
            stage.detail = f"{report.synthesis_check.compared_items} items equal"

        return report


class _stage:
    """Context manager recording one stage's outcome and wall time."""

    def __init__(
        self,
        report: FlowReport,
        bus: ProbeBus | None,
        name: str,
    ) -> None:
        self.report = report
        self.bus = bus
        self.stage = FlowStage(name)

    def __enter__(self) -> FlowStage:
        self.report.stages.append(self.stage)
        self._started = time.perf_counter()
        return self.stage

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stage.wall_seconds = time.perf_counter() - self._started
        self.stage.status = "ok" if exc_type is None else "FAIL"
        if exc is not None and not self.stage.detail:
            self.stage.detail = str(exc)
        bus = self.bus if self.bus is not None else default_bus()
        if bus is not None:
            bus.emit(
                FLOW_STAGE,
                self.stage.name,
                self.stage.status,
                self.stage.wall_seconds,
            )
