"""repro.instrument — the unified kernel instrumentation plane.

Every observation point of the stack — process scheduling, delta
cycles, event notification, signal commits, guarded-method traffic,
bus transactions, design-flow stages, fault activations and checker
detections — is published on one :class:`ProbeBus` with a typed probe
catalogue (:data:`PROBE_KINDS`). Observers (VCD tracers, metrics,
profilers, fault classifiers) subscribe to the kinds they care about
instead of each inventing a private hook.

The design constraint is the ROADMAP's "as fast as the hardware
allows": a simulator with no bus attached pays exactly one truthiness
check per probe site (``if probes is not None``) — no allocation, no
call, no dict lookup — so instrumentation is free when off.

Typical use::

    from repro.instrument import MetricsCollector, WallClockProfiler

    sim = Simulator()
    metrics = MetricsCollector().attach(sim.probes)
    profiler = WallClockProfiler().attach(sim.probes)
    ... build and run ...
    print(profiler.report().render())

or, from the command line, ``python -m repro profile <script.py>``.
"""

from .metrics import Counter, DetectionLog, Histogram, MetricsCollector
from .probes import (
    DELTA_BEGIN,
    DELTA_END,
    DETECTION,
    EVENT_NOTIFY,
    FAULT_ACTIVATE,
    FLOW_STAGE,
    METHOD_CALL,
    METHOD_COMPLETE,
    METHOD_GRANT,
    METHOD_GUARD_BLOCK,
    METHOD_QUEUE,
    PROBE_KINDS,
    PROCESS_ACTIVATE,
    PROCESS_SUSPEND,
    SIGNAL_COMMIT,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
    ProbeBus,
    default_bus,
    set_default_bus,
)
from .profiler import ProfileReport, WallClockProfiler
from .sanitizer import RaceObservation, RaceSanitizer

__all__ = [
    "Counter",
    "DELTA_BEGIN",
    "DELTA_END",
    "DETECTION",
    "DetectionLog",
    "EVENT_NOTIFY",
    "FAULT_ACTIVATE",
    "FLOW_STAGE",
    "Histogram",
    "METHOD_CALL",
    "METHOD_COMPLETE",
    "METHOD_GRANT",
    "METHOD_GUARD_BLOCK",
    "METHOD_QUEUE",
    "MetricsCollector",
    "PROBE_KINDS",
    "PROCESS_ACTIVATE",
    "PROCESS_SUSPEND",
    "ProbeBus",
    "ProfileReport",
    "RaceObservation",
    "RaceSanitizer",
    "SIGNAL_COMMIT",
    "TRANSACTION_BEGIN",
    "TRANSACTION_END",
    "WallClockProfiler",
    "default_bus",
    "set_default_bus",
]
