"""``python -m repro profile`` — profile a script's simulation runs.

Executes an arbitrary Python script (typically one of the examples)
with a process-wide probe bus installed, so every :class:`Simulator`
the script creates is instrumented without the script changing a line.
Afterwards it prints the hot-process table and the per-method traffic
histograms, and writes a Chrome-trace JSON loadable in
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys

from .metrics import MethodMetrics, MetricsCollector
from .probes import ProbeBus, set_default_bus
from .profiler import MAX_TRACE_EVENTS, WallClockProfiler

#: Femtoseconds per nanosecond, for human-readable method timings.
_FS_PER_NS = 1_000_000


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "script",
        help="Python script to execute under the profiler "
             "(e.g. examples/pci_system.py)",
    )
    parser.add_argument(
        "script_args",
        nargs=argparse.REMAINDER,
        help="arguments passed through to the script",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows per table (default 10)",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="also write the full report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--chrome-trace", dest="chrome_trace", metavar="PATH",
        default="repro_profile_trace.json",
        help="Chrome trace-event output path (default "
             "repro_profile_trace.json; 'none' disables)",
    )
    parser.add_argument(
        "--quiet-script", action="store_true",
        help="suppress the profiled script's stdout",
    )
    parser.add_argument(
        "--max-trace-events", type=int, default=MAX_TRACE_EVENTS,
        metavar="N",
        help="Chrome-trace slices kept before truncation "
             f"(default {MAX_TRACE_EVENTS}; truncation is always "
             "reported, never silent)",
    )


def _method_table(rows: list[MethodMetrics], top: int) -> str:
    lines = [
        "guarded-method traffic",
        f"  {'channel.method':<44} {'calls':>6} {'queued':>6} "
        f"{'wait ns':>9} {'svc ns':>9} {'total ns':>9} "
        f"{'p50 ns':>8} {'p95 ns':>8} {'p99 ns':>8}",
    ]
    for record in rows[:top]:
        total = record.total_times
        lines.append(
            f"  {record.key:<44} {record.calls:>6} {record.queued:>6} "
            f"{record.wait_times.mean / _FS_PER_NS:>9.1f} "
            f"{record.service_times.mean / _FS_PER_NS:>9.1f} "
            f"{total.mean / _FS_PER_NS:>9.1f} "
            f"{total.quantile(0.5) / _FS_PER_NS:>8.1f} "
            f"{total.quantile(0.95) / _FS_PER_NS:>8.1f} "
            f"{total.quantile(0.99) / _FS_PER_NS:>8.1f}"
        )
    if len(rows) > top:
        lines.append(f"  ... and {len(rows) - top} more")
    return "\n".join(lines)


def _run_script(script: str, script_args: list[str], quiet: bool) -> None:
    saved_argv = sys.argv
    sys.argv = [script, *script_args]
    saved_stdout = sys.stdout
    if quiet:
        import io

        sys.stdout = io.StringIO()
    try:
        runpy.run_path(script, run_name="__main__")
    finally:
        sys.stdout = saved_stdout
        sys.argv = saved_argv


def run(args: argparse.Namespace) -> int:
    bus = ProbeBus()
    metrics = MetricsCollector().attach(bus)
    profiler = WallClockProfiler(
        max_trace_events=args.max_trace_events
    ).attach(bus)
    previous = set_default_bus(bus)
    try:
        _run_script(args.script, args.script_args, args.quiet_script)
    finally:
        set_default_bus(previous)
    report = profiler.report()

    print()
    print(f"== profile: {args.script} ==")
    print(report.render(args.top))
    print()
    summary = metrics.to_dict()
    print(
        f"events notified: {metrics.events_notified}, "
        f"signal commits: {metrics.signal_commits.total}, "
        f"transactions: {metrics.transactions.total}, "
        f"detections: {metrics.detections}"
    )
    method_rows = metrics.method_rows()
    if method_rows:
        print()
        print(_method_table(method_rows, args.top))
    if metrics.flow_stages:
        print()
        print("flow stages")
        for name, status, seconds in metrics.flow_stages:
            print(f"  [{status:>4}] {name} ({seconds:.3f}s)")

    if args.chrome_trace and args.chrome_trace != "none":
        report.write_chrome_trace(args.chrome_trace)
        truncated = (
            f", {report.dropped_events} dropped past the "
            f"{report.max_trace_events}-slice cap"
            if report.dropped_events else ""
        )
        print(f"\nwrote chrome trace: {args.chrome_trace} "
              f"({len(report.trace_events)} slices{truncated})")

    if args.json_path:
        payload = json.dumps(
            {
                "script": args.script,
                "profile": report.to_dict(),
                "metrics": summary,
            },
            indent=2,
        )
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w") as handle:
                handle.write(payload)
            print(f"wrote json report: {args.json_path}")
    return 0
