"""The probe bus: typed publish/subscribe points over a running kernel.

This module is deliberately dependency-free (it imports nothing from the
rest of the package) so the kernel can import it without cycles. The
payloads flowing over the bus are live kernel objects — processes,
signals, requests — never copies; subscribers must treat them as
read-only.

Probe-point catalogue (positional callback signatures):

===================== =========================================================
kind                  callback arguments
===================== =========================================================
``process.activate``  ``(time, process, cause)`` — a process starts one
                      activation; ``cause`` is the :class:`Event` that
                      woke it (``None`` for the initial activation)
``process.suspend``   ``(time, process)`` — the activation returned / waited
``delta.begin``       ``(time, delta_index)`` — a delta cycle starts
``delta.end``         ``(time, delta_index)`` — the delta cycle finished
``event.notify``      ``(time, event, cause)`` — an event triggered its
                      waiters; ``cause`` is the :class:`Process` that
                      requested the notification (``None`` when notified
                      from outside any process context)
``signal.commit``     ``(time, signal, value)`` — a committed value change
``method.call``       ``(time, space, request)`` — guarded call submitted
``method.queue``      ``(time, space, request)`` — the call could not be
                      served immediately (busy server, queue ahead, or a
                      false guard)
``method.grant``      ``(time, space, request)`` — arbiter granted the call
``method.guard_block`` ``(time, space, requests)`` — pending calls exist but
                      no guard is true; the server blocks
``method.complete``   ``(time, space, request)`` — the method body returned
``transaction.begin`` ``(time, source, payload)`` — a bus/TLM transaction
                      opened (``source`` is a hierarchical path string;
                      the payload carries a process-wide unique
                      ``txn_id`` from :func:`new_txn_id` so begin/end
                      pair reliably across layers)
``transaction.end``   ``(time, source, payload)`` — the transaction closed
``flow.stage``        ``(name, status, wall_seconds)`` — a design-flow stage
                      finished (wall-clock, not simulation time)
``fault.activate``    ``(time, fault)`` — an armed fault model perturbed the
                      design
``detection``         ``(record,)`` — a runtime checker fired (a
                      :class:`~repro.kernel.simulator.DetectionRecord`)
``resilience.timeout`` ``(event,)`` — a guarded call or protocol operation
                      blew its deadline (a :class:`ResilienceEvent`)
``resilience.retry``  ``(event,)`` — a recovery layer re-issued the work
``resilience.giveup`` ``(event,)`` — recovery exhausted its attempt budget
``resilience.recovered`` ``(event,)`` — a previously failed call/operation
                      completed after one or more recovery attempts
===================== =========================================================

Hot kernel paths (signal commits, event triggers, the delta loop) call
the dedicated ``ProbeBus`` emit helpers; cold paths use the generic
:meth:`ProbeBus.emit`. Either way, a kind with no subscribers costs one
``None`` check on an instance attribute.
"""

from __future__ import annotations

import itertools
import typing

PROCESS_ACTIVATE = "process.activate"
PROCESS_SUSPEND = "process.suspend"
DELTA_BEGIN = "delta.begin"
DELTA_END = "delta.end"
EVENT_NOTIFY = "event.notify"
SIGNAL_COMMIT = "signal.commit"
METHOD_CALL = "method.call"
METHOD_QUEUE = "method.queue"
METHOD_GRANT = "method.grant"
METHOD_GUARD_BLOCK = "method.guard_block"
METHOD_COMPLETE = "method.complete"
TRANSACTION_BEGIN = "transaction.begin"
TRANSACTION_END = "transaction.end"
FLOW_STAGE = "flow.stage"
FAULT_ACTIVATE = "fault.activate"
DETECTION = "detection"
RESILIENCE_TIMEOUT = "resilience.timeout"
RESILIENCE_RETRY = "resilience.retry"
RESILIENCE_GIVEUP = "resilience.giveup"
RESILIENCE_RECOVERED = "resilience.recovered"

#: Every probe kind the bus understands, in catalogue order.
PROBE_KINDS: tuple[str, ...] = (
    PROCESS_ACTIVATE,
    PROCESS_SUSPEND,
    DELTA_BEGIN,
    DELTA_END,
    EVENT_NOTIFY,
    SIGNAL_COMMIT,
    METHOD_CALL,
    METHOD_QUEUE,
    METHOD_GRANT,
    METHOD_GUARD_BLOCK,
    METHOD_COMPLETE,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
    FLOW_STAGE,
    FAULT_ACTIVATE,
    DETECTION,
    RESILIENCE_TIMEOUT,
    RESILIENCE_RETRY,
    RESILIENCE_GIVEUP,
    RESILIENCE_RECOVERED,
)

#: kind -> name of the per-kind subscriber-tuple attribute on ProbeBus.
_KIND_ATTR: dict[str, str] = {
    kind: "_" + kind.replace(".", "_") for kind in PROBE_KINDS
}

Callback = typing.Callable[..., None]

#: Process-wide transaction-id sequence shared by every emitter of
#: ``transaction.begin``/``transaction.end`` payloads, so ids are unique
#: across buses, TLM channels and abstraction layers within one run.
_txn_ids = itertools.count(1)


def new_txn_id() -> int:
    """Allocate the next process-wide unique transaction id."""
    return next(_txn_ids)


class ProbeError(ValueError):
    """An unknown probe kind was used."""


class ResilienceEvent:
    """Payload of the four ``resilience.*`` probe kinds.

    Lives here (rather than in :mod:`repro.resilience`) so low-level
    emitters — the OSSS call machinery, the bus-interface dispatchers —
    can publish recovery activity without importing the resilience
    package.

    :param kind: one of the ``resilience.*`` probe kind strings.
    :param time: simulation time (fs) of the event.
    :param path: hierarchical path of the recovering entity (a channel
        handle or a bus interface).
    :param method: guarded-method name, or an operation tag like
        ``"mem_write"`` for protocol-level replay.
    :param attempt: 1-based attempt number the event belongs to.
    :param detail: free-form cause ("guard timeout", "master_abort",
        "parity", ...).
    """

    __slots__ = ("kind", "time", "path", "method", "attempt", "detail")

    def __init__(
        self,
        kind: str,
        time: int,
        path: str,
        method: str,
        attempt: int = 1,
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.time = time
        self.path = path
        self.method = method
        self.attempt = attempt
        self.detail = detail

    def __repr__(self) -> str:
        return (
            f"ResilienceEvent({self.kind} {self.path}.{self.method} "
            f"attempt={self.attempt}{' ' + self.detail if self.detail else ''})"
        )


def emit_resilience(
    sim: typing.Any,
    kind: str,
    path: str,
    method: str,
    attempt: int = 1,
    detail: str = "",
) -> None:
    """Publish one ``resilience.*`` event over *sim*'s probe bus (if any).

    *sim* is duck-typed (``_probes`` + ``time``) to keep this module
    import-free; emitters across the OSSS and protocol layers share this
    one helper so payload construction stays behind the null-bus check.
    """
    probes = sim._probes
    if probes is not None:
        probes.emit(
            kind,
            ResilienceEvent(kind, sim.time, path, method, attempt, detail),
        )


class ProbeBus:
    """One instrumentation plane: per-kind subscriber lists.

    Subscribers for each kind are kept as an instance attribute that is
    either ``None`` (no subscribers — the value hot paths test) or an
    immutable tuple of callbacks. Emission iterates over the tuple that
    was current when the probe fired, so a callback may subscribe or
    unsubscribe anything (including itself) mid-emission without
    corrupting the iteration.
    """

    def __init__(self) -> None:
        self._subscribers: dict[str, list[Callback]] = {
            kind: [] for kind in PROBE_KINDS
        }
        for attr in _KIND_ATTR.values():
            setattr(self, attr, None)

    def __repr__(self) -> str:
        active = {
            kind: len(subs)
            for kind, subs in self._subscribers.items()
            if subs
        }
        return f"ProbeBus({active or 'idle'})"

    # -- subscription ------------------------------------------------------

    def _check_kind(self, kind: str) -> None:
        if kind not in self._subscribers:
            raise ProbeError(
                f"unknown probe kind {kind!r}; known: {sorted(self._subscribers)}"
            )

    def _refresh(self, kind: str) -> None:
        subs = self._subscribers[kind]
        setattr(self, _KIND_ATTR[kind], tuple(subs) if subs else None)

    def subscribe(self, kind: str, callback: Callback) -> Callback:
        """Register *callback* for *kind*; returns the callback (token)."""
        self._check_kind(kind)
        self._subscribers[kind].append(callback)
        self._refresh(kind)
        return callback

    def unsubscribe(self, kind: str, callback: Callback) -> None:
        """Remove *callback* from *kind*; idempotent (never raises when
        the callback was not subscribed)."""
        self._check_kind(kind)
        subs = self._subscribers[kind]
        try:
            subs.remove(callback)
        except ValueError:
            return
        self._refresh(kind)

    def subscribers(self, kind: str) -> tuple[Callback, ...]:
        self._check_kind(kind)
        return tuple(self._subscribers[kind])

    def wants(self, kind: str) -> bool:
        """True when at least one subscriber listens to *kind*."""
        self._check_kind(kind)
        return bool(self._subscribers[kind])

    def clear(self) -> None:
        """Drop every subscription."""
        for kind in self._subscribers:
            self._subscribers[kind] = []
            self._refresh(kind)

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, *args: object) -> None:
        """Generic emission (cold paths); unknown kinds raise."""
        subs = getattr(self, _KIND_ATTR[kind])
        if subs is not None:
            for callback in subs:
                callback(*args)

    # Dedicated helpers for the kernel's hot paths: one attribute load
    # and a None check when the kind is unsubscribed.

    def process_activate(
        self, time: int, process: object, cause: object = None
    ) -> None:
        subs = self._process_activate
        if subs is not None:
            for callback in subs:
                callback(time, process, cause)

    def process_suspend(self, time: int, process: object) -> None:
        subs = self._process_suspend
        if subs is not None:
            for callback in subs:
                callback(time, process)

    def delta_begin(self, time: int, delta_index: int) -> None:
        subs = self._delta_begin
        if subs is not None:
            for callback in subs:
                callback(time, delta_index)

    def delta_end(self, time: int, delta_index: int) -> None:
        subs = self._delta_end
        if subs is not None:
            for callback in subs:
                callback(time, delta_index)

    def event_notify(
        self, time: int, event: object, cause: object = None
    ) -> None:
        subs = self._event_notify
        if subs is not None:
            for callback in subs:
                callback(time, event, cause)

    def signal_commit(self, time: int, signal: object, value: object) -> None:
        subs = self._signal_commit
        if subs is not None:
            for callback in subs:
                callback(time, signal, value)


# -- process-wide default bus ---------------------------------------------------

#: When set, every subsequently created Simulator attaches to this bus —
#: how ``python -m repro profile`` instruments simulators built deep
#: inside a user script it merely executes.
_DEFAULT_BUS: ProbeBus | None = None


def set_default_bus(bus: ProbeBus | None) -> ProbeBus | None:
    """Install (or clear, with ``None``) the process-wide default bus.

    Returns the previous default so callers can restore it.
    """
    global _DEFAULT_BUS
    previous = _DEFAULT_BUS
    _DEFAULT_BUS = bus
    return previous


def default_bus() -> ProbeBus | None:
    """The process-wide default bus, or ``None`` when not installed."""
    return _DEFAULT_BUS
